//! Lockstep batched backward search with dead-query dropping.

use std::ops::Range;

use exma_genome::{Base, Kmer};
use exma_index::KStepFmIndex;

/// Execution counters of one batched search, for tests and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Lockstep rounds executed: `⌊m/k⌋` k-step rounds plus `m mod k`
    /// single-symbol tail rounds, for the longest surviving query of
    /// length `m`.
    pub rounds: usize,
    /// Total LF refinements issued across all queries and rounds.
    pub steps: usize,
    /// Queries live in the widest round (the initial non-empty batch).
    pub peak_live: usize,
}

/// In-flight state of one query between rounds. Rows fit `u32` because the
/// suffix array itself stores `u32` positions.
struct LiveQuery {
    pattern: u32,
    /// Pattern symbols not yet consumed (a suffix of this length remains).
    remaining: u32,
    lo: u32,
    hi: u32,
}

/// A batched query engine over a [`KStepFmIndex`].
///
/// All queries advance together: each round issues one k-step refinement
/// per live query (1-step refinements once a query is into its sub-k
/// tail), then drops queries that finished or died. See the crate docs for
/// why this ordering matters to the paper.
#[derive(Debug, Clone, Copy)]
pub struct BatchEngine<'a> {
    index: &'a KStepFmIndex,
}

impl<'a> BatchEngine<'a> {
    /// An engine borrowing `index`.
    pub fn new(index: &'a KStepFmIndex) -> BatchEngine<'a> {
        BatchEngine { index }
    }

    /// The index this engine queries.
    pub fn index(&self) -> &'a KStepFmIndex {
        self.index
    }

    /// Suffix-array intervals for every pattern, in input order — each
    /// identical to `index.backward_search(pattern)`. Empty intervals are
    /// normalized to `0..0`; empty patterns match every row.
    pub fn search_batch(&self, patterns: &[impl AsRef<[Base]>]) -> Vec<Range<usize>> {
        self.search_batch_with_stats(patterns).0
    }

    /// [`BatchEngine::search_batch`] plus execution counters.
    pub fn search_batch_with_stats(
        &self,
        patterns: &[impl AsRef<[Base]>],
    ) -> (Vec<Range<usize>>, BatchStats) {
        let k = self.index.k();
        let n = self.index.text_len();
        let mut results: Vec<Range<usize>> = Vec::with_capacity(patterns.len());
        let mut live: Vec<LiveQuery> = Vec::new();
        for (i, pattern) in patterns.iter().enumerate() {
            if pattern.as_ref().is_empty() {
                results.push(0..n); // the empty pattern matches every row
            } else {
                results.push(0..0);
                live.push(LiveQuery {
                    pattern: i as u32,
                    remaining: pattern.as_ref().len() as u32,
                    lo: 0,
                    hi: n as u32,
                });
            }
        }

        let mut stats = BatchStats {
            peak_live: live.len(),
            ..BatchStats::default()
        };
        while !live.is_empty() {
            stats.rounds += 1;
            stats.steps += live.len();
            live.retain_mut(|q| {
                let pattern = patterns[q.pattern as usize].as_ref();
                let rem = q.remaining as usize;
                let range = q.lo as usize..q.hi as usize;
                let (range, consumed) = if rem >= k {
                    let kmer = Kmer::from_bases(&pattern[rem - k..rem]);
                    (self.index.kstep(kmer, range), k)
                } else {
                    (self.index.base_index().step(pattern[rem - 1], range), 1)
                };
                if range.is_empty() {
                    return false; // died: its result stays 0..0
                }
                if rem == consumed {
                    results[q.pattern as usize] = range;
                    return false; // finished
                }
                q.remaining = (rem - consumed) as u32;
                q.lo = range.start as u32;
                q.hi = range.end as u32;
                true
            });
        }
        (results, stats)
    }

    /// Occurrence counts for every pattern, in input order.
    pub fn count_batch(&self, patterns: &[impl AsRef<[Base]>]) -> Vec<usize> {
        self.search_batch(patterns)
            .into_iter()
            .map(|range| range.len())
            .collect()
    }

    /// Sorted occurrence positions for every pattern, in input order.
    /// Interval rows are resolved through the shared reuse path
    /// [`exma_index::FmIndex::resolve_range_into`].
    pub fn locate_batch(&self, patterns: &[impl AsRef<[Base]>]) -> Vec<Vec<u32>> {
        let base = self.index.base_index();
        self.search_batch(patterns)
            .into_iter()
            .map(|range| {
                let mut positions = Vec::new();
                base.resolve_range_into(range, &mut positions);
                positions
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::alphabet::parse_bases;
    use exma_genome::genome::text_from_str;

    fn fig3_engine_input() -> (KStepFmIndex, Vec<Vec<Base>>) {
        let index = KStepFmIndex::from_text(&text_from_str("CATAGA").unwrap(), 2);
        let patterns = ["A", "TA", "AGA", "CATAGA", "GG", ""]
            .iter()
            .map(|p| parse_bases(p).unwrap())
            .collect();
        (index, patterns)
    }

    #[test]
    fn batch_matches_sequential_search() {
        let (index, patterns) = fig3_engine_input();
        let engine = BatchEngine::new(&index);
        let got = engine.search_batch(&patterns);
        for (i, pattern) in patterns.iter().enumerate() {
            assert_eq!(got[i], index.backward_search(pattern), "pattern #{i}");
        }
    }

    #[test]
    fn counts_and_locates_line_up() {
        let (index, patterns) = fig3_engine_input();
        let engine = BatchEngine::new(&index);
        assert_eq!(engine.count_batch(&patterns), vec![3, 1, 1, 1, 0, 7]);
        let located = engine.locate_batch(&patterns);
        assert_eq!(located[0], vec![1, 3, 5]);
        assert_eq!(located[3], vec![0]);
        assert_eq!(located[4], Vec::<u32>::new());
    }

    #[test]
    fn stats_count_rounds_and_dropped_queries() {
        let (index, patterns) = fig3_engine_input();
        let engine = BatchEngine::new(&index);
        let (_, stats) = engine.search_batch_with_stats(&patterns);
        // Empty pattern never enters the round-robin.
        assert_eq!(stats.peak_live, 5);
        // Longest pattern is 6 symbols at k = 2 → 3 rounds.
        assert_eq!(stats.rounds, 3);
        // Dead/finished queries must not keep consuming steps: "GG" dies in
        // round 1, "A"/"TA" finish in round 1, "AGA" finishes in round 2
        // (k-step then tail step), "CATAGA" runs all 3 rounds:
        // 5 + 2 + 1 = 8 refinements, strictly fewer than 5 queries x 3.
        assert_eq!(stats.steps, 8);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (index, _) = fig3_engine_input();
        let engine = BatchEngine::new(&index);
        let empty: Vec<Vec<Base>> = Vec::new();
        let (results, stats) = engine.search_batch_with_stats(&empty);
        assert!(results.is_empty());
        assert_eq!(stats, BatchStats::default());
    }
}
