//! Lockstep batched backward search with dead-query dropping, interval
//! sorting, and software prefetch — the round-loop every
//! [`crate::Executor`] run of a [`BatchEngine`] goes through, whatever
//! mix of operations the batch carries.

use std::ops::Range;

use exma_genome::{Base, Kmer, Symbol};
use exma_index::{KStepFmIndex, ResolveConfig};

/// How many queries ahead of the one being refined the engine prefetches
/// when [`BatchConfig::prefetch_distance`] is left to the default. Far
/// enough that a DRAM fetch (~100 ns) completes before the refinement
/// loop reaches the query, near enough that the lines are not evicted
/// again first.
pub const DEFAULT_PREFETCH_DISTANCE: usize = 8;

/// Scheduling knobs of a [`BatchEngine`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Sort live queries by their interval's `lo` each round, so the
    /// round's occurrence-table accesses walk memory in address order
    /// instead of jumping wherever the previous refinement landed.
    pub sort_by_interval: bool,
    /// While refining query `j`, prefetch the table blocks query `j + d`
    /// will touch (`0` disables prefetching).
    pub prefetch_distance: usize,
    /// Round schedule of the locate resolver a mixed batch's locate
    /// intervals feed into. The presets keep it in step with the
    /// search schedule: plain search resolves plain, sorted sorts cursor
    /// rows, locality adds cursor prefetch.
    pub resolve: ResolveConfig,
}

impl Default for BatchConfig {
    /// Plain lockstep rounds: input order, no prefetch — the PR 2
    /// baseline scheduling.
    fn default() -> BatchConfig {
        BatchConfig {
            sort_by_interval: false,
            prefetch_distance: 0,
            resolve: ResolveConfig::default(),
        }
    }
}

impl BatchConfig {
    /// Interval-sorted rounds without prefetch (isolates the sort), with
    /// row-sorted resolve rounds to match.
    pub fn sorted() -> BatchConfig {
        BatchConfig {
            sort_by_interval: true,
            prefetch_distance: 0,
            resolve: ResolveConfig::sorted(),
        }
    }

    /// The full locality schedule: interval-sorted rounds plus software
    /// prefetch at [`DEFAULT_PREFETCH_DISTANCE`], and the resolver's own
    /// locality schedule for locate intervals.
    pub fn locality() -> BatchConfig {
        BatchConfig {
            sort_by_interval: true,
            prefetch_distance: DEFAULT_PREFETCH_DISTANCE,
            resolve: ResolveConfig::locality(),
        }
    }
}

/// Execution counters of one executed batch, for tests and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Lockstep rounds executed: `⌊m/k⌋` k-step rounds plus `m mod k`
    /// single-symbol tail rounds, for the longest surviving query of
    /// length `m`.
    pub rounds: usize,
    /// Total LF refinements issued across all queries and rounds.
    pub steps: usize,
    /// Queries live in the widest round (the initial non-empty batch).
    pub peak_live: usize,
    /// Resolver rounds of the batch's locate queries (zero when the
    /// batch located nothing) — bounded by the SA sampling rate.
    pub resolve_rounds: usize,
    /// LF steps the locate resolver issued across all cursors and rounds.
    pub resolve_lf_steps: usize,
    /// Cursors the locate resolver retired by hitting a sampled mark.
    /// Uncapped, this is the batch's total occurrence positions; capped
    /// locates may retire slightly more than they keep (the cap is
    /// checked at round boundaries).
    pub cursors_retired: usize,
    /// Resolver cursors dropped un-walked because their query hit its
    /// `max_hits` cap — the LF work the cap saved.
    pub cursors_dropped: usize,
}

impl BatchStats {
    /// Folds a shard's counters into a batch-wide total: work counters
    /// (`steps`, `peak_live`, resolver steps, retirements and drops) add
    /// up across concurrent workers, while the round counters — each the
    /// depth of the longest shard's lockstep schedule — take the maximum,
    /// matching wall-clock intuition.
    pub(crate) fn absorb_shard(&mut self, shard: BatchStats) {
        self.steps += shard.steps;
        self.peak_live += shard.peak_live;
        self.rounds = self.rounds.max(shard.rounds);
        self.resolve_lf_steps += shard.resolve_lf_steps;
        self.cursors_retired += shard.cursors_retired;
        self.cursors_dropped += shard.cursors_dropped;
        self.resolve_rounds = self.resolve_rounds.max(shard.resolve_rounds);
    }
}

/// In-flight state of one query between rounds. Rows fit `u32` because the
/// suffix array itself stores `u32` positions.
#[derive(Clone, Copy)]
struct LiveQuery {
    pattern: u32,
    /// Pattern symbols not yet consumed (a suffix of this length remains).
    remaining: u32,
    lo: u32,
    hi: u32,
}

/// Reusable worklists of the lockstep search loop, double-buffered so
/// the prefetch look-ahead can peek at untouched entries. Lives in a
/// [`crate::QueryArena`] so steady-state runs allocate nothing.
#[derive(Default)]
pub struct SearchScratch {
    live: Vec<LiveQuery>,
    next: Vec<LiveQuery>,
}

impl std::fmt::Debug for SearchScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchScratch")
            .field("live_capacity", &self.live.capacity())
            .field("next_capacity", &self.next.capacity())
            .finish()
    }
}

/// A batched query engine over a [`KStepFmIndex`].
///
/// All queries advance together: each round issues one k-step refinement
/// per live query (1-step refinements once a query is into its sub-k
/// tail), then drops queries that finished or died. See the crate docs for
/// why this ordering matters to the paper. A [`BatchConfig`] additionally
/// sorts each round by suffix-array interval and software-prefetches
/// upcoming queries' table blocks, turning the round's dependent memory
/// round-trips into overlapped, mostly-ordered fetches.
///
/// Run it through the [`crate::Executor`] trait with a
/// [`crate::QueryBatch`]; construct it through [`crate::EngineBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct BatchEngine<'a> {
    index: &'a KStepFmIndex,
    config: BatchConfig,
}

impl<'a> BatchEngine<'a> {
    /// An engine borrowing `index`, with the plain round schedule.
    pub fn new(index: &'a KStepFmIndex) -> BatchEngine<'a> {
        BatchEngine::with_config(index, BatchConfig::default())
    }

    /// An engine borrowing `index` with an explicit round schedule.
    pub fn with_config(index: &'a KStepFmIndex, config: BatchConfig) -> BatchEngine<'a> {
        BatchEngine { index, config }
    }

    /// The index this engine queries.
    pub fn index(&self) -> &'a KStepFmIndex {
        self.index
    }

    /// The round schedule this engine runs.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// The lockstep search round-loop: suffix-array intervals for every
    /// pattern, in input order, written into `intervals` (cleared
    /// first). Every operation of a mixed batch shares this loop —
    /// counts read the interval width, locates feed the resolver, and
    /// interval requests return it raw. Empty intervals are normalized
    /// to `0..0`; empty patterns match every row.
    pub(crate) fn search_core(
        &self,
        patterns: &[impl AsRef<[Base]>],
        intervals: &mut Vec<Range<usize>>,
        scratch: &mut SearchScratch,
    ) -> BatchStats {
        let k = self.index.k();
        let n = self.index.text_len();
        assert!(patterns.len() < u32::MAX as usize, "batch too large");
        intervals.clear();
        intervals.reserve(patterns.len());
        let live = &mut scratch.live;
        let next = &mut scratch.next;
        live.clear();
        next.clear();
        for (i, pattern) in patterns.iter().enumerate() {
            if pattern.as_ref().is_empty() {
                intervals.push(0..n); // the empty pattern matches every row
            } else {
                intervals.push(0..0);
                live.push(LiveQuery {
                    pattern: i as u32,
                    remaining: pattern.as_ref().len() as u32,
                    lo: 0,
                    hi: n as u32,
                });
            }
        }

        let mut stats = BatchStats {
            peak_live: live.len(),
            ..BatchStats::default()
        };
        // Survivors of each round are double-buffered into `next` instead
        // of compacted in place, so the prefetch look-ahead below can peek
        // at untouched entries.
        while !live.is_empty() {
            stats.rounds += 1;
            stats.steps += live.len();
            if self.config.sort_by_interval {
                live.sort_unstable_by_key(|q| q.lo);
            }
            let d = self.config.prefetch_distance;
            for j in 0..live.len() {
                if d > 0 {
                    if let Some(ahead) = live.get(j + d) {
                        self.prefetch_query(patterns, ahead);
                    }
                }
                let q = live[j];
                let pattern = patterns[q.pattern as usize].as_ref();
                let rem = q.remaining as usize;
                let range = q.lo as usize..q.hi as usize;
                let (range, consumed) = if rem >= k {
                    let kmer = Kmer::from_bases(&pattern[rem - k..rem]);
                    (self.index.kstep(kmer, range), k)
                } else {
                    (self.index.base_index().step(pattern[rem - 1], range), 1)
                };
                if range.is_empty() {
                    continue; // died: its result stays 0..0
                }
                if rem == consumed {
                    intervals[q.pattern as usize] = range; // finished
                    continue;
                }
                next.push(LiveQuery {
                    pattern: q.pattern,
                    remaining: (rem - consumed) as u32,
                    lo: range.start as u32,
                    hi: range.end as u32,
                });
            }
            std::mem::swap(live, next);
            next.clear();
        }
        stats
    }

    /// Hints the table blocks `q`'s next refinement will read — both the
    /// `lo` and `hi` rank blocks, on whichever table (k-mer or 1-step
    /// tail) the refinement will use.
    #[inline]
    fn prefetch_query(&self, patterns: &[impl AsRef<[Base]>], q: &LiveQuery) {
        let pattern = patterns[q.pattern as usize].as_ref();
        let rem = q.remaining as usize;
        let k = self.index.k();
        if rem >= k {
            let code = Kmer::from_bases(&pattern[rem - k..rem]).rank() as u16;
            self.index
                .kmer_occ()
                .prefetch_rank_pair(code, q.lo as usize, q.hi as usize);
        } else {
            let s = Symbol::Base(pattern[rem - 1]);
            let occ = self.index.base_index().occ();
            occ.prefetch_rank(s, q.lo as usize);
            occ.prefetch_rank(s, q.hi as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::query::{QueryBatch, QueryRequest};
    use exma_genome::alphabet::parse_bases;
    use exma_genome::genome::text_from_str;

    fn fig3_engine_input() -> (KStepFmIndex, Vec<Vec<Base>>) {
        let index = KStepFmIndex::from_text(&text_from_str("CATAGA").unwrap(), 2);
        let patterns = ["A", "TA", "AGA", "CATAGA", "GG", ""]
            .iter()
            .map(|p| parse_bases(p).unwrap())
            .collect();
        (index, patterns)
    }

    /// Every schedule the benchmarks exercise.
    fn all_configs() -> [BatchConfig; 4] {
        [
            BatchConfig::default(),
            BatchConfig::sorted(),
            BatchConfig::locality(),
            BatchConfig {
                sort_by_interval: false,
                prefetch_distance: 3,
                resolve: ResolveConfig {
                    sort_by_row: true,
                    prefetch_distance: 2,
                },
            },
        ]
    }

    #[test]
    fn batch_matches_sequential_search_under_every_schedule() {
        let (index, patterns) = fig3_engine_input();
        let batch = QueryBatch::uniform(QueryRequest::Interval, &patterns);
        for config in all_configs() {
            let engine = BatchEngine::with_config(&index, config);
            let (results, _) = engine.run(&batch);
            for (i, pattern) in patterns.iter().enumerate() {
                assert_eq!(
                    results.interval(i),
                    Some(index.backward_search(pattern)),
                    "{config:?}, pattern #{i}"
                );
            }
        }
    }

    #[test]
    fn counts_and_locates_line_up() {
        let (index, patterns) = fig3_engine_input();
        let engine = BatchEngine::new(&index);
        let counts = engine
            .run(&QueryBatch::uniform(QueryRequest::Count, &patterns))
            .0;
        assert_eq!(
            (0..counts.len())
                .map(|i| counts.count(i))
                .collect::<Vec<_>>(),
            vec![3, 1, 1, 1, 0, 7]
        );
        let located = engine
            .run(&QueryBatch::uniform(QueryRequest::locate(), &patterns))
            .0;
        assert_eq!(located.positions(0), &[1, 3, 5]);
        assert_eq!(located.positions(3), &[0]);
        assert_eq!(located.positions(4), &[] as &[u32]);
    }

    #[test]
    fn run_locate_matches_the_per_row_path_under_every_schedule() {
        let (index, patterns) = fig3_engine_input();
        let base = index.base_index();
        let batch = QueryBatch::uniform(QueryRequest::locate(), &patterns);
        for config in all_configs() {
            let engine = BatchEngine::with_config(&index, config);
            // The serial per-row baseline, straight off the index layer.
            let expected: Vec<Vec<u32>> = patterns
                .iter()
                .map(|p| {
                    let mut out = Vec::new();
                    base.resolve_range_into(index.backward_search(p), &mut out);
                    out
                })
                .collect();
            let (results, stats) = engine.run(&batch);
            assert_eq!(results.len(), patterns.len(), "{config:?}");
            for (i, expect) in expected.iter().enumerate() {
                assert_eq!(results.positions(i), &expect[..], "{config:?}, #{i}");
            }
            // Every interval row becomes exactly one retired cursor.
            let total: usize = expected.iter().map(Vec::len).sum();
            assert_eq!(stats.cursors_retired, total, "{config:?}");
            assert_eq!(stats.cursors_dropped, 0, "{config:?}");
            assert!(stats.resolve_rounds >= 1, "{config:?}");
        }
    }

    #[test]
    fn pure_search_batches_never_touch_resolve_counters() {
        let (index, patterns) = fig3_engine_input();
        let batch = QueryBatch::uniform(QueryRequest::Count, &patterns);
        let (_, stats) = BatchEngine::new(&index).run(&batch);
        assert_eq!(stats.resolve_rounds, 0);
        assert_eq!(stats.resolve_lf_steps, 0);
        assert_eq!(stats.cursors_retired, 0);
        assert_eq!(stats.cursors_dropped, 0);
    }

    #[test]
    fn stats_count_rounds_and_dropped_queries() {
        let (index, patterns) = fig3_engine_input();
        let engine = BatchEngine::new(&index);
        let (_, stats) = engine.run(&QueryBatch::uniform(QueryRequest::Count, &patterns));
        // Empty pattern never enters the round-robin.
        assert_eq!(stats.peak_live, 5);
        // Longest pattern is 6 symbols at k = 2 → 3 rounds.
        assert_eq!(stats.rounds, 3);
        // Dead/finished queries must not keep consuming steps: "GG" dies in
        // round 1, "A"/"TA" finish in round 1, "AGA" finishes in round 2
        // (k-step then tail step), "CATAGA" runs all 3 rounds:
        // 5 + 2 + 1 = 8 refinements, strictly fewer than 5 queries x 3.
        assert_eq!(stats.steps, 8);
    }

    #[test]
    fn sorting_changes_no_counter() {
        // Interval sorting reorders work within a round; it must not
        // create or destroy any (the bench harness gates on this).
        let (index, patterns) = fig3_engine_input();
        let batch = QueryBatch::uniform(QueryRequest::Count, &patterns);
        let (_, plain) = BatchEngine::new(&index).run(&batch);
        for config in [BatchConfig::sorted(), BatchConfig::locality()] {
            let (_, stats) = BatchEngine::with_config(&index, config).run(&batch);
            assert_eq!(stats, plain, "{config:?}");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (index, _) = fig3_engine_input();
        let engine = BatchEngine::new(&index);
        let (results, stats) = engine.run(&QueryBatch::new());
        assert!(results.is_empty());
        assert_eq!(stats, BatchStats::default());
    }
}
