//! Multi-threaded query sharding over the batch engine.
//!
//! A batch of backward searches is embarrassingly parallel: queries never
//! exchange state, and the [`exma_index::KStepFmIndex`] is read-only and
//! `Sync`. This module splits a batch into contiguous shards — one per
//! worker — and runs each shard's lockstep rounds on its own
//! [`std::thread::scope`] thread. Scoped threads keep the engine
//! dependency-free (no rayon, the container builds offline) while still
//! borrowing the index and patterns without `Arc` plumbing. Results come
//! back in input order; per-shard [`BatchStats`] are merged.

use std::ops::Range;

use exma_genome::Base;
use exma_index::KStepFmIndex;

use crate::batch::{BatchConfig, BatchEngine, BatchStats};
use crate::locate::LocateResults;

/// A sharded, multi-threaded batch engine over a [`KStepFmIndex`].
///
/// Each of `threads` workers runs a [`BatchEngine`] (with this engine's
/// [`BatchConfig`]) on one contiguous shard of the batch. Answers are
/// identical to single-threaded execution for any thread count — shard
/// boundaries only move work between workers, never change it — and are
/// property-tested to be.
#[derive(Debug, Clone, Copy)]
pub struct ShardedEngine<'a> {
    index: &'a KStepFmIndex,
    threads: usize,
    config: BatchConfig,
}

impl<'a> ShardedEngine<'a> {
    /// An engine borrowing `index`, sharding across `threads` workers with
    /// the full locality schedule ([`BatchConfig::locality`]) per shard.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(index: &'a KStepFmIndex, threads: usize) -> ShardedEngine<'a> {
        ShardedEngine::with_config(index, threads, BatchConfig::locality())
    }

    /// An engine with an explicit per-shard round schedule.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_config(
        index: &'a KStepFmIndex,
        threads: usize,
        config: BatchConfig,
    ) -> ShardedEngine<'a> {
        assert!(threads > 0, "thread count must be positive");
        ShardedEngine {
            index,
            threads,
            config,
        }
    }

    /// The index this engine queries.
    pub fn index(&self) -> &'a KStepFmIndex {
        self.index
    }

    /// Number of worker threads a batch is sharded across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-shard round schedule.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// Runs `work` on every shard concurrently and concatenates the
    /// shards' output `Vec`s back into input order. `patterns.chunks`
    /// yields shards in order, threads are joined in spawn order, so
    /// concatenation restores the input permutation exactly.
    fn run_sharded<P, T>(
        &self,
        patterns: &[P],
        work: impl Fn(BatchEngine<'a>, &[P]) -> (Vec<T>, BatchStats) + Sync,
    ) -> (Vec<T>, BatchStats)
    where
        P: AsRef<[Base]> + Sync,
        T: Send,
    {
        let engine = BatchEngine::with_config(self.index, self.config);
        if self.threads == 1 || patterns.len() <= 1 {
            return work(engine, patterns);
        }
        let shard_len = patterns.len().div_ceil(self.threads);
        let shards: Vec<(Vec<T>, BatchStats)> = std::thread::scope(|scope| {
            let workers: Vec<_> = patterns
                .chunks(shard_len)
                .map(|shard| {
                    let work = &work;
                    scope.spawn(move || work(engine, shard))
                })
                .collect();
            workers
                .into_iter()
                .map(|worker| worker.join().expect("shard worker panicked"))
                .collect()
        });
        let mut merged = Vec::with_capacity(patterns.len());
        let mut stats = BatchStats::default();
        for (results, shard_stats) in shards {
            merged.extend(results);
            stats.absorb_shard(shard_stats);
        }
        (merged, stats)
    }

    /// Suffix-array intervals for every pattern, in input order — each
    /// identical to `index.backward_search(pattern)` regardless of thread
    /// count.
    pub fn search_batch(&self, patterns: &[impl AsRef<[Base]> + Sync]) -> Vec<Range<usize>> {
        self.search_batch_with_stats(patterns).0
    }

    /// [`ShardedEngine::search_batch`] plus merged execution counters.
    pub fn search_batch_with_stats(
        &self,
        patterns: &[impl AsRef<[Base]> + Sync],
    ) -> (Vec<Range<usize>>, BatchStats) {
        self.run_sharded(patterns, |engine, shard| {
            engine.search_batch_with_stats(shard)
        })
    }

    /// Occurrence counts for every pattern, in input order.
    pub fn count_batch(&self, patterns: &[impl AsRef<[Base]> + Sync]) -> Vec<usize> {
        self.search_batch(patterns)
            .into_iter()
            .map(|range| range.len())
            .collect()
    }

    /// The sharded batched `locate` pipeline: each worker runs
    /// [`BatchEngine::run_locate`] on its shard — lockstep searches, then
    /// a shared resolver worklist over the shard's intervals with a pooled
    /// output buffer — and the per-shard pools are stitched back into
    /// input order. Shard boundaries only move cursors between workers'
    /// worklists, so answers (ordering included) are identical to
    /// single-threaded execution at any thread count.
    pub fn run_locate(
        &self,
        patterns: &[impl AsRef<[Base]> + Sync],
    ) -> (LocateResults, BatchStats) {
        let engine = BatchEngine::with_config(self.index, self.config);
        if self.threads == 1 || patterns.len() <= 1 {
            return engine.run_locate(patterns);
        }
        let shard_len = patterns.len().div_ceil(self.threads);
        let shards: Vec<(LocateResults, BatchStats)> = std::thread::scope(|scope| {
            let workers: Vec<_> = patterns
                .chunks(shard_len)
                .map(|shard| scope.spawn(move || engine.run_locate(shard)))
                .collect();
            workers
                .into_iter()
                .map(|worker| worker.join().expect("shard worker panicked"))
                .collect()
        });
        let mut merged = LocateResults::default();
        merged.reserve_exact(
            shards.iter().map(|(r, _)| r.total_positions()).sum(),
            shards.iter().map(|(r, _)| r.len()).sum(),
        );
        let mut stats = BatchStats::default();
        for (results, shard_stats) in &shards {
            merged.append(results);
            stats.absorb_shard(*shard_stats);
        }
        (merged, stats)
    }

    /// Sorted occurrence positions for every pattern, in input order —
    /// [`ShardedEngine::run_locate`] exploded into one `Vec` per query.
    /// Each worker resolves its own shard's interval rows, so `locate`'s
    /// lockstep LF-walks parallelize along with the searches.
    pub fn locate_batch(&self, patterns: &[impl AsRef<[Base]> + Sync]) -> Vec<Vec<u32>> {
        self.run_locate(patterns).0.into_vecs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::alphabet::parse_bases;
    use exma_genome::genome::text_from_str;

    fn fig3_engine_input() -> (KStepFmIndex, Vec<Vec<Base>>) {
        let index = KStepFmIndex::from_text(&text_from_str("CATAGA").unwrap(), 2);
        let patterns = ["A", "TA", "AGA", "CATAGA", "GG", ""]
            .iter()
            .map(|p| parse_bases(p).unwrap())
            .collect();
        (index, patterns)
    }

    #[test]
    fn any_thread_count_matches_the_batch_engine() {
        let (index, patterns) = fig3_engine_input();
        let expected = BatchEngine::new(&index).search_batch(&patterns);
        for threads in [1, 2, 3, 6, 9] {
            let sharded = ShardedEngine::new(&index, threads);
            assert_eq!(
                sharded.search_batch(&patterns),
                expected,
                "{threads} threads"
            );
            assert_eq!(
                sharded.count_batch(&patterns),
                vec![3, 1, 1, 1, 0, 7],
                "{threads} threads"
            );
        }
    }

    #[test]
    fn locate_shards_in_input_order() {
        let (index, patterns) = fig3_engine_input();
        let expected = BatchEngine::new(&index).locate_batch(&patterns);
        for threads in [2, 4] {
            assert_eq!(
                ShardedEngine::new(&index, threads).locate_batch(&patterns),
                expected
            );
        }
    }

    #[test]
    fn run_locate_merges_shard_pools_in_input_order() {
        let (index, patterns) = fig3_engine_input();
        let (single, single_stats) =
            BatchEngine::with_config(&index, BatchConfig::locality()).run_locate(&patterns);
        for threads in [2usize, 3, 5] {
            let (merged, stats) = ShardedEngine::new(&index, threads).run_locate(&patterns);
            assert_eq!(merged, single, "{threads} threads");
            // Resolver work moves between workers but never changes in
            // total; no shard can run more resolve rounds than the whole
            // batch's deepest cursor walk.
            assert_eq!(stats.cursors_retired, single_stats.cursors_retired);
            assert_eq!(stats.resolve_lf_steps, single_stats.resolve_lf_steps);
            assert!(stats.resolve_rounds <= single_stats.resolve_rounds);
        }
    }

    #[test]
    fn merged_stats_preserve_total_work() {
        let (index, patterns) = fig3_engine_input();
        let (_, single) = BatchEngine::with_config(&index, BatchConfig::locality())
            .search_batch_with_stats(&patterns);
        let (_, merged) = ShardedEngine::new(&index, 3).search_batch_with_stats(&patterns);
        // Sharding moves refinements between workers but never changes
        // their total, and no shard can run more rounds than the whole
        // batch's longest query.
        assert_eq!(merged.steps, single.steps);
        assert_eq!(merged.peak_live, single.peak_live);
        assert!(merged.rounds <= single.rounds);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (index, _) = fig3_engine_input();
        let empty: Vec<Vec<Base>> = Vec::new();
        let (results, stats) = ShardedEngine::new(&index, 4).search_batch_with_stats(&empty);
        assert!(results.is_empty());
        assert_eq!(stats, BatchStats::default());
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_is_rejected() {
        let (index, _) = fig3_engine_input();
        let _ = ShardedEngine::new(&index, 0);
    }
}
