//! Multi-threaded query sharding over the batch engine.
//!
//! A batch of queries is embarrassingly parallel: queries never exchange
//! state, and the [`exma_index::KStepFmIndex`] is read-only and `Sync`.
//! The [`crate::Executor`] impl of [`ShardedEngine`] splits a
//! [`crate::QueryBatch`] into contiguous shards — one per worker — and
//! runs each shard's lockstep rounds (search *and* locate resolution) on
//! its own [`std::thread::scope`] thread. Scoped threads keep the engine
//! dependency-free (no rayon, the container builds offline) while still
//! borrowing the index and patterns without `Arc` plumbing. Results come
//! back in input order; per-shard [`crate::BatchStats`] are merged. With
//! `threads == 1` the sharded path short-circuits to the serial
//! [`crate::BatchEngine`] — no spawn, no merge — so a one-thread
//! executor costs exactly what the serial engine costs.

use exma_index::KStepFmIndex;

use crate::batch::BatchConfig;

/// A sharded, multi-threaded batch engine over a [`KStepFmIndex`].
///
/// Each of `threads` workers runs a [`crate::BatchEngine`] (with this
/// engine's [`BatchConfig`]) on one contiguous shard of the batch. Answers are
/// identical to single-threaded execution for any thread count — shard
/// boundaries only move work between workers, never change it — and are
/// property-tested to be.
///
/// Run it through the [`crate::Executor`] trait with a
/// [`crate::QueryBatch`]; construct it through [`crate::EngineBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedEngine<'a> {
    index: &'a KStepFmIndex,
    threads: usize,
    config: BatchConfig,
}

impl<'a> ShardedEngine<'a> {
    /// An engine borrowing `index`, sharding across `threads` workers with
    /// the full locality schedule ([`BatchConfig::locality`]) per shard.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(index: &'a KStepFmIndex, threads: usize) -> ShardedEngine<'a> {
        ShardedEngine::with_config(index, threads, BatchConfig::locality())
    }

    /// An engine with an explicit per-shard round schedule.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_config(
        index: &'a KStepFmIndex,
        threads: usize,
        config: BatchConfig,
    ) -> ShardedEngine<'a> {
        assert!(threads > 0, "thread count must be positive");
        ShardedEngine {
            index,
            threads,
            config,
        }
    }

    /// The index this engine queries.
    pub fn index(&self) -> &'a KStepFmIndex {
        self.index
    }

    /// Number of worker threads a batch is sharded across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-shard round schedule.
    pub fn config(&self) -> BatchConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchEngine, BatchStats};
    use crate::exec::Executor;
    use crate::query::{QueryBatch, QueryOutput, QueryRequest};
    use exma_genome::alphabet::parse_bases;
    use exma_genome::genome::text_from_str;

    fn fig3_batch() -> (KStepFmIndex, QueryBatch) {
        let index = KStepFmIndex::from_text(&text_from_str("CATAGA").unwrap(), 2);
        let mut batch = QueryBatch::new();
        for (i, p) in ["A", "TA", "AGA", "CATAGA", "GG", ""].iter().enumerate() {
            let pattern = parse_bases(p).unwrap();
            match i % 3 {
                0 => batch.push(QueryRequest::Count, pattern),
                1 => batch.push(QueryRequest::locate(), pattern),
                _ => batch.push(QueryRequest::Interval, pattern),
            }
        }
        (index, batch)
    }

    #[test]
    fn any_thread_count_matches_the_batch_engine() {
        let (index, batch) = fig3_batch();
        let (expected, expected_stats) =
            BatchEngine::with_config(&index, BatchConfig::locality()).run(&batch);
        for threads in [1usize, 2, 3, 6, 9] {
            let (results, stats) = ShardedEngine::new(&index, threads).run(&batch);
            assert_eq!(results, expected, "{threads} threads");
            // Sharding moves work between workers but never changes its
            // total; no shard can run more rounds than the whole batch's
            // longest query.
            assert_eq!(stats.steps, expected_stats.steps, "{threads} threads");
            assert_eq!(stats.peak_live, expected_stats.peak_live);
            assert_eq!(stats.cursors_retired, expected_stats.cursors_retired);
            assert_eq!(stats.resolve_lf_steps, expected_stats.resolve_lf_steps);
            assert!(stats.rounds <= expected_stats.rounds);
            assert!(stats.resolve_rounds <= expected_stats.resolve_rounds);
        }
    }

    #[test]
    fn one_thread_short_circuits_to_the_serial_engine() {
        // threads == 1 must take the serial path — identical results AND
        // identical stats shape (a spawned shard would still merge, but
        // the short-circuit is observable through the arena: the serial
        // path pools into the caller's arena with no append pass).
        let (index, batch) = fig3_batch();
        let serial = BatchEngine::with_config(&index, BatchConfig::locality());
        let sharded = ShardedEngine::new(&index, 1);
        let mut arena = crate::query::QueryArena::new();
        let stats = sharded.run_into(&batch, &mut arena);
        let (expected, expected_stats) = serial.run(&batch);
        assert_eq!(arena.results(), &expected);
        assert_eq!(stats, expected_stats);
    }

    #[test]
    fn mixed_outputs_survive_ragged_sharding() {
        let (index, batch) = fig3_batch();
        // 6 queries on 4 threads: shards of 2, 2, 2 — and on 5 threads:
        // 2, 2, 2 ragged. Tags must come back in input order either way.
        for threads in [4usize, 5] {
            let (results, _) = ShardedEngine::new(&index, threads).run(&batch);
            assert!(matches!(results.output(0), QueryOutput::Count(3)));
            assert_eq!(results.positions(1), &[2]);
            assert!(results.interval(2).is_some());
            assert!(matches!(results.output(3), QueryOutput::Count(1)));
            assert_eq!(results.positions(4), &[] as &[u32]);
            assert_eq!(results.interval(5), Some(0..7));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (index, _) = fig3_batch();
        let (results, stats) = ShardedEngine::new(&index, 4).run(&QueryBatch::new());
        assert!(results.is_empty());
        assert_eq!(stats, BatchStats::default());
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_is_rejected() {
        let (index, _) = fig3_batch();
        let _ = ShardedEngine::new(&index, 0);
    }
}
