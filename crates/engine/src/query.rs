//! The typed query surface: requests, batches, pooled results, and the
//! reusable arena every [`crate::Executor`] runs through.
//!
//! Four PRs of hot-path work left the engine with six overlapping
//! entry points (`search_batch`, `count_batch`, `run_locate`, ...), each
//! fixing one operation for the whole batch. A production batch is not
//! that uniform: a read mapper counts some seeds, locates others — often
//! with a per-seed hit cap — and wants raw suffix-array intervals for
//! the rest. This module replaces the per-op methods with data: a
//! [`QueryRequest`] names the operation (and its limits) per query, a
//! [`QueryBatch`] carries any mix of them in one submission, and a
//! [`QueryResults`] returns every answer through one pooled buffer —
//! one flat position pool delimited by per-query offsets, with a
//! per-query [`QueryOutput`] tag. A [`QueryArena`] owns every piece of
//! scratch an execution needs, so a caller that keeps one arena across
//! submissions allocates nothing in steady state.

use std::ops::Range;

use exma_genome::Base;
use exma_index::{ResolveArena, UNCAPPED};

use crate::batch::SearchScratch;

/// What one query of a [`QueryBatch`] asks for.
///
/// `#[non_exhaustive]`: the ROADMAP names future request shapes
/// (approximate search, document listing), so out-of-crate matches must
/// carry a wildcard arm — a wire decoder, for instance, maps unknown
/// shapes to an error frame instead of failing to compile when one
/// lands.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRequest {
    /// Number of occurrences of the pattern.
    Count,
    /// Occurrence positions, optionally capped: with
    /// `max_hits: Some(h)` at most `h` positions come back and the
    /// resolver stops walking the query's remaining interval rows once
    /// the cap is hit (see
    /// [`exma_index::FmIndex::resolve_range_capped_into`] for the
    /// deterministic selection rule).
    Locate {
        /// `None` resolves every occurrence.
        max_hits: Option<u32>,
    },
    /// The raw suffix-array interval of the pattern — for callers that
    /// schedule their own resolution or cache intervals across batches.
    Interval,
    /// Strand-agnostic occurrence positions over a bidirectional
    /// (doubled-text) index: forward hits plus reverse-complement hits
    /// mapped back to forward coordinates, each answer an
    /// [`exma_index::bidir::encode_hit`] value carrying its strand bit.
    /// Palindromic patterns report each site once, tagged forward (see
    /// [`exma_index::bidir`] for the dedup rule). The cap keeps the
    /// `max_hits` *smallest* `(position, strand)` hits after mapping —
    /// deterministic across schedules and thread counts, unlike the
    /// resolver-order cap of [`QueryRequest::Locate`].
    ///
    /// On a forward-only index the mapping arithmetic still runs but
    /// classifies against a half boundary that does not exist; the
    /// output is deterministic yet meaningless, exactly as a locate
    /// against the wrong reference would be. Build the index with
    /// [`crate::EngineBuilder::bidirectional`] to make it answer.
    SearchBoth {
        /// `None` keeps every strand-agnostic hit.
        max_hits: Option<u32>,
    },
}

impl QueryRequest {
    /// An uncapped locate.
    pub fn locate() -> QueryRequest {
        QueryRequest::Locate { max_hits: None }
    }

    /// A locate returning at most `max_hits` positions.
    pub fn locate_capped(max_hits: u32) -> QueryRequest {
        QueryRequest::Locate {
            max_hits: Some(max_hits),
        }
    }

    /// An uncapped strand-agnostic search.
    pub fn search_both() -> QueryRequest {
        QueryRequest::SearchBoth { max_hits: None }
    }

    /// A strand-agnostic search returning at most `max_hits` hits.
    pub fn search_both_capped(max_hits: u32) -> QueryRequest {
        QueryRequest::SearchBoth {
            max_hits: Some(max_hits),
        }
    }

    /// The resolver-facing cap of a locate request (`None` for the
    /// operations that never feed the resolver). A [`QueryRequest::SearchBoth`]
    /// resolves its raw interval *uncapped*: boundary straddlers and
    /// palindrome duplicates are only identified after mapping, so the
    /// user cap is applied post-mapping to keep the selection
    /// deterministic.
    pub(crate) fn resolver_cap(&self) -> Option<u32> {
        match *self {
            QueryRequest::Locate { max_hits } => Some(max_hits.unwrap_or(UNCAPPED)),
            QueryRequest::SearchBoth { .. } => Some(UNCAPPED),
            _ => None,
        }
    }
}

/// A batch of typed queries: any mix of counts, (capped) locates, and
/// interval requests, submitted to an [`crate::Executor`] in one call.
///
/// ```
/// use exma_engine::{EngineBuilder, Executor, QueryBatch, QueryOutput};
/// use exma_genome::{Genome, GenomeProfile};
///
/// let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
/// let index = EngineBuilder::new()
///     .k(2)
///     .build_index(&genome.text_with_sentinel())
///     .unwrap();
/// let engine = EngineBuilder::new().k(2).attach(&index).unwrap();
///
/// let batch = QueryBatch::new()
///     .count(genome.seq().slice(100, 21))
///     .locate(genome.seq().slice(500, 33))
///     .locate_capped(genome.seq().slice(40, 4), 5)
///     .interval(genome.seq().slice(900, 12));
/// let (results, _stats) = engine.run(&batch);
///
/// assert!(matches!(results.output(0), QueryOutput::Count(n) if n >= 1));
/// assert!(results.positions(1).contains(&500));
/// assert!(results.positions(2).len() <= 5);
/// assert!(results.interval(3).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryBatch {
    requests: Vec<QueryRequest>,
    patterns: Vec<Vec<Base>>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> QueryBatch {
        QueryBatch::default()
    }

    /// Appends one query.
    pub fn push(&mut self, request: QueryRequest, pattern: impl AsRef<[Base]>) {
        self.requests.push(request);
        self.patterns.push(pattern.as_ref().to_vec());
    }

    /// Appends a count query (builder style).
    pub fn count(mut self, pattern: impl AsRef<[Base]>) -> QueryBatch {
        self.push(QueryRequest::Count, pattern);
        self
    }

    /// Appends an uncapped locate query (builder style).
    pub fn locate(mut self, pattern: impl AsRef<[Base]>) -> QueryBatch {
        self.push(QueryRequest::locate(), pattern);
        self
    }

    /// Appends a locate query keeping at most `max_hits` positions
    /// (builder style).
    pub fn locate_capped(mut self, pattern: impl AsRef<[Base]>, max_hits: u32) -> QueryBatch {
        self.push(QueryRequest::locate_capped(max_hits), pattern);
        self
    }

    /// Appends an interval query (builder style).
    pub fn interval(mut self, pattern: impl AsRef<[Base]>) -> QueryBatch {
        self.push(QueryRequest::Interval, pattern);
        self
    }

    /// Appends an uncapped strand-agnostic search (builder style).
    pub fn search_both(mut self, pattern: impl AsRef<[Base]>) -> QueryBatch {
        self.push(QueryRequest::search_both(), pattern);
        self
    }

    /// Appends a strand-agnostic search keeping at most `max_hits`
    /// encoded hits (builder style).
    pub fn search_both_capped(mut self, pattern: impl AsRef<[Base]>, max_hits: u32) -> QueryBatch {
        self.push(QueryRequest::search_both_capped(max_hits), pattern);
        self
    }

    /// A batch asking the same `request` of every pattern — how the
    /// uniform workloads (all-count, all-locate) are spelled.
    pub fn uniform<P: AsRef<[Base]>>(
        request: QueryRequest,
        patterns: impl IntoIterator<Item = P>,
    ) -> QueryBatch {
        let mut batch = QueryBatch::new();
        for pattern in patterns {
            batch.push(request, pattern);
        }
        batch
    }

    /// Appends every query of `other` after this batch's, in order —
    /// how a serving front-end coalesces many client submissions into
    /// one engine run. The merged batch's query `self.len() + i` is
    /// `other`'s query `i`, so callers can map pooled results back to
    /// each submission by remembering the offset at which it was merged.
    pub fn extend_from(&mut self, other: &QueryBatch) {
        self.requests.extend_from_slice(&other.requests);
        self.patterns.extend_from_slice(&other.patterns);
    }

    /// Empties the batch, keeping the outer buffers' capacity — a
    /// coalescing loop can reuse one merge target across rounds.
    pub fn clear(&mut self) {
        self.requests.clear();
        self.patterns.clear();
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` iff the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Query `i`'s request.
    pub fn request(&self, i: usize) -> QueryRequest {
        self.requests[i]
    }

    /// Query `i`'s pattern.
    pub fn pattern(&self, i: usize) -> &[Base] {
        &self.patterns[i]
    }

    /// All requests, in query order.
    pub fn requests(&self) -> &[QueryRequest] {
        &self.requests
    }

    /// All patterns, in query order.
    pub fn patterns(&self) -> &[Vec<Base>] {
        &self.patterns
    }

    /// Contiguous shards of at most `shard_len` queries — how the
    /// sharded engine splits a batch across workers.
    pub(crate) fn shards(
        &self,
        shard_len: usize,
    ) -> impl Iterator<Item = (&[QueryRequest], &[Vec<Base>])> {
        self.requests
            .chunks(shard_len)
            .zip(self.patterns.chunks(shard_len))
    }
}

/// The per-query tag of a [`QueryResults`] entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutput {
    /// Occurrence count of a [`QueryRequest::Count`] query.
    Count(u32),
    /// Suffix-array interval of a [`QueryRequest::Interval`] query
    /// (`lo == hi` means no occurrences).
    Interval {
        /// First row of the interval.
        lo: u32,
        /// One past the last row.
        hi: u32,
    },
    /// A [`QueryRequest::Locate`] query whose positions sit in the
    /// pooled buffer ([`QueryResults::positions`]).
    Located {
        /// `true` iff `max_hits` cut the output short of the full
        /// occurrence list.
        truncated: bool,
    },
    /// A [`QueryRequest::SearchBoth`] query whose pooled positions are
    /// [`exma_index::bidir::encode_hit`] strand-hits, sorted by
    /// `(position, strand)`.
    BothLocated {
        /// `true` iff `max_hits` cut the output short of the full
        /// strand-agnostic hit list.
        truncated: bool,
    },
}

/// Pooled answers of one executed [`QueryBatch`].
///
/// Every located position lives in one flat buffer delimited by
/// per-query offsets (non-locate queries own a zero-width slice), and
/// each query carries a [`QueryOutput`] tag — two allocations for the
/// whole batch, whatever mix of operations it carried. A
/// recycled instance (via [`QueryArena`]) keeps its buffers' capacity,
/// so repeated batches of similar shape allocate nothing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryResults {
    /// All located positions, concatenated in query order.
    flat: Vec<u32>,
    /// `offsets[i]..offsets[i + 1]` delimits query `i` in `flat`; empty
    /// only before any batch ran (a 0-query batch still yields `[0]`).
    offsets: Vec<usize>,
    /// Query `i`'s output tag.
    outputs: Vec<QueryOutput>,
}

impl QueryResults {
    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// `true` iff the batch held no queries.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Query `i`'s output tag.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn output(&self, i: usize) -> QueryOutput {
        self.outputs[i]
    }

    /// Every query's output tag, in query order.
    pub fn outputs(&self) -> &[QueryOutput] {
        &self.outputs
    }

    /// Query `i`'s located positions, sorted ascending — empty unless
    /// the query was a [`QueryRequest::Locate`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn positions(&self, i: usize) -> &[u32] {
        &self.flat[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Query `i`'s occurrence count, whatever its operation: the stored
    /// count, the interval width, or the number of *kept* positions
    /// (which a capped locate may have truncated).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn count(&self, i: usize) -> usize {
        match self.outputs[i] {
            QueryOutput::Count(n) => n as usize,
            QueryOutput::Interval { lo, hi } => (hi - lo) as usize,
            QueryOutput::Located { .. } | QueryOutput::BothLocated { .. } => {
                self.offsets[i + 1] - self.offsets[i]
            }
        }
    }

    /// Query `i`'s suffix-array interval, if it was a
    /// [`QueryRequest::Interval`] query.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn interval(&self, i: usize) -> Option<Range<usize>> {
        match self.outputs[i] {
            QueryOutput::Interval { lo, hi } => Some(lo as usize..hi as usize),
            _ => None,
        }
    }

    /// The pooled buffer itself: every located position in query order.
    /// Checksum and aggregation passes can fold this directly.
    pub fn all_positions(&self) -> &[u32] {
        &self.flat
    }

    /// Total located positions across all queries.
    pub fn total_positions(&self) -> usize {
        self.flat.len()
    }

    /// Heap bytes of the pooled buffers (capacity-based: a recycled
    /// instance reports its high-water footprint).
    pub fn heap_bytes(&self) -> usize {
        self.flat.capacity() * 4
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.outputs.capacity() * std::mem::size_of::<QueryOutput>()
    }

    /// Clears for a new batch of `queries` queries, keeping capacity.
    pub(crate) fn reset(&mut self, queries: usize) {
        self.flat.clear();
        self.offsets.clear();
        self.offsets.reserve(queries + 1);
        self.offsets.push(0);
        self.outputs.clear();
        self.outputs.reserve(queries);
    }

    /// The flat position pool, for the resolver to fill in place.
    /// Offsets are rebuilt afterwards by the `push_*` calls.
    pub(crate) fn flat_mut(&mut self) -> &mut Vec<u32> {
        &mut self.flat
    }

    /// Appends a query that owns no positions (count or interval).
    pub(crate) fn push_tag(&mut self, output: QueryOutput) {
        debug_assert!(!matches!(
            output,
            QueryOutput::Located { .. } | QueryOutput::BothLocated { .. }
        ));
        self.offsets
            .push(*self.offsets.last().expect("reset first"));
        self.outputs.push(output);
    }

    /// Appends a located query whose next `width` pooled positions are
    /// already in `flat` (the resolver wrote them there).
    pub(crate) fn push_located(&mut self, width: usize, truncated: bool) {
        let end = self.offsets.last().expect("reset first") + width;
        debug_assert!(end <= self.flat.len());
        self.offsets.push(end);
        self.outputs.push(QueryOutput::Located { truncated });
    }

    /// Appends a located query by copying `positions` into the pool —
    /// the sequential executors' path.
    pub(crate) fn push_positions(&mut self, positions: &[u32], truncated: bool) {
        self.flat.extend_from_slice(positions);
        self.offsets.push(self.flat.len());
        self.outputs.push(QueryOutput::Located { truncated });
    }

    /// Appends a strand-agnostic query whose next `width` pooled
    /// entries (encoded strand-hits) are already in `flat`.
    pub(crate) fn push_both_located(&mut self, width: usize, truncated: bool) {
        let end = self.offsets.last().expect("reset first") + width;
        debug_assert!(end <= self.flat.len());
        self.offsets.push(end);
        self.outputs.push(QueryOutput::BothLocated { truncated });
    }

    /// Appends a strand-agnostic query by copying encoded strand-hits
    /// into the pool — the sequential executors' path.
    pub(crate) fn push_both_positions(&mut self, hits: &[u32], truncated: bool) {
        self.flat.extend_from_slice(hits);
        self.offsets.push(self.flat.len());
        self.outputs.push(QueryOutput::BothLocated { truncated });
    }

    /// Appends another batch's results after this one's, rebasing its
    /// offsets — how the sharded engine stitches per-shard pools back
    /// into input order.
    pub(crate) fn append(&mut self, other: &QueryResults) {
        let base = self.flat.len();
        self.flat.extend_from_slice(&other.flat);
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.offsets
            .extend(other.offsets.iter().skip(1).map(|&o| base + o));
        self.outputs.extend_from_slice(&other.outputs);
    }
}

/// Every piece of scratch one [`crate::Executor`] run needs: the pooled
/// [`QueryResults`], the searched intervals, the resolver feed, and the
/// lockstep worklists. All buffers keep their high-water capacity, so a
/// caller that reuses one arena across submissions reaches a steady
/// state where [`crate::Executor::run_into`] allocates nothing.
/// (The sharded engine's workers each use a worker-local arena; the
/// caller's arena still pools the merged results.)
#[derive(Debug, Default)]
pub struct QueryArena {
    /// The batch's pooled answers.
    pub(crate) results: QueryResults,
    /// Searched suffix-array interval of every query.
    pub(crate) intervals: Vec<Range<usize>>,
    /// Intervals of the locate queries, in query order — the resolver
    /// worklist feed.
    pub(crate) locate_intervals: Vec<Range<usize>>,
    /// Hit caps aligned with `locate_intervals`.
    pub(crate) caps: Vec<u32>,
    /// The resolver's offsets over `locate_intervals`.
    pub(crate) locate_offsets: Vec<usize>,
    /// Lockstep search worklists.
    pub(crate) search: SearchScratch,
    /// Lockstep resolver worklists and staging.
    pub(crate) resolve: ResolveArena,
    /// Per-query buffer of the sequential executors.
    pub(crate) seq_buf: Vec<u32>,
}

impl QueryArena {
    /// A fresh arena; buffers warm up over the first submissions.
    pub fn new() -> QueryArena {
        QueryArena::default()
    }

    /// The last run's results, by reference.
    pub fn results(&self) -> &QueryResults {
        &self.results
    }

    /// Moves the last run's results out (the arena's result buffers
    /// start cold again; prefer [`QueryArena::results`] when pooling).
    pub fn take_results(&mut self) -> QueryResults {
        std::mem::take(&mut self.results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builders_record_requests_in_order() {
        let base = |s: &str| exma_genome::alphabet::parse_bases(s).unwrap();
        let batch = QueryBatch::new()
            .count(base("ACG"))
            .locate(base("T"))
            .locate_capped(base("GG"), 3)
            .interval(base(""));
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        assert_eq!(batch.request(0), QueryRequest::Count);
        assert_eq!(batch.request(1), QueryRequest::locate());
        assert_eq!(batch.request(2), QueryRequest::locate_capped(3));
        assert_eq!(batch.request(3), QueryRequest::Interval);
        assert_eq!(batch.pattern(0), &base("ACG")[..]);
        assert!(batch.pattern(3).is_empty());

        let uniform = QueryBatch::uniform(QueryRequest::Count, [base("A"), base("C")]);
        assert_eq!(uniform.requests(), &[QueryRequest::Count; 2]);
    }

    #[test]
    fn extend_from_merges_submissions_in_order() {
        let base = |s: &str| exma_genome::alphabet::parse_bases(s).unwrap();
        let mut merged = QueryBatch::new().count(base("AC"));
        let other = QueryBatch::new().locate(base("G")).interval(base("T"));
        merged.extend_from(&other);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.request(0), QueryRequest::Count);
        assert_eq!(merged.request(1), QueryRequest::locate());
        assert_eq!(merged.pattern(2), &base("T")[..]);
        merged.clear();
        assert!(merged.is_empty());
    }

    #[test]
    fn resolver_caps_only_exist_for_resolving_requests() {
        assert_eq!(QueryRequest::Count.resolver_cap(), None);
        assert_eq!(QueryRequest::Interval.resolver_cap(), None);
        assert_eq!(QueryRequest::locate().resolver_cap(), Some(UNCAPPED));
        assert_eq!(QueryRequest::locate_capped(7).resolver_cap(), Some(7));
        // SearchBoth resolves uncapped whatever the user cap: straddler
        // and palindrome filtering happen after mapping, then the cap.
        assert_eq!(QueryRequest::search_both().resolver_cap(), Some(UNCAPPED));
        assert_eq!(
            QueryRequest::search_both_capped(7).resolver_cap(),
            Some(UNCAPPED)
        );
    }

    #[test]
    fn search_both_builders_and_pool_accessors_line_up() {
        let base = |s: &str| exma_genome::alphabet::parse_bases(s).unwrap();
        let batch = QueryBatch::new()
            .search_both(base("ACG"))
            .search_both_capped(base("T"), 2);
        assert_eq!(batch.request(0), QueryRequest::search_both());
        assert_eq!(batch.request(1), QueryRequest::search_both_capped(2));

        let mut results = QueryResults::default();
        results.reset(2);
        // Encoded strand-hits ride the same flat pool as plain positions.
        results.push_both_positions(&[0b100, 0b111], false);
        results.flat_mut().push(0b10);
        results.push_both_located(1, true);
        assert_eq!(
            results.output(0),
            QueryOutput::BothLocated { truncated: false }
        );
        assert_eq!(results.positions(0), &[0b100, 0b111]);
        assert_eq!(results.count(0), 2);
        assert_eq!(
            results.output(1),
            QueryOutput::BothLocated { truncated: true }
        );
        assert_eq!(results.count(1), 1);
    }

    #[test]
    fn results_assembly_and_accessors_line_up() {
        let mut results = QueryResults::default();
        results.reset(4);
        results.push_tag(QueryOutput::Count(5));
        results.push_positions(&[3, 9], false);
        results.push_tag(QueryOutput::Interval { lo: 2, hi: 6 });
        results.push_positions(&[1], true);
        assert_eq!(results.len(), 4);
        assert_eq!(results.count(0), 5);
        assert_eq!(results.positions(0), &[] as &[u32]);
        assert_eq!(results.positions(1), &[3, 9]);
        assert_eq!(results.count(2), 4);
        assert_eq!(results.interval(2), Some(2..6));
        assert_eq!(results.interval(1), None);
        assert_eq!(results.output(3), QueryOutput::Located { truncated: true });
        assert_eq!(results.count(3), 1);
        assert_eq!(results.all_positions(), &[3, 9, 1]);
        assert_eq!(results.total_positions(), 3);
    }

    #[test]
    fn append_rebases_offsets_and_outputs() {
        let mut a = QueryResults::default();
        a.reset(1);
        a.push_positions(&[4, 8], false);
        let mut b = QueryResults::default();
        b.reset(2);
        b.push_tag(QueryOutput::Count(2));
        b.push_positions(&[6], false);
        let mut merged = QueryResults::default();
        merged.reset(0);
        merged.append(&a);
        merged.append(&b);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.positions(0), &[4, 8]);
        assert_eq!(merged.count(1), 2);
        assert_eq!(merged.positions(2), &[6]);
    }

    #[test]
    fn arena_hands_results_out_both_ways() {
        let mut arena = QueryArena::new();
        arena.results.reset(1);
        arena.results.push_tag(QueryOutput::Count(3));
        assert_eq!(arena.results().len(), 1);
        let taken = arena.take_results();
        assert_eq!(taken.len(), 1);
        assert_eq!(arena.results().len(), 0);
    }
}
