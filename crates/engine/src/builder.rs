//! [`EngineBuilder`]: the one way to construct an executor.
//!
//! Every knob the engine stack exposes — step width `k`, the three
//! sampling rates, the lockstep search and resolve schedules, the
//! thread count, sequential-baseline mode — combines here, and every
//! combination derives a canonical *descriptor* string
//! ([`EngineBuilder::descriptor`]). The benchmark harness enumerates
//! builder configurations instead of hand-naming engine variants, so a
//! new knob means a new builder method and descriptor fragment, not an
//! N×M explosion of named entries (the uniform-driver lesson the
//! SPEChpc harness papers draw).
//!
//! Construction is two-phase because executors borrow their index:
//! [`EngineBuilder::build_index`] owns the expensive table build, and
//! [`EngineBuilder::attach`] wires an executor onto any index with a
//! matching `k` — which is how the harness shares one index across
//! every schedule and thread-count variant.

use std::fmt;
use std::path::Path;

use exma_genome::Symbol;
use exma_index::{
    load_snapshot_expecting, write_snapshot, DeltaWidth, FmIndex, IndexError, KStepBuildConfig,
    KStepFmIndex, ResolveConfig, SnapshotError,
};

use crate::batch::{BatchConfig, BatchEngine};
use crate::exec::Executor;
use crate::shard::ShardedEngine;

/// Default 1-step occurrence checkpoint spacing (one cache line per
/// interleaved block — see [`exma_index::FmBuildConfig`]).
const DEFAULT_OCC_RATE: usize = 44;
/// Default suffix-array sampling rate.
const DEFAULT_SA_RATE: usize = 32;
/// Default superblock spacing of the two-level checkpoint layouts.
const DEFAULT_SUPERBLOCK_RATE: usize = 16;

/// Why a builder recipe cannot build an index or attach an executor.
///
/// Returned by [`EngineBuilder::build_config`],
/// [`EngineBuilder::build_index`], [`EngineBuilder::attach`] and
/// [`EngineBuilder::attach_one_step`] — the construction surface is
/// panic-free, so a network front-end can turn a bad recipe into an
/// error response instead of a dead worker.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Step width outside `1..=`[`exma_index::MAX_STEP`].
    InvalidK {
        /// The rejected width.
        k: usize,
    },
    /// A sampling-rate knob was zero.
    ZeroSampleRate {
        /// Which knob (`"occ"`, `"sa"`, or `"k_occ"`).
        knob: &'static str,
    },
    /// A thread count of zero.
    ZeroThreads,
    /// [`EngineBuilder::attach`] on an index built at a different `k`.
    StepWidthMismatch {
        /// The index's width.
        index_k: usize,
        /// The recipe's width.
        builder_k: usize,
    },
    /// A sequential recipe combined with `threads > 1`.
    SequentialThreads {
        /// The offending thread count.
        threads: usize,
    },
    /// [`EngineBuilder::attach_one_step`] on a recipe that is not the
    /// sequential `k = 1` baseline.
    NotSequentialOneStep,
    /// [`EngineBuilder::attach`] on an index whose strandedness does
    /// not match the recipe — a forward-only index would answer
    /// [`crate::QueryRequest::SearchBoth`] with garbage, and a
    /// bidirectional one would answer plain queries against the
    /// doubled text.
    StrandednessMismatch {
        /// `true` iff the index holds both strands.
        index_bidirectional: bool,
        /// `true` iff the recipe expects both strands.
        builder_bidirectional: bool,
    },
    /// The index layer rejected the recipe while building: a text too
    /// large for `u32` counters, a delta counter saturating before its
    /// superblock boundary, or an unprovable superblock span.
    Index(IndexError),
    /// The snapshot layer rejected a persisted index: corruption,
    /// truncation, a stale format, a recipe mismatch, or plain I/O —
    /// see [`SnapshotError`] for the verification contract.
    Snapshot(SnapshotError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EngineError::InvalidK { k } => {
                write!(f, "k must be in 1..={}, got {k}", exma_index::MAX_STEP)
            }
            EngineError::ZeroSampleRate { knob } => {
                write!(f, "{knob} sample rate must be positive")
            }
            EngineError::ZeroThreads => write!(f, "thread count must be positive"),
            EngineError::StepWidthMismatch { index_k, builder_k } => {
                write!(f, "index k={index_k} does not match builder k={builder_k}")
            }
            EngineError::SequentialThreads { threads } => {
                write!(
                    f,
                    "sequential executors are single-threaded, got threads={threads}"
                )
            }
            EngineError::NotSequentialOneStep => {
                write!(f, "only the sequential k=1 recipe runs on a bare FmIndex")
            }
            EngineError::StrandednessMismatch {
                index_bidirectional,
                builder_bidirectional,
            } => {
                write!(
                    f,
                    "index bidirectional={index_bidirectional} does not match \
                     builder bidirectional={builder_bidirectional}"
                )
            }
            EngineError::Index(e) => write!(f, "{e}"),
            EngineError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Index(e) => Some(e),
            EngineError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IndexError> for EngineError {
    fn from(e: IndexError) -> EngineError {
        EngineError::Index(e)
    }
}

impl From<SnapshotError> for EngineError {
    fn from(e: SnapshotError) -> EngineError {
        EngineError::Snapshot(e)
    }
}

/// The complete memory layout of an index, as one typed value.
///
/// Collapses the sampling-rate setters that used to live directly on
/// [`EngineBuilder`] plus the two checkpoint-compression knobs
/// ([`DeltaWidth`], superblock spacing) into a single recipe taken by
/// [`EngineBuilder::layout`]. Setters record; validation happens when
/// the owning builder's recipe is used. Two presets mark the extremes:
///
/// | preset | occ | sa | k-occ | deltas | superblocks |
/// |---|---|---|---|---|---|
/// | [`IndexLayout::default`] | 44 | 32 | 64k | u16 | 16 |
/// | [`IndexLayout::compact`] | 54 | 32 | 640 | u16 | 32 |
/// | [`IndexLayout::fast`] | 44 | 32 | 64k | u32 (flat) | — |
///
/// ```
/// use exma_engine::{EngineBuilder, IndexLayout};
///
/// let builder = EngineBuilder::new().layout(IndexLayout::compact());
/// assert_eq!(builder.descriptor(), "lockstep_k4_locality_compact");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexLayout {
    occ_sample_rate: usize,
    sa_sample_rate: usize,
    /// `None` = the k-dependent default (`64 * k`).
    k_occ_sample_rate: Option<usize>,
    delta_width: DeltaWidth,
    superblock_rate: usize,
}

impl Default for IndexLayout {
    /// The balanced default: one-cache-line blocks at the historical
    /// spacings, with two-level `u16` checkpoints every 16 blocks.
    fn default() -> IndexLayout {
        IndexLayout {
            occ_sample_rate: DEFAULT_OCC_RATE,
            sa_sample_rate: DEFAULT_SA_RATE,
            k_occ_sample_rate: None,
            delta_width: DeltaWidth::U16,
            superblock_rate: DEFAULT_SUPERBLOCK_RATE,
        }
    }
}

impl IndexLayout {
    /// The default layout (see [`IndexLayout::default`]).
    pub fn new() -> IndexLayout {
        IndexLayout::default()
    }

    /// Memory-first preset: coarser k-occ checkpoints (640 rows) under
    /// wider superblocks (32 blocks), and the 54-row two-level Occ
    /// spacing whose block is still exactly one cache line. Targets a
    /// k = 4 footprint within ~2× of the 1-step index at plateau
    /// latency.
    pub fn compact() -> IndexLayout {
        IndexLayout {
            occ_sample_rate: 54,
            k_occ_sample_rate: Some(640),
            superblock_rate: 32,
            ..IndexLayout::default()
        }
    }

    /// Latency-first preset: the flat absolute-`u32` checkpoint rows of
    /// earlier revisions (no superblock indirection) at the default
    /// spacings — the uncompressed baseline the heap regression gate
    /// compares against.
    pub fn fast() -> IndexLayout {
        IndexLayout {
            delta_width: DeltaWidth::U32,
            ..IndexLayout::default()
        }
    }

    /// Checkpoint spacing of the 1-step occurrence table.
    pub fn occ_sample_rate(mut self, rate: usize) -> IndexLayout {
        self.occ_sample_rate = rate;
        self
    }

    /// Text-position spacing of kept suffix-array samples — `locate`'s
    /// latency/heap knob.
    pub fn sa_sample_rate(mut self, rate: usize) -> IndexLayout {
        self.sa_sample_rate = rate;
        self
    }

    /// Checkpoint spacing of the k-mer occurrence table — the paper's
    /// central memory/latency knob.
    pub fn k_occ_sample_rate(mut self, rate: usize) -> IndexLayout {
        self.k_occ_sample_rate = Some(rate);
        self
    }

    /// Per-block checkpoint counter width ([`DeltaWidth::U32`] = flat
    /// absolute rows, no superblocks).
    pub fn delta_width(mut self, width: DeltaWidth) -> IndexLayout {
        self.delta_width = width;
        self
    }

    /// Blocks per absolute superblock row in the two-level layouts.
    pub fn superblock_rate(mut self, rate: usize) -> IndexLayout {
        self.superblock_rate = rate;
        self
    }

    /// Checks the layout's knobs — zero rates are the only locally
    /// decidable failures; span and overflow checks belong to the index
    /// layer, which sees the text.
    pub fn validate(&self) -> Result<(), EngineError> {
        for (knob, rate) in [
            ("occ", self.occ_sample_rate),
            ("sa", self.sa_sample_rate),
            ("k_occ", self.k_occ_sample_rate.unwrap_or(1)),
            ("superblock", self.superblock_rate),
        ] {
            if rate == 0 {
                return Err(EngineError::ZeroSampleRate { knob });
            }
        }
        Ok(())
    }

    /// The index-construction knobs this layout implies at step width
    /// `k` (which the caller has already validated).
    fn build_config(&self, k: usize) -> KStepBuildConfig {
        KStepBuildConfig {
            k,
            occ_sample_rate: self.occ_sample_rate,
            sa_sample_rate: self.sa_sample_rate,
            k_occ_sample_rate: self
                .k_occ_sample_rate
                .unwrap_or_else(|| KStepBuildConfig::for_k(k).k_occ_sample_rate),
            delta_width: self.delta_width,
            superblock_rate: self.superblock_rate,
            bidirectional: false,
        }
    }

    /// The descriptor fragments this layout derives: nothing for the
    /// default, `_compact`/`_fast` for the named presets, otherwise one
    /// fragment per non-default knob.
    fn descriptor_fragments(&self, k: usize, tag: &mut String) {
        if *self == IndexLayout::compact() {
            tag.push_str("_compact");
            return;
        }
        if *self == IndexLayout::fast() {
            tag.push_str("_fast");
            return;
        }
        if self.occ_sample_rate != DEFAULT_OCC_RATE {
            tag.push_str(&format!("_occ{}", self.occ_sample_rate));
        }
        if self.sa_sample_rate != DEFAULT_SA_RATE {
            tag.push_str(&format!("_sa{}", self.sa_sample_rate));
        }
        if let Some(rate) = self.k_occ_sample_rate {
            if rate != KStepBuildConfig::for_k(k).k_occ_sample_rate {
                tag.push_str(&format!("_kocc{rate}"));
            }
        }
        match self.delta_width {
            DeltaWidth::U8 => tag.push_str("_d8"),
            DeltaWidth::U32 => tag.push_str("_d32"),
            DeltaWidth::U16 => {}
        }
        // Superblock spacing only matters (and only prints) when a
        // two-level layout is in effect.
        if !self.delta_width.is_absolute() && self.superblock_rate != DEFAULT_SUPERBLOCK_RATE {
            tag.push_str(&format!("_sb{}", self.superblock_rate));
        }
    }
}

/// A fluent recipe for any executor in the workspace.
///
/// Setters record; validation happens when the recipe is *used* —
/// [`EngineBuilder::build_index`] and [`EngineBuilder::attach`] return
/// [`EngineError`] for impossible recipes instead of panicking.
///
/// ```
/// use exma_engine::{EngineBuilder, Executor, QueryBatch};
/// use exma_genome::{Genome, GenomeProfile};
///
/// let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
/// let builder = EngineBuilder::new().k(4).threads(2);
/// assert_eq!(builder.descriptor(), "lockstep_k4_locality_t2");
///
/// let index = builder.build_index(&genome.text_with_sentinel()).unwrap();
/// let engine = builder.attach(&index).unwrap();
/// let batch = QueryBatch::new().count(genome.seq().slice(100, 21));
/// assert!(matches!(
///     engine.run(&batch).0.count(0),
///     n if n >= 1
/// ));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineBuilder {
    k: usize,
    layout: IndexLayout,
    batch: BatchConfig,
    sequential: bool,
    threads: usize,
    bidirectional: bool,
}

impl Default for EngineBuilder {
    /// The headline engine: k = 4 lockstep with the full locality
    /// schedule on one thread and the default [`IndexLayout`].
    fn default() -> EngineBuilder {
        EngineBuilder {
            k: 4,
            layout: IndexLayout::default(),
            batch: BatchConfig::locality(),
            sequential: false,
            threads: 1,
            bidirectional: false,
        }
    }
}

impl EngineBuilder {
    /// The default recipe (see [`EngineBuilder::default`]).
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Symbols consumed per LF refinement (`1..=`[`exma_index::MAX_STEP`];
    /// out-of-range widths surface as [`EngineError::InvalidK`] when the
    /// recipe is used).
    pub fn k(mut self, k: usize) -> EngineBuilder {
        self.k = k;
        self
    }

    /// Replaces the whole memory layout at once — the primary way to
    /// configure index memory; the per-knob setters below are sugar
    /// over it.
    pub fn layout(mut self, layout: IndexLayout) -> EngineBuilder {
        self.layout = layout;
        self
    }

    /// The recipe's current memory layout.
    pub fn index_layout(&self) -> IndexLayout {
        self.layout
    }

    /// Checkpoint spacing of the 1-step occurrence table. Thin wrapper
    /// over [`IndexLayout::occ_sample_rate`].
    pub fn occ_sample_rate(mut self, rate: usize) -> EngineBuilder {
        self.layout = self.layout.occ_sample_rate(rate);
        self
    }

    /// Text-position spacing of kept suffix-array samples — `locate`'s
    /// latency/heap knob. Thin wrapper over
    /// [`IndexLayout::sa_sample_rate`].
    pub fn sa_sample_rate(mut self, rate: usize) -> EngineBuilder {
        self.layout = self.layout.sa_sample_rate(rate);
        self
    }

    /// Checkpoint spacing of the k-mer occurrence table — the paper's
    /// central memory/latency knob. Thin wrapper over
    /// [`IndexLayout::k_occ_sample_rate`].
    pub fn k_occ_sample_rate(mut self, rate: usize) -> EngineBuilder {
        self.layout = self.layout.k_occ_sample_rate(rate);
        self
    }

    /// Per-block checkpoint counter width. Thin wrapper over
    /// [`IndexLayout::delta_width`].
    pub fn delta_width(mut self, width: DeltaWidth) -> EngineBuilder {
        self.layout = self.layout.delta_width(width);
        self
    }

    /// Blocks per absolute superblock row. Thin wrapper over
    /// [`IndexLayout::superblock_rate`].
    pub fn superblock_rate(mut self, rate: usize) -> EngineBuilder {
        self.layout = self.layout.superblock_rate(rate);
        self
    }

    /// The lockstep search schedule (its [`ResolveConfig`] rides along;
    /// override it afterwards with [`EngineBuilder::resolve`]).
    pub fn schedule(mut self, batch: BatchConfig) -> EngineBuilder {
        self.batch = batch;
        self
    }

    /// The locate resolver's round schedule, independent of the search
    /// schedule — how the benchmark isolates resolver scheduling.
    pub fn resolve(mut self, resolve: ResolveConfig) -> EngineBuilder {
        self.batch.resolve = resolve;
        self
    }

    /// Sequential per-query execution: the baseline the lockstep
    /// engines are measured against. Incompatible with `threads > 1`.
    pub fn sequential(mut self) -> EngineBuilder {
        self.sequential = true;
        self
    }

    /// Worker threads of a sharded executor (1 = the serial lockstep
    /// engine; the sharded path short-circuits to it anyway). Zero
    /// surfaces as [`EngineError::ZeroThreads`] when the recipe is used.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = threads;
        self
    }

    /// Bidirectional (FMD-style) indexing: [`EngineBuilder::build_index`]
    /// indexes the doubled text `forward · revcomp(forward) · $` (see
    /// [`exma_index::bidir`]), which makes
    /// [`crate::QueryRequest::SearchBoth`] answer strand-agnostic hits.
    /// The flag is part of the recipe — it flows into the descriptor
    /// (`_bidir`), the build config, and the snapshot header, so a
    /// bidirectional snapshot never warm-loads under a forward-only
    /// recipe or vice versa. Costs roughly 2× the index heap of the
    /// same layout, itemized by the attached executor's
    /// [`Executor::heap_breakdown`].
    pub fn bidirectional(mut self, bidirectional: bool) -> EngineBuilder {
        self.bidirectional = bidirectional;
        self
    }

    /// The configured step width.
    pub fn step_width(&self) -> usize {
        self.k
    }

    /// `true` iff this recipe indexes both strands.
    pub fn is_bidirectional(&self) -> bool {
        self.bidirectional
    }

    /// The configured worker thread count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// `true` iff this recipe runs queries one at a time.
    pub fn is_sequential(&self) -> bool {
        self.sequential
    }

    /// Checks the recipe's field combination, the common gate of
    /// [`EngineBuilder::build_config`] and [`EngineBuilder::attach`].
    fn validate(&self) -> Result<(), EngineError> {
        if !(1..=exma_index::MAX_STEP).contains(&self.k) {
            return Err(EngineError::InvalidK { k: self.k });
        }
        self.layout.validate()?;
        if self.threads == 0 {
            return Err(EngineError::ZeroThreads);
        }
        if self.sequential && self.threads > 1 {
            return Err(EngineError::SequentialThreads {
                threads: self.threads,
            });
        }
        Ok(())
    }

    /// The index-construction knobs this recipe implies.
    pub fn build_config(&self) -> Result<KStepBuildConfig, EngineError> {
        self.validate()?;
        Ok(KStepBuildConfig {
            bidirectional: self.bidirectional,
            ..self.layout.build_config(self.k)
        })
    }

    /// Builds the index this recipe queries — over the text as given,
    /// or over the doubled text when the recipe is
    /// [`EngineBuilder::bidirectional`]. Layout failures that only
    /// the text can reveal — delta saturation, `u32` overflow — surface
    /// as [`EngineError::Index`].
    pub fn build_index(&self, text: &[Symbol]) -> Result<KStepFmIndex, EngineError> {
        let config = self.build_config()?;
        if self.bidirectional {
            Ok(KStepFmIndex::from_text_with_config(
                &exma_index::doubled_text(text),
                config,
            )?)
        } else {
            Ok(KStepFmIndex::from_text_with_config(text, config)?)
        }
    }

    /// Persists `index` to `path` as a crash-safe, checksummed snapshot
    /// (see [`exma_index::snapshot`]), first checking that the index was
    /// built with exactly this recipe's layout — a snapshot must always
    /// load back under the descriptor that wrote it.
    ///
    /// # Errors
    ///
    /// [`EngineError::Snapshot`] with
    /// [`SnapshotError::LayoutMismatch`] when `index` does not match
    /// this recipe, or [`SnapshotError::Io`] when the write fails;
    /// recipe-validation errors as for [`EngineBuilder::build_index`].
    pub fn snapshot_to(&self, index: &KStepFmIndex, path: &Path) -> Result<(), EngineError> {
        let expected = self.build_config()?;
        let found = index.build_config();
        if expected != found {
            return Err(EngineError::Snapshot(SnapshotError::LayoutMismatch {
                expected,
                found,
            }));
        }
        Ok(write_snapshot(index, path)?)
    }

    /// Loads the snapshot at `path`, fully verifying checksums and
    /// structure *and* that its embedded recipe equals this builder's —
    /// the warm-start path. The returned index is exactly what
    /// [`EngineBuilder::build_index`] would have produced, ready for
    /// [`EngineBuilder::attach`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Snapshot`] for any verification failure (the
    /// caller's cue to fall back to a cold build);
    /// recipe-validation errors as for [`EngineBuilder::build_index`].
    pub fn attach_from_snapshot(&self, path: &Path) -> Result<KStepFmIndex, EngineError> {
        let expected = self.build_config()?;
        Ok(load_snapshot_expecting(path, Some(&expected))?)
    }

    /// Wires an executor onto `index` — sequential, serial lockstep, or
    /// sharded, per this recipe. Many recipes (schedules, thread
    /// counts) can attach to one index; only `k` must match
    /// ([`EngineError::StepWidthMismatch`] otherwise).
    pub fn attach<'a>(
        &self,
        index: &'a KStepFmIndex,
    ) -> Result<Box<dyn Executor + 'a>, EngineError> {
        self.validate()?;
        if index.k() != self.k {
            return Err(EngineError::StepWidthMismatch {
                index_k: index.k(),
                builder_k: self.k,
            });
        }
        if index.is_bidirectional() != self.bidirectional {
            return Err(EngineError::StrandednessMismatch {
                index_bidirectional: index.is_bidirectional(),
                builder_bidirectional: self.bidirectional,
            });
        }
        Ok(if self.sequential {
            Box::new(index)
        } else if self.threads == 1 {
            Box::new(BatchEngine::with_config(index, self.batch))
        } else {
            Box::new(ShardedEngine::with_config(index, self.threads, self.batch))
        })
    }

    /// Wires the plain 1-step sequential executor — the oracle — onto a
    /// bare [`FmIndex`]. Only the `k = 1` sequential recipe may do
    /// this ([`EngineError::NotSequentialOneStep`] otherwise); every
    /// other recipe needs the k-step tables.
    pub fn attach_one_step<'a>(
        &self,
        fm: &'a FmIndex,
    ) -> Result<Box<dyn Executor + 'a>, EngineError> {
        self.validate()?;
        if !(self.sequential && self.k == 1) {
            return Err(EngineError::NotSequentialOneStep);
        }
        Ok(Box::new(fm))
    }

    /// The canonical descriptor of this recipe, derived field by field:
    /// `seq_k{k}` or `lockstep_k{k}_{schedule}`, then `_t{n}` for
    /// multi-threaded recipes and the layout's fragments — `_compact`/
    /// `_fast` for the named presets, otherwise
    /// `_occ{r}`/`_sa{r}`/`_kocc{r}` for non-default sampling rates,
    /// `_d8`/`_d32` for non-default delta widths and `_sb{r}` for
    /// non-default superblock spacings. Named schedule presets print as
    /// `plain`/`sorted`/`locality`; a resolver override appends
    /// `_r{resolve}`. Equal recipes derive equal descriptors, which is
    /// what the benchmark enumeration dedupes on.
    pub fn descriptor(&self) -> String {
        let mut tag = if self.sequential {
            format!("seq_k{}", self.k)
        } else {
            format!("lockstep_k{}_{}", self.k, schedule_tag(&self.batch))
        };
        if self.threads > 1 {
            tag.push_str(&format!("_t{}", self.threads));
        }
        self.layout.descriptor_fragments(self.k, &mut tag);
        if self.bidirectional {
            tag.push_str("_bidir");
        }
        tag
    }
}

/// The schedule fragment of a descriptor: a preset name when the whole
/// [`BatchConfig`] matches one, otherwise the search fragment plus an
/// `_r{...}` resolver fragment.
fn schedule_tag(batch: &BatchConfig) -> String {
    for (preset, name) in [
        (BatchConfig::default(), "plain"),
        (BatchConfig::sorted(), "sorted"),
        (BatchConfig::locality(), "locality"),
    ] {
        if *batch == preset {
            return name.to_string();
        }
        // Same search half, different resolver: preset name + override.
        if batch.sort_by_interval == preset.sort_by_interval
            && batch.prefetch_distance == preset.prefetch_distance
        {
            return format!("{name}_r{}", resolve_tag(&batch.resolve));
        }
    }
    format!(
        "sort{}_pf{}_r{}",
        u8::from(batch.sort_by_interval),
        batch.prefetch_distance,
        resolve_tag(&batch.resolve)
    )
}

/// The resolver fragment: preset name or explicit knobs.
fn resolve_tag(resolve: &ResolveConfig) -> String {
    for (preset, name) in [
        (ResolveConfig::default(), "plain"),
        (ResolveConfig::sorted(), "sorted"),
        (ResolveConfig::locality(), "locality"),
    ] {
        if *resolve == preset {
            return name.to_string();
        }
    }
    format!(
        "sort{}_pf{}",
        u8::from(resolve.sort_by_row),
        resolve.prefetch_distance
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBatch;
    use exma_genome::alphabet::parse_bases;
    use exma_genome::genome::text_from_str;

    #[test]
    fn descriptors_derive_from_every_field() {
        assert_eq!(EngineBuilder::new().descriptor(), "lockstep_k4_locality");
        assert_eq!(
            EngineBuilder::new().k(1).sequential().descriptor(),
            "seq_k1"
        );
        assert_eq!(
            EngineBuilder::new()
                .k(2)
                .schedule(BatchConfig::default())
                .descriptor(),
            "lockstep_k2_plain"
        );
        assert_eq!(
            EngineBuilder::new().threads(8).descriptor(),
            "lockstep_k4_locality_t8"
        );
        assert_eq!(
            EngineBuilder::new()
                .resolve(ResolveConfig::default())
                .descriptor(),
            "lockstep_k4_locality_rplain"
        );
        assert_eq!(
            EngineBuilder::new().sa_sample_rate(16).descriptor(),
            "lockstep_k4_locality_sa16"
        );
        assert_eq!(
            EngineBuilder::new().k_occ_sample_rate(128).descriptor(),
            "lockstep_k4_locality_kocc128"
        );
        // The k-dependent kocc default derives no fragment.
        assert_eq!(
            EngineBuilder::new().k_occ_sample_rate(256).descriptor(),
            "lockstep_k4_locality"
        );
        assert_eq!(
            EngineBuilder::new()
                .delta_width(DeltaWidth::U8)
                .descriptor(),
            "lockstep_k4_locality_d8"
        );
        assert_eq!(
            EngineBuilder::new().superblock_rate(64).descriptor(),
            "lockstep_k4_locality_sb64"
        );
        // Flat rows have no superblocks, so the spacing derives nothing.
        assert_eq!(
            EngineBuilder::new()
                .delta_width(DeltaWidth::U32)
                .superblock_rate(64)
                .descriptor(),
            "lockstep_k4_locality_d32"
        );
        assert_eq!(
            EngineBuilder::new()
                .schedule(BatchConfig {
                    sort_by_interval: false,
                    prefetch_distance: 3,
                    resolve: ResolveConfig::sorted(),
                })
                .descriptor(),
            "lockstep_k4_sort0_pf3_rsorted"
        );
    }

    #[test]
    fn layout_presets_derive_named_fragments() {
        assert_eq!(
            EngineBuilder::new()
                .layout(IndexLayout::compact())
                .descriptor(),
            "lockstep_k4_locality_compact"
        );
        assert_eq!(
            EngineBuilder::new()
                .layout(IndexLayout::fast())
                .descriptor(),
            "lockstep_k4_locality_fast"
        );
        // A knob sequence that lands exactly on a preset IS that preset:
        // equal recipes, equal descriptors.
        assert_eq!(
            EngineBuilder::new()
                .delta_width(DeltaWidth::U32)
                .descriptor(),
            "lockstep_k4_locality_fast"
        );
        assert_eq!(
            EngineBuilder::new()
                .layout(IndexLayout::default())
                .descriptor(),
            "lockstep_k4_locality"
        );
    }

    #[test]
    fn legacy_setters_delegate_to_the_layout() {
        let via_setters = EngineBuilder::new()
            .occ_sample_rate(54)
            .sa_sample_rate(32)
            .k_occ_sample_rate(640)
            .superblock_rate(32);
        let via_layout = EngineBuilder::new().layout(IndexLayout::compact());
        assert_eq!(via_setters, via_layout);
        assert_eq!(via_setters.index_layout(), IndexLayout::compact());
        assert_eq!(
            via_setters.build_config().unwrap(),
            via_layout.build_config().unwrap()
        );
    }

    #[test]
    fn layout_failures_surface_as_engine_errors() {
        assert_eq!(
            IndexLayout::new().superblock_rate(0).validate().err(),
            Some(EngineError::ZeroSampleRate { knob: "superblock" })
        );
        // A delta too narrow for the text comes back as a typed build
        // error, not a panic: a run of one symbol longer than u8::MAX
        // saturates a u8 delta before its superblock boundary.
        let text = text_from_str(&"A".repeat(300)).unwrap();
        let err = EngineBuilder::new()
            .k(1)
            .layout(
                IndexLayout::new()
                    .k_occ_sample_rate(1)
                    .delta_width(DeltaWidth::U8)
                    .superblock_rate(512),
            )
            .build_index(&text)
            .expect_err("a 300-row run must overflow a u8 delta");
        assert!(
            matches!(err, EngineError::Index(IndexError::DeltaOverflow { .. })),
            "{err:?}"
        );
        let rendered = format!("{err}");
        assert!(rendered.contains("delta"), "{rendered}");
        assert!(
            std::error::Error::source(&err).is_some(),
            "Index errors expose their source"
        );
    }

    #[test]
    fn build_config_fills_k_dependent_defaults() {
        let config = EngineBuilder::new().k(2).build_config().unwrap();
        assert_eq!(config.k, 2);
        assert_eq!(config.k_occ_sample_rate, 128);
        assert_eq!(
            EngineBuilder::new()
                .k(2)
                .k_occ_sample_rate(999)
                .build_config()
                .unwrap()
                .k_occ_sample_rate,
            999
        );
    }

    #[test]
    fn every_attached_flavor_answers_identically() {
        let text = text_from_str("CCATAGACATTAGACCATAGGACATAGACC").unwrap();
        let batch = QueryBatch::new()
            .count(parse_bases("CAT").unwrap())
            .locate(parse_bases("A").unwrap())
            .interval(parse_bases("TAGA").unwrap());
        let one = FmIndex::from_text(&text);
        let oracle = EngineBuilder::new()
            .k(1)
            .sequential()
            .attach_one_step(&one)
            .unwrap();
        let (expected, _) = oracle.run(&batch);

        for k in [1usize, 2, 4] {
            let builder = EngineBuilder::new().k(k);
            let index = builder.build_index(&text).unwrap();
            for flavor in [
                builder.sequential(),
                builder,
                builder.schedule(BatchConfig::default()),
                builder.threads(3),
            ] {
                let exec = flavor.attach(&index).unwrap();
                assert_eq!(exec.run(&batch).0, expected, "{}", flavor.descriptor());
            }
        }
    }

    #[test]
    fn bad_recipes_surface_typed_errors_instead_of_panicking() {
        let text = text_from_str("CATAGA").unwrap();
        let index = EngineBuilder::new().k(2).build_index(&text).unwrap();
        let one = FmIndex::from_text(&text);

        assert_eq!(
            EngineBuilder::new().k(4).attach(&index).err(),
            Some(EngineError::StepWidthMismatch {
                index_k: 2,
                builder_k: 4
            })
        );
        assert_eq!(
            EngineBuilder::new().k(0).build_index(&text).err(),
            Some(EngineError::InvalidK { k: 0 })
        );
        assert_eq!(
            EngineBuilder::new().k(99).build_config().err(),
            Some(EngineError::InvalidK { k: 99 })
        );
        assert_eq!(
            EngineBuilder::new().sa_sample_rate(0).build_config().err(),
            Some(EngineError::ZeroSampleRate { knob: "sa" })
        );
        assert_eq!(
            EngineBuilder::new()
                .k_occ_sample_rate(0)
                .build_index(&text)
                .err(),
            Some(EngineError::ZeroSampleRate { knob: "k_occ" })
        );
        assert_eq!(
            EngineBuilder::new().k(2).threads(0).attach(&index).err(),
            Some(EngineError::ZeroThreads)
        );
        assert_eq!(
            EngineBuilder::new()
                .k(2)
                .sequential()
                .threads(3)
                .attach(&index)
                .err(),
            Some(EngineError::SequentialThreads { threads: 3 })
        );
        assert_eq!(
            EngineBuilder::new().attach_one_step(&one).err(),
            Some(EngineError::NotSequentialOneStep)
        );
    }

    #[test]
    fn engine_errors_display_their_cause() {
        let rendered = format!("{}", EngineError::InvalidK { k: 9 });
        assert!(rendered.contains("k must be in 1..="), "{rendered}");
        assert!(rendered.contains("got 9"), "{rendered}");
        let mismatch = EngineError::StepWidthMismatch {
            index_k: 2,
            builder_k: 4,
        };
        assert_eq!(
            format!("{mismatch}"),
            "index k=2 does not match builder k=4"
        );
    }
}
