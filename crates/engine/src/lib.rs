//! # exma-engine
//!
//! The batched query engine of the EXMA reproduction. The paper's
//! accelerator owes as much to *scheduling* as to the k-step index: many
//! in-flight queries advance in lockstep rounds — one LF refinement per
//! live query per round — so consecutive accesses hit the same occurrence
//! table regions instead of chasing one query's dependent chain at a time
//! (§III-C). Queries whose suffix-array interval empties are dropped from
//! the round immediately, which on real read sets (where most error-bearing
//! seeds match nothing) shrinks the working set round over round.
//!
//! This crate reproduces that scheduling shape in software on top of
//! [`exma_index::KStepFmIndex`] and sharpens it for a cache hierarchy:
//! a [`BatchConfig`] can sort each round's live queries by suffix-array
//! interval so table accesses walk memory in address order, and can
//! software-prefetch the blocks upcoming queries will touch so their DRAM
//! fetches overlap the current refinement. The same treatment extends to
//! `locate`: [`BatchEngine::run_locate`] feeds every finished query's
//! suffix-array interval into one shared lockstep resolver worklist
//! ([`exma_index::BatchResolver`]) with a pooled output buffer
//! ([`LocateResults`]), converting the per-row LF-walks' dependent-miss
//! chains into overlapped independent streams. [`ShardedEngine`] then
//! splits a batch across scoped threads — queries are independent and the
//! index is `Sync`, so sharding scales with cores without changing any
//! answer.
//!
//! ```
//! use exma_genome::{Genome, GenomeProfile};
//! use exma_index::{FmIndex, KStepFmIndex};
//! use exma_engine::BatchEngine;
//!
//! let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
//! let index = KStepFmIndex::from_genome(&genome, 4);
//! let engine = BatchEngine::new(&index);
//!
//! let patterns = vec![genome.seq().slice(100, 21), genome.seq().slice(500, 33)];
//! let counts = engine.count_batch(&patterns);
//! let one_step = FmIndex::from_genome(&genome);
//! assert_eq!(counts[0], one_step.count(&patterns[0]));
//! assert_eq!(counts[1], one_step.count(&patterns[1]));
//! ```

pub mod batch;
pub mod locate;
pub mod shard;

pub use batch::{BatchConfig, BatchEngine, BatchStats, DEFAULT_PREFETCH_DISTANCE};
pub use locate::LocateResults;
pub use shard::ShardedEngine;
