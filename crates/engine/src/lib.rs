//! # exma-engine
//!
//! The batched query engine of the EXMA reproduction. The paper's
//! accelerator owes as much to *scheduling* as to the k-step index: many
//! in-flight queries advance in lockstep rounds — one LF refinement per
//! live query per round — so consecutive accesses hit the same occurrence
//! table regions instead of chasing one query's dependent chain at a time
//! (§III-C). Queries whose suffix-array interval empties are dropped from
//! the round immediately, which on real read sets (where most error-bearing
//! seeds match nothing) shrinks the working set round over round.
//!
//! The crate exposes one execution surface for all of it: a typed
//! [`QueryBatch`] carries any mix of [`QueryRequest::Count`],
//! [`QueryRequest::Locate`] (optionally hit-capped) and
//! [`QueryRequest::Interval`] queries, and an [`Executor`] answers the
//! whole batch in one run with pooled [`QueryResults`]. The lockstep
//! implementations share one pipeline regardless of the mix: every
//! query's backward search advances through the same round-loop —
//! optionally interval-sorted and software-prefetched
//! ([`BatchConfig`]) — and then every locate query's interval rows feed
//! one shared lockstep resolver worklist
//! ([`exma_index::BatchResolver`]'s machinery) that retires positions
//! into the pooled buffer, honoring per-query `max_hits` caps at round
//! boundaries. [`ShardedEngine`] splits a batch across scoped threads
//! (short-circuiting to the serial path at one thread), and a reusable
//! [`QueryArena`] makes steady-state submissions allocation-free.
//! [`EngineBuilder`] is the one place index parameters, schedules, and
//! thread counts combine into an executor — each combination deriving a
//! canonical descriptor string the benchmark harness enumerates.
//!
//! ```
//! use exma_engine::{EngineBuilder, Executor, QueryBatch, QueryOutput};
//! use exma_genome::{Genome, GenomeProfile};
//! use exma_index::FmIndex;
//!
//! let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
//! let builder = EngineBuilder::new().k(4);
//! let index = builder.build_index(&genome.text_with_sentinel()).unwrap();
//! let engine = builder.attach(&index).unwrap();
//!
//! // One submission, three operations.
//! let batch = QueryBatch::new()
//!     .count(genome.seq().slice(100, 21))
//!     .locate(genome.seq().slice(500, 33))
//!     .locate_capped(genome.seq().slice(40, 3), 4);
//! let (results, stats) = engine.run(&batch);
//!
//! let one_step = FmIndex::from_genome(&genome);
//! assert_eq!(results.count(0), one_step.count(&genome.seq().slice(100, 21)));
//! assert_eq!(
//!     results.positions(1),
//!     &one_step.locate(&genome.seq().slice(500, 33))[..]
//! );
//! assert!(results.positions(2).len() <= 4);
//! assert!(stats.rounds >= 1);
//! ```

pub mod batch;
pub mod builder;
pub mod exec;
pub mod query;
pub mod shard;

pub use batch::{BatchConfig, BatchEngine, BatchStats, DEFAULT_PREFETCH_DISTANCE};
pub use builder::{EngineBuilder, EngineError, IndexLayout};
pub use exec::Executor;
// The layout vocabulary an `IndexLayout` is written in, so engine users
// need not depend on `exma_index` directly.
pub use exma_index::{DeltaWidth, HeapBreakdown, IndexError, SnapshotError};
pub use query::{QueryArena, QueryBatch, QueryOutput, QueryRequest, QueryResults};
pub use shard::ShardedEngine;
