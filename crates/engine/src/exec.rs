//! The [`Executor`] trait: one execution surface for every engine.
//!
//! An executor takes a [`QueryBatch`] — any mix of count, (capped)
//! locate, and interval requests — and answers it in one run. The
//! lockstep engines share a single pipeline shape regardless of the
//! mix: **every** query's backward search advances through the same
//! lockstep round-loop (an interval is what all three operations need
//! first), and then every finished locate query's interval rows feed
//! one shared resolver worklist; counts and intervals are read straight
//! off the search result. The sequential index types implement the same
//! trait query-by-query, which is what makes them drop-in oracles and
//! baselines for the benchmark harness's uniform enumeration.
//!
//! Construct executors through [`crate::EngineBuilder`] — it is the one
//! place index parameters, schedules and thread counts combine.

use std::ops::Range;

use exma_genome::Base;
use exma_index::bidir::{forward_len, map_hits_in_place};
use exma_index::{resolve_capped_with_arena, FmIndex, HeapBreakdown, KStepFmIndex, UNCAPPED};

use crate::batch::{BatchEngine, BatchStats};
use crate::query::{QueryArena, QueryBatch, QueryOutput, QueryRequest, QueryResults};
use crate::shard::ShardedEngine;

/// A query engine that can answer a mixed-operation [`QueryBatch`].
///
/// Implemented by the sequential indexes ([`FmIndex`],
/// [`KStepFmIndex`]), the lockstep [`BatchEngine`], and the
/// multi-threaded [`ShardedEngine`]. Answers are engine-independent:
/// every implementation returns identical [`QueryResults`] for the same
/// batch over the same text — capped locates included — which the
/// property suites and the benchmark harness's oracle gate both
/// enforce.
pub trait Executor {
    /// Runs `batch` through `arena`, leaving the answers in
    /// `arena.results()`. A caller that keeps one arena across
    /// submissions reaches a steady state where the single-threaded
    /// executors allocate nothing. (A multi-threaded [`ShardedEngine`]
    /// still allocates worker-local scratch per call — only its merged
    /// results pool in the caller's arena — so latency-critical
    /// single-submission loops should use a one-thread executor.)
    fn run_into(&self, batch: &QueryBatch, arena: &mut QueryArena) -> BatchStats;

    /// One-shot convenience over [`Executor::run_into`] with a fresh
    /// arena.
    fn run(&self, batch: &QueryBatch) -> (QueryResults, BatchStats) {
        let mut arena = QueryArena::new();
        let stats = self.run_into(batch, &mut arena);
        (arena.take_results(), stats)
    }

    /// Exact per-component heap attribution of the index structures this
    /// executor queries. Executors that share one index (every lockstep
    /// and sharded engine attached to it) report the same breakdown —
    /// the bytes exist once, however many executors borrow them.
    fn heap_breakdown(&self) -> HeapBreakdown;
}

impl<E: Executor + ?Sized> Executor for &E {
    fn run_into(&self, batch: &QueryBatch, arena: &mut QueryArena) -> BatchStats {
        (**self).run_into(batch, arena)
    }

    fn heap_breakdown(&self) -> HeapBreakdown {
        (**self).heap_breakdown()
    }
}

/// Sequential execution: one query at a time through `search`, locates
/// resolved per-row through `fm`. The reference semantics every
/// lockstep executor must reproduce — including the capped-locate
/// selection rule, which [`FmIndex::resolve_range_capped_into`]
/// defines.
fn run_sequential(
    batch: &QueryBatch,
    arena: &mut QueryArena,
    fm: &FmIndex,
    search: impl Fn(&[Base]) -> Range<usize>,
) -> BatchStats {
    let QueryArena {
        results, seq_buf, ..
    } = arena;
    results.reset(batch.len());
    for i in 0..batch.len() {
        let interval = search(batch.pattern(i));
        match batch.request(i) {
            QueryRequest::Count => results.push_tag(QueryOutput::Count(interval.len() as u32)),
            QueryRequest::Interval => results.push_tag(QueryOutput::Interval {
                lo: interval.start as u32,
                hi: interval.end as u32,
            }),
            QueryRequest::Locate { max_hits } => {
                let truncated =
                    fm.resolve_range_capped_into(interval, max_hits.unwrap_or(UNCAPPED), seq_buf);
                results.push_positions(seq_buf, truncated);
            }
            QueryRequest::SearchBoth { max_hits } => {
                // Resolve the raw doubled-text interval uncapped —
                // straddlers and palindrome duplicates are only known
                // after mapping — then map, sort, and apply the cap to
                // the smallest (position, strand) hits.
                fm.resolve_range_capped_into(interval, UNCAPPED, seq_buf);
                let valid =
                    map_hits_in_place(seq_buf, batch.pattern(i), forward_len(fm.text_len()));
                let kept = (max_hits.unwrap_or(UNCAPPED) as usize).min(valid);
                seq_buf.truncate(kept);
                results.push_both_positions(seq_buf, kept < valid);
            }
        }
    }
    // Sequential executors are baselines, not schedulers: they track no
    // lockstep counters.
    BatchStats::default()
}

impl Executor for FmIndex {
    /// The 1-step sequential baseline — and the oracle every other
    /// executor is verified against.
    fn run_into(&self, batch: &QueryBatch, arena: &mut QueryArena) -> BatchStats {
        run_sequential(batch, arena, self, |p| self.backward_search(p))
    }

    fn heap_breakdown(&self) -> HeapBreakdown {
        FmIndex::heap_breakdown(self)
    }
}

impl Executor for KStepFmIndex {
    /// The k-step sequential baseline: k symbols per refinement, still
    /// one query at a time.
    fn run_into(&self, batch: &QueryBatch, arena: &mut QueryArena) -> BatchStats {
        run_sequential(batch, arena, self.base_index(), |p| self.backward_search(p))
    }

    fn heap_breakdown(&self) -> HeapBreakdown {
        KStepFmIndex::heap_breakdown(self)
    }
}

impl BatchEngine<'_> {
    /// The mixed-batch lockstep pipeline over raw request/pattern
    /// slices — [`Executor::run_into`] for this engine, and the unit of
    /// work a [`ShardedEngine`] worker runs on its shard.
    pub(crate) fn run_slice(
        &self,
        requests: &[QueryRequest],
        patterns: &[Vec<Base>],
        arena: &mut QueryArena,
    ) -> BatchStats {
        debug_assert_eq!(requests.len(), patterns.len());
        let QueryArena {
            results,
            intervals,
            locate_intervals,
            caps,
            locate_offsets,
            search,
            resolve,
            seq_buf,
            ..
        } = arena;

        // Phase 1 — one lockstep search round-loop for the whole batch:
        // counts, locates and interval requests all need the suffix-array
        // interval first, so the mix is invisible to the scheduler.
        let mut stats = self.search_core(patterns, intervals, search);

        // Phase 2 — every locate query's interval feeds one shared
        // resolver worklist, with its cap riding along.
        locate_intervals.clear();
        caps.clear();
        for (i, request) in requests.iter().enumerate() {
            if let Some(cap) = request.resolver_cap() {
                locate_intervals.push(intervals[i].clone());
                caps.push(cap);
            }
        }
        results.reset(requests.len());
        let resolved = resolve_capped_with_arena(
            self.index().base_index(),
            self.config().resolve,
            locate_intervals,
            caps,
            results.flat_mut(),
            locate_offsets,
            resolve,
        );
        stats.resolve_rounds = resolved.rounds;
        stats.resolve_lf_steps = resolved.lf_steps;
        stats.cursors_retired = resolved.retired;
        stats.cursors_dropped = resolved.dropped;

        // Phase 3 — tag every query, mapping the resolver's pooled
        // regions (in resolving-query order == query order restricted
        // to locates and strand searches) back onto the full batch.
        // SearchBoth regions hold *raw doubled-text* positions that
        // must shrink in place — straddlers and palindrome duplicates
        // drop, the post-mapping cap truncates — so the pool is
        // compacted left as it is walked, and later regions shift down
        // by the accumulated shrink.
        let n = forward_len(self.index().text_len());
        let mut next_resolved = 0;
        let mut shrink = 0;
        for (i, request) in requests.iter().enumerate() {
            let interval = &intervals[i];
            match *request {
                QueryRequest::Count => results.push_tag(QueryOutput::Count(interval.len() as u32)),
                QueryRequest::Interval => results.push_tag(QueryOutput::Interval {
                    lo: interval.start as u32,
                    hi: interval.end as u32,
                }),
                QueryRequest::Locate { .. } => {
                    let (start, end) = (
                        locate_offsets[next_resolved],
                        locate_offsets[next_resolved + 1],
                    );
                    next_resolved += 1;
                    if shrink > 0 {
                        results.flat_mut().copy_within(start..end, start - shrink);
                    }
                    results.push_located(end - start, end - start < interval.len());
                }
                QueryRequest::SearchBoth { max_hits } => {
                    let (start, end) = (
                        locate_offsets[next_resolved],
                        locate_offsets[next_resolved + 1],
                    );
                    next_resolved += 1;
                    let flat = results.flat_mut();
                    seq_buf.clear();
                    seq_buf.extend_from_slice(&flat[start..end]);
                    let valid = map_hits_in_place(seq_buf, &patterns[i], n);
                    let kept = (max_hits.unwrap_or(UNCAPPED) as usize).min(valid);
                    flat[start - shrink..start - shrink + kept].copy_from_slice(&seq_buf[..kept]);
                    shrink += (end - start) - kept;
                    results.push_both_located(kept, kept < valid);
                }
            }
        }
        if shrink > 0 {
            let total = *locate_offsets.last().expect("resolver ran");
            results.flat_mut().truncate(total - shrink);
        }
        stats
    }
}

impl Executor for BatchEngine<'_> {
    /// Lockstep execution: one shared search round-loop, then one
    /// shared resolver worklist for every locate interval.
    fn run_into(&self, batch: &QueryBatch, arena: &mut QueryArena) -> BatchStats {
        self.run_slice(batch.requests(), batch.patterns(), arena)
    }

    fn heap_breakdown(&self) -> HeapBreakdown {
        self.index().heap_breakdown()
    }
}

impl Executor for ShardedEngine<'_> {
    /// Sharded execution: contiguous query shards, one worker each,
    /// per-shard pools stitched back into input order. With one thread
    /// (or at most one query) this short-circuits to the serial
    /// [`BatchEngine`] path in the caller's arena — no scoped-thread
    /// spawn, no merge copy, so a `threads == 1` executor costs exactly
    /// what the serial engine costs (PR 4 measured the spawn tax at
    /// ~1-2% on the single-core bench box).
    fn run_into(&self, batch: &QueryBatch, arena: &mut QueryArena) -> BatchStats {
        let engine = BatchEngine::with_config(self.index(), self.config());
        if self.threads() == 1 || batch.len() <= 1 {
            return engine.run_into(batch, arena);
        }
        let shard_len = batch.len().div_ceil(self.threads());
        let shards: Vec<(QueryResults, BatchStats)> = std::thread::scope(|scope| {
            let workers: Vec<_> = batch
                .shards(shard_len)
                .map(|(requests, patterns)| {
                    scope.spawn(move || {
                        let mut arena = QueryArena::new();
                        let stats = engine.run_slice(requests, patterns, &mut arena);
                        (arena.take_results(), stats)
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|worker| worker.join().expect("shard worker panicked"))
                .collect()
        });
        let mut stats = BatchStats::default();
        arena.results.reset(batch.len());
        for (results, shard_stats) in &shards {
            arena.results.append(results);
            stats.absorb_shard(*shard_stats);
        }
        stats
    }

    /// Workers share the one borrowed index, so the footprint is the
    /// index's — not `threads ×` anything.
    fn heap_breakdown(&self) -> HeapBreakdown {
        self.index().heap_breakdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchConfig;
    use exma_genome::alphabet::parse_bases;
    use exma_genome::genome::text_from_str;

    fn fig3_batch() -> (KStepFmIndex, QueryBatch) {
        let index = KStepFmIndex::from_text(&text_from_str("CATAGA").unwrap(), 2);
        // The paper's running example, one query per operation shape:
        // hits, a multi-occurrence locate, a capped locate, a miss, an
        // interval, and the empty pattern.
        let batch = QueryBatch::new()
            .count(parse_bases("A").unwrap())
            .locate(parse_bases("A").unwrap())
            .locate_capped(parse_bases("A").unwrap(), 2)
            .locate(parse_bases("GG").unwrap())
            .interval(parse_bases("TA").unwrap())
            .count(parse_bases("").unwrap());
        (index, batch)
    }

    #[test]
    fn every_executor_agrees_on_the_fig3_batch() {
        let (index, batch) = fig3_batch();
        let one = FmIndex::from_text(&text_from_str("CATAGA").unwrap());
        let (expected, _) = (&one as &dyn Executor).run(&batch);
        assert_eq!(expected.count(0), 3);
        assert_eq!(expected.positions(1), &[1, 3, 5]);
        assert_eq!(expected.positions(2).len(), 2);
        assert_eq!(expected.output(2), QueryOutput::Located { truncated: true });
        assert_eq!(expected.positions(3), &[] as &[u32]);
        assert_eq!(
            expected.output(3),
            QueryOutput::Located { truncated: false }
        );
        assert_eq!(expected.interval(4).map(|r| r.len()), Some(1));
        assert_eq!(expected.count(5), 7);

        let executors: Vec<Box<dyn Executor + '_>> = vec![
            Box::new(&index),
            Box::new(BatchEngine::new(&index)),
            Box::new(BatchEngine::with_config(&index, BatchConfig::locality())),
            Box::new(ShardedEngine::new(&index, 1)),
            Box::new(ShardedEngine::new(&index, 3)),
        ];
        for (e, exec) in executors.iter().enumerate() {
            assert_eq!(exec.run(&batch).0, expected, "executor #{e}");
        }
    }

    #[test]
    fn arena_reuse_returns_identical_results() {
        let (index, batch) = fig3_batch();
        let engine = BatchEngine::with_config(&index, BatchConfig::locality());
        let mut arena = QueryArena::new();
        engine.run_into(&batch, &mut arena);
        let first = arena.results().clone();
        let stats = engine.run_into(&batch, &mut arena);
        assert_eq!(arena.results(), &first);
        assert!(stats.rounds > 0);
        // A different batch through the same arena must not leak state.
        let tiny = QueryBatch::new().count(parse_bases("GA").unwrap());
        engine.run_into(&tiny, &mut arena);
        assert_eq!(arena.results().len(), 1);
        assert_eq!(arena.results().count(0), 1);
        assert_eq!(arena.results().total_positions(), 0);
    }

    #[test]
    fn empty_batches_are_fine_everywhere() {
        let (index, _) = fig3_batch();
        let empty = QueryBatch::new();
        for exec in [
            Box::new(BatchEngine::new(&index)) as Box<dyn Executor>,
            Box::new(ShardedEngine::new(&index, 4)),
            Box::new(&index as &KStepFmIndex),
        ] {
            let (results, stats) = exec.run(&empty);
            assert!(results.is_empty());
            assert_eq!(results.total_positions(), 0);
            assert_eq!(stats.peak_live, 0);
        }
    }

    #[test]
    fn mixed_stats_cover_search_and_resolve() {
        let (index, batch) = fig3_batch();
        let (results, stats) = BatchEngine::new(&index).run(&batch);
        // 5 non-empty patterns search; 3 locate queries resolve.
        assert_eq!(stats.peak_live, 5);
        assert!(stats.rounds >= 1);
        assert!(stats.resolve_rounds >= 1);
        // Cursors dropped only because of the capped locate.
        assert!(stats.cursors_retired >= results.total_positions());
        let uncapped = QueryBatch::new().locate(parse_bases("A").unwrap());
        let (_, ustats) = BatchEngine::new(&index).run(&uncapped);
        assert_eq!(ustats.cursors_dropped, 0);
    }
}
