//! Pooled output of a batched `locate` run.
//!
//! A `Vec<Vec<u32>>` costs one allocation per query — tens of thousands
//! for a read set — and scatters the answers across the heap. The batch
//! resolver instead writes every query's positions into one flat pooled
//! buffer; [`LocateResults`] wraps that buffer with per-query offsets, so
//! the whole batch's answers live in two exact-sized allocations and a
//! query's positions are one contiguous slice.

/// Sorted occurrence positions of every query in a batch, pooled.
///
/// Query `i`'s positions are `positions(i)` — sorted ascending, identical
/// to what [`exma_index::FmIndex::locate`] returns for that pattern.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocateResults {
    /// All queries' positions, concatenated in query order.
    flat: Vec<u32>,
    /// `offsets[i]..offsets[i + 1]` delimits query `i` in `flat`; empty
    /// only before any batch ran (a 0-query batch still yields `[0]`).
    offsets: Vec<usize>,
}

impl LocateResults {
    /// Assembles results from a resolver's pooled output. `offsets` must
    /// be a non-decreasing prefix-sum vector delimiting `flat`.
    pub(crate) fn from_parts(flat: Vec<u32>, offsets: Vec<usize>) -> LocateResults {
        debug_assert!(offsets.first() == Some(&0) && offsets.last() == Some(&flat.len()));
        LocateResults { flat, offsets }
    }

    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` iff the batch held no queries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Query `i`'s occurrence positions, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn positions(&self, i: usize) -> &[u32] {
        &self.flat[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Every query's positions, in query order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.offsets.windows(2).map(|w| &self.flat[w[0]..w[1]])
    }

    /// Total positions across all queries (the pooled buffer's length).
    pub fn total_positions(&self) -> usize {
        self.flat.len()
    }

    /// The pooled buffer itself: every query's positions concatenated in
    /// query order. Checksum and aggregation passes can fold this directly
    /// instead of iterating per query.
    pub fn all_positions(&self) -> &[u32] {
        &self.flat
    }

    /// Explodes into one `Vec` per query, for callers and tests that want
    /// the shape of the per-row [`exma_index::FmIndex::locate`] API.
    pub fn into_vecs(self) -> Vec<Vec<u32>> {
        self.iter().map(<[u32]>::to_vec).collect()
    }

    /// Heap bytes of the pooled buffers (both exact-sized by the
    /// resolver's contract, so this is true footprint).
    pub fn heap_bytes(&self) -> usize {
        self.flat.capacity() * 4 + self.offsets.capacity() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LocateResults {
        LocateResults::from_parts(vec![3, 7, 9, 2], vec![0, 2, 2, 4])
    }

    #[test]
    fn slices_line_up_with_offsets() {
        let results = sample();
        assert_eq!(results.len(), 3);
        assert!(!results.is_empty());
        assert_eq!(results.positions(0), &[3, 7]);
        assert_eq!(results.positions(1), &[] as &[u32]);
        assert_eq!(results.positions(2), &[9, 2]);
        assert_eq!(results.total_positions(), 4);
        assert_eq!(results.all_positions(), &[3, 7, 9, 2]);
        assert_eq!(
            results.iter().collect::<Vec<_>>(),
            vec![&[3, 7][..], &[][..], &[9, 2][..]]
        );
        assert_eq!(
            results.into_vecs(),
            vec![vec![3, 7], Vec::new(), vec![9, 2]]
        );
    }

    #[test]
    fn heap_bytes_track_the_pooled_buffers() {
        let results = sample();
        assert_eq!(
            results.heap_bytes(),
            results.flat.capacity() * 4 + results.offsets.capacity() * std::mem::size_of::<usize>()
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_query_panics() {
        let _ = sample().positions(3);
    }
}
