//! Regression coverage of the deprecated free-form entry points.
//!
//! The six pre-`QueryBatch` methods (`search_batch`,
//! `search_batch_with_stats`, `count_batch`, `run_locate`,
//! `locate_batch`, `locate_batch_per_row`) survive as thin wrappers over
//! the unified `Executor` pipeline so downstream callers migrate on
//! their own schedule. This file is the **only** sanctioned
//! `allow(deprecated)` call site outside the wrappers themselves — CI
//! greps for strays — and pins the wrappers to the answers the new
//! surface gives.
#![allow(deprecated)]

use exma_engine::{BatchEngine, Executor, QueryBatch, QueryRequest, ShardedEngine};
use exma_genome::{Base, Genome, GenomeProfile, SeededRng};
use exma_index::KStepFmIndex;

fn setup() -> (Genome, KStepFmIndex, Vec<Vec<Base>>) {
    let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
    let index = KStepFmIndex::from_genome(&genome, 4);
    let mut rng = SeededRng::new(211);
    let patterns = (0..150)
        .map(|i| {
            if i % 50 == 0 {
                return Vec::new();
            }
            let len = rng.range(1, 30);
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                genome.seq().slice(start, len)
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        })
        .collect();
    (genome, index, patterns)
}

#[test]
fn legacy_wrappers_answer_like_the_query_pipeline() {
    let (_, index, patterns) = setup();
    let engine = BatchEngine::new(&index);
    let sharded = ShardedEngine::new(&index, 3);

    let (intervals, _) = engine.run(&QueryBatch::uniform(QueryRequest::Interval, &patterns));
    let (counts, _) = engine.run(&QueryBatch::uniform(QueryRequest::Count, &patterns));
    let (locates, _) = engine.run(&QueryBatch::uniform(QueryRequest::locate(), &patterns));

    assert_eq!(
        engine.search_batch(&patterns),
        (0..intervals.len())
            .map(|i| intervals.interval(i).unwrap())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        engine.count_batch(&patterns),
        (0..counts.len())
            .map(|i| counts.count(i))
            .collect::<Vec<_>>()
    );
    let (pooled, stats) = engine.run_locate(&patterns);
    assert_eq!(pooled.all_positions(), locates.all_positions());
    assert!(stats.cursors_retired > 0);
    assert_eq!(
        engine.locate_batch(&patterns),
        (0..locates.len())
            .map(|i| locates.positions(i).to_vec())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        engine.locate_batch_per_row(&patterns),
        engine.locate_batch(&patterns)
    );

    // The sharded wrappers agree too, at a ragged thread count.
    assert_eq!(
        sharded.search_batch(&patterns),
        engine.search_batch(&patterns)
    );
    assert_eq!(
        sharded.count_batch(&patterns),
        engine.count_batch(&patterns)
    );
    assert_eq!(
        sharded.locate_batch(&patterns),
        engine.locate_batch(&patterns)
    );
    let (sharded_pool, _) = sharded.run_locate(&patterns);
    assert_eq!(sharded_pool, pooled);
    let (_, sharded_stats) = sharded.search_batch_with_stats(&patterns);
    let (_, serial_stats) = engine.search_batch_with_stats(&patterns);
    assert_eq!(sharded_stats.steps, serial_stats.steps);
}
