//! Acceptance property of the batch engine: lockstep execution with
//! dead-query dropping must be invisible in the answers, and so must every
//! scheduling refinement layered on top — interval sorting, software
//! prefetch, and multi-threaded sharding. For k ∈ {1, 2, 4} the batched
//! count/interval results over hundreds of random patterns — tails with
//! `len % k != 0`, empty patterns, absent patterns — must equal the
//! sequential 1-step `FmIndex` and the naive oracle, for every schedule
//! and any thread count, all through the unified `Executor` surface.

use exma_engine::{
    BatchConfig, BatchEngine, EngineBuilder, Executor, QueryBatch, QueryRequest, ShardedEngine,
};
use exma_genome::{Base, Genome, GenomeProfile, SeededRng};
use exma_index::{naive, FmIndex, KStepFmIndex, ResolveConfig};

fn toy_genome() -> Genome {
    Genome::synthesize(&GenomeProfile::toy(), 42)
}

/// Half reference-sampled (hits, often multi-occurrence thanks to the toy
/// profile's repeats), half uniform-random (mostly absent), with empty
/// patterns sprinkled in. Lengths 1..40 cover every residue mod 2 and 4.
fn pattern_mix(genome: &Genome, total: usize, seed: u64) -> Vec<Vec<Base>> {
    let mut rng = SeededRng::new(seed);
    (0..total)
        .map(|i| {
            if i % 101 == 0 {
                return Vec::new();
            }
            let len = rng.range(1, 40);
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                genome.seq().slice(start, len)
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        })
        .collect()
}

#[test]
fn batch_agrees_with_one_step_on_600_patterns() {
    let genome = toy_genome();
    let one = FmIndex::from_genome(&genome);
    let patterns = pattern_mix(&genome, 600, 47);
    let batch = QueryBatch::uniform(QueryRequest::Interval, &patterns);

    for k in [1usize, 2, 4] {
        let index = KStepFmIndex::from_genome(&genome, k);
        let engine = BatchEngine::new(&index);
        let (results, stats) = engine.run(&batch);
        for (i, pattern) in patterns.iter().enumerate() {
            assert_eq!(
                results.interval(i),
                Some(one.backward_search(pattern)),
                "k={k}, pattern #{i}"
            );
            assert_eq!(results.count(i), one.count(pattern), "k={k}, #{i}");
        }
        // Dropping must actually happen: random absent patterns die early,
        // so the engine issues far fewer refinements than rounds x batch.
        assert!(stats.peak_live > 500, "k={k}: peak {}", stats.peak_live);
        assert!(
            stats.steps < stats.rounds * stats.peak_live,
            "k={k}: no query ever died ({} steps, {} rounds x {} live)",
            stats.steps,
            stats.rounds,
            stats.peak_live
        );
    }
}

#[test]
fn sorted_and_prefetching_schedules_agree_with_one_step_on_600_patterns() {
    let genome = toy_genome();
    let one = FmIndex::from_genome(&genome);
    let patterns = pattern_mix(&genome, 600, 61);
    let batch = QueryBatch::uniform(QueryRequest::Interval, &patterns);
    let expected: Vec<_> = patterns.iter().map(|p| one.backward_search(p)).collect();

    for k in [1usize, 2, 4] {
        let index = KStepFmIndex::from_genome(&genome, k);
        for config in [
            BatchConfig::sorted(),
            BatchConfig::locality(),
            BatchConfig {
                sort_by_interval: true,
                prefetch_distance: 1,
                resolve: ResolveConfig::default(),
            },
        ] {
            let engine = BatchEngine::with_config(&index, config);
            let (results, _) = engine.run(&batch);
            for (i, expect) in expected.iter().enumerate() {
                assert_eq!(
                    results.interval(i),
                    Some(expect.clone()),
                    "k={k} {config:?} #{i}"
                );
            }
        }
    }
}

#[test]
fn sharded_engine_agrees_with_one_step_on_600_patterns() {
    let genome = toy_genome();
    let one = FmIndex::from_genome(&genome);
    let patterns = pattern_mix(&genome, 600, 67);
    let batch = QueryBatch::uniform(QueryRequest::Count, &patterns);
    let expected_counts: Vec<usize> = patterns.iter().map(|p| one.count(p)).collect();

    for k in [2usize, 4] {
        let index = KStepFmIndex::from_genome(&genome, k);
        for threads in [2usize, 4, 8] {
            let engine = ShardedEngine::new(&index, threads);
            let (results, _) = engine.run(&batch);
            let counts: Vec<usize> = (0..results.len()).map(|i| results.count(i)).collect();
            assert_eq!(counts, expected_counts, "k={k}, {threads} threads");
        }
    }
}

#[test]
fn thread_count_never_changes_answers() {
    // 1, 2 and 7 threads: 7 does not divide 600, so the last shard is
    // ragged — results must still come back identical, in input order.
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = builder.build_index(&genome.text_with_sentinel()).unwrap();
    let patterns = pattern_mix(&genome, 600, 71);
    let mut batch = QueryBatch::new();
    for (i, p) in patterns.iter().enumerate() {
        match i % 3 {
            0 => batch.push(QueryRequest::Count, p),
            1 => batch.push(QueryRequest::locate(), p),
            _ => batch.push(QueryRequest::Interval, p),
        }
    }
    let (expected, _) = builder.attach(&index).unwrap().run(&batch);
    for threads in [2usize, 7] {
        let engine = builder.threads(threads).attach(&index).unwrap();
        let (results, _) = engine.run(&batch);
        assert_eq!(results, expected, "{threads} threads");
    }
}

#[test]
fn sorted_schedule_never_issues_more_steps() {
    // Sorting reorders a round's refinements; it must never add any. The
    // bench harness gates on the same property at benchmark scale.
    let genome = toy_genome();
    let patterns = pattern_mix(&genome, 600, 73);
    let batch = QueryBatch::uniform(QueryRequest::Count, &patterns);
    for k in [2usize, 4] {
        let index = KStepFmIndex::from_genome(&genome, k);
        let (_, plain) = BatchEngine::new(&index).run(&batch);
        let (_, sorted) = BatchEngine::with_config(&index, BatchConfig::sorted()).run(&batch);
        assert!(
            sorted.steps <= plain.steps,
            "k={k}: sorted issued {} steps, unsorted {}",
            sorted.steps,
            plain.steps
        );
    }
}

#[test]
fn batch_locate_agrees_with_naive_scan() {
    let genome = toy_genome();
    let patterns = pattern_mix(&genome, 200, 53);
    let batch = QueryBatch::uniform(QueryRequest::locate(), &patterns);
    for k in [2usize, 4] {
        let index = KStepFmIndex::from_genome(&genome, k);
        let (results, _) = BatchEngine::new(&index).run(&batch);
        for (i, pattern) in patterns.iter().enumerate() {
            assert_eq!(
                results.positions(i),
                &naive::occurrences(genome.seq(), pattern)[..],
                "k={k}, pattern #{i}"
            );
        }
    }
}

#[test]
fn single_pattern_batches_behave() {
    let genome = toy_genome();
    let index = KStepFmIndex::from_genome(&genome, 4);
    let engine = BatchEngine::new(&index);
    for pattern in pattern_mix(&genome, 40, 59) {
        let batch = QueryBatch::new().count(&pattern);
        let (results, _) = engine.run(&batch);
        assert_eq!(results.count(0), index.count(&pattern));
    }
}

#[test]
fn rounds_track_the_longest_survivor() {
    let genome = toy_genome();
    let k = 4usize;
    let index = KStepFmIndex::from_genome(&genome, k);
    let engine = BatchEngine::new(&index);
    // All patterns sampled from the reference, so none dies early; the
    // longest (len 37 → 9 k-steps + 1 tail step) bounds the round count.
    let patterns: Vec<Vec<Base>> = [5usize, 12, 23, 37]
        .iter()
        .map(|&len| genome.seq().slice(1000, len))
        .collect();
    let (_, stats) = engine.run(&QueryBatch::uniform(QueryRequest::Count, &patterns));
    assert_eq!(stats.rounds, 37 / k + 1);
    assert_eq!(stats.peak_live, 4);
}
