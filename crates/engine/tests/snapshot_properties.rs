//! Acceptance properties of snapshot persistence at the engine surface:
//! for every `IndexLayout` preset and every delta width (u8/u16/u32
//! across superblock spacings), an index written with
//! `EngineBuilder::snapshot_to` and reloaded with
//! `attach_from_snapshot` must be *equal* to the freshly built one —
//! same build recipe, same heap attribution, and byte-identical
//! `Executor` results on 600 random mixed queries — and a snapshot must
//! only ever load under the recipe that wrote it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use exma_engine::{
    DeltaWidth, EngineBuilder, EngineError, IndexLayout, QueryBatch, QueryRequest, SnapshotError,
};
use exma_genome::{Base, Genome, GenomeProfile, SeededRng};

fn toy_genome() -> Genome {
    Genome::synthesize(&GenomeProfile::toy(), 42)
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "exma_engine_snapshot_{}_{}_{tag}.exma",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    path
}

/// The layout matrix under test: the three named presets, plus one
/// explicit recipe per delta width exercising non-default superblock
/// spacings (u8 needs a provably narrow span; u32 is the flat layout).
fn layout_matrix() -> Vec<(&'static str, IndexLayout)> {
    vec![
        ("default", IndexLayout::new()),
        ("compact", IndexLayout::compact()),
        ("fast", IndexLayout::fast()),
        (
            "u8_sb2",
            IndexLayout::new()
                .delta_width(DeltaWidth::U8)
                .k_occ_sample_rate(64)
                .superblock_rate(2),
        ),
        (
            "u16_sb32",
            IndexLayout::new()
                .delta_width(DeltaWidth::U16)
                .k_occ_sample_rate(128)
                .superblock_rate(32),
        ),
        (
            "u32_flat",
            IndexLayout::new()
                .delta_width(DeltaWidth::U32)
                .k_occ_sample_rate(96),
        ),
    ]
}

/// The loopback suites' mixed workload: counts, (capped) locates and
/// interval requests over hit/miss/empty/short-repeat patterns.
fn mixed_batch(genome: &Genome, total: usize, seed: u64) -> QueryBatch {
    let mut rng = SeededRng::new(seed);
    let mut batch = QueryBatch::new();
    for i in 0..total {
        let pattern: Vec<Base> = if i % 101 == 0 {
            Vec::new()
        } else {
            let len = if i % 13 == 0 {
                rng.range(1, 4)
            } else {
                rng.range(1, 40)
            };
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                genome.seq().slice(start, len)
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        };
        match i % 5 {
            0 => batch.push(QueryRequest::Count, pattern),
            1 => batch.push(QueryRequest::locate(), pattern),
            2 => batch.push(QueryRequest::locate_capped(rng.range(0, 6) as u32), pattern),
            3 => batch.push(QueryRequest::Interval, pattern),
            _ => batch.push(QueryRequest::locate_capped(1000), pattern),
        }
    }
    batch
}

#[test]
fn round_trip_is_executor_identical_across_every_layout_and_width() {
    let genome = toy_genome();
    let text = genome.text_with_sentinel();
    let batch = mixed_batch(&genome, 600, 227);

    for (name, layout) in layout_matrix() {
        for k in [2usize, 4] {
            let builder = EngineBuilder::new().k(k).layout(layout);
            let fresh = builder.build_index(&text).unwrap();
            let path = temp_path(name);
            builder.snapshot_to(&fresh, &path).unwrap();
            let loaded = builder.attach_from_snapshot(&path).unwrap();
            let _ = std::fs::remove_file(&path);

            // Structural equality: recipe, tables, and allocation-exact
            // heap attribution (what STATS publishes at bind).
            assert_eq!(loaded.build_config(), fresh.build_config(), "{name} k={k}");
            assert_eq!(
                loaded.heap_breakdown(),
                fresh.heap_breakdown(),
                "{name} k={k}"
            );
            assert_eq!(loaded, fresh, "{name} k={k}");

            // Behavioral equality: byte-identical executor results on
            // the mixed workload, through the same descriptor.
            let (expected, _) = builder.attach(&fresh).unwrap().run(&batch);
            let (results, _) = builder.attach(&loaded).unwrap().run(&batch);
            assert_eq!(results, expected, "{name} k={k} ({})", builder.descriptor());
        }
    }
}

#[test]
fn a_snapshot_only_loads_under_the_recipe_that_wrote_it() {
    let text = toy_genome().text_with_sentinel();
    let writer = EngineBuilder::new().k(4).layout(IndexLayout::compact());
    let index = writer.build_index(&text).unwrap();
    let path = temp_path("recipe_gate");
    writer.snapshot_to(&index, &path).unwrap();

    // Every differently-shaped reader is rejected with the typed
    // mismatch — wrong k, wrong preset, wrong width.
    for reader in [
        EngineBuilder::new().k(2).layout(IndexLayout::compact()),
        EngineBuilder::new().k(4),
        EngineBuilder::new().k(4).layout(IndexLayout::fast()),
        EngineBuilder::new()
            .k(4)
            .layout(IndexLayout::compact().sa_sample_rate(8)),
    ] {
        match reader.attach_from_snapshot(&path) {
            Err(EngineError::Snapshot(SnapshotError::LayoutMismatch { expected, found })) => {
                assert_eq!(expected, reader.build_config().unwrap());
                assert_eq!(found, writer.build_config().unwrap());
            }
            other => panic!("{}: {other:?}", reader.descriptor()),
        }
    }
    // The writing recipe still loads.
    assert_eq!(writer.attach_from_snapshot(&path).unwrap(), index);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn snapshot_to_rejects_an_index_built_elsewhere() {
    let text = toy_genome().text_with_sentinel();
    let index = EngineBuilder::new().k(2).build_index(&text).unwrap();
    let stranger = EngineBuilder::new().k(2).layout(IndexLayout::compact());
    let path = temp_path("foreign_index");
    match stranger.snapshot_to(&index, &path) {
        Err(EngineError::Snapshot(SnapshotError::LayoutMismatch { .. })) => {}
        other => panic!("foreign index accepted: {other:?}"),
    }
    assert!(!path.exists(), "rejected snapshot must not touch the disk");
}
