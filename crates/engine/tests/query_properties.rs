//! Acceptance properties of the unified query surface: a mixed-op
//! `QueryBatch` — count, (capped) locate, and interval requests
//! interleaved with empty and no-hit patterns — must come back
//! oracle-identical from **every** executor: the sequential `FmIndex`
//! and `KStepFmIndex` baselines, the lockstep `BatchEngine` at every
//! schedule, and the `ShardedEngine` at any thread count, for
//! k ∈ {1, 2, 4}. Capped locates additionally obey the truncated-naive
//! contract: `min(max_hits, hits)` positions, sorted ascending, every
//! one a real occurrence, bit-identical across engines.

use exma_engine::{
    BatchConfig, EngineBuilder, QueryBatch, QueryOutput, QueryRequest, QueryResults,
};
use exma_genome::{Base, Genome, GenomeProfile, SeededRng};
use exma_index::{naive, FmIndex, ResolveConfig};

fn toy_genome() -> Genome {
    Genome::synthesize(&GenomeProfile::toy(), 42)
}

/// A mixed batch cycling through every request shape: counts, uncapped
/// locates, tightly and loosely capped locates, and interval requests —
/// over the usual hit/miss/empty/short-repeat pattern mix.
fn mixed_batch(genome: &Genome, total: usize, seed: u64) -> QueryBatch {
    let mut rng = SeededRng::new(seed);
    let mut batch = QueryBatch::new();
    for i in 0..total {
        let pattern: Vec<Base> = if i % 101 == 0 {
            Vec::new()
        } else {
            let len = if i % 13 == 0 {
                rng.range(1, 4) // short repeat: large interval, caps bite
            } else {
                rng.range(1, 40)
            };
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                genome.seq().slice(start, len)
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        };
        match i % 5 {
            0 => batch.push(QueryRequest::Count, pattern),
            1 => batch.push(QueryRequest::locate(), pattern),
            2 => batch.push(QueryRequest::locate_capped(rng.range(0, 6) as u32), pattern),
            3 => batch.push(QueryRequest::Interval, pattern),
            _ => batch.push(QueryRequest::locate_capped(1000), pattern),
        }
    }
    batch
}

/// Every executor flavor under test for a given k, by descriptor.
fn executors(k: usize) -> Vec<EngineBuilder> {
    let base = EngineBuilder::new().k(k);
    vec![
        base.sequential(),
        base.schedule(BatchConfig::default()),
        base.schedule(BatchConfig::sorted()),
        base, // locality
        base.resolve(ResolveConfig::default()),
        base.threads(2),
        base.threads(7),
    ]
}

#[test]
fn mixed_batches_are_executor_invariant_and_oracle_identical() {
    let genome = toy_genome();
    let one = FmIndex::from_genome(&genome);
    let batch = mixed_batch(&genome, 500, 131);
    let oracle = EngineBuilder::new().k(1).sequential();
    let (expected, _) = oracle.attach_one_step(&one).unwrap().run(&batch);

    // The oracle itself honors each request shape against the naive scan.
    for i in 0..batch.len() {
        let hits = naive::occurrences(genome.seq(), batch.pattern(i));
        match batch.request(i) {
            QueryRequest::Count => {
                assert_eq!(expected.output(i), QueryOutput::Count(hits.len() as u32))
            }
            QueryRequest::Interval => {
                assert_eq!(expected.interval(i).map(|r| r.len()), Some(hits.len()))
            }
            QueryRequest::Locate { max_hits } => {
                let cap = max_hits.map_or(hits.len(), |h| h as usize);
                let kept = expected.positions(i);
                assert_eq!(kept.len(), cap.min(hits.len()), "#{i}");
                assert!(kept.windows(2).all(|w| w[0] < w[1]), "#{i} not sorted");
                assert!(kept.iter().all(|p| hits.contains(p)), "#{i} fake hit");
                assert_eq!(
                    expected.output(i),
                    QueryOutput::Located {
                        truncated: cap < hits.len()
                    },
                    "#{i}"
                );
                if cap >= hits.len() {
                    assert_eq!(kept, &hits[..], "#{i} uncapped mismatch");
                }
            }
            other => panic!("mixed_batch built an unexpected request {other:?}"),
        }
    }

    for k in [1usize, 2, 4] {
        let index = EngineBuilder::new()
            .k(k)
            .build_index(&genome.text_with_sentinel())
            .unwrap();
        for builder in executors(k) {
            let (results, _) = builder.attach(&index).unwrap().run(&batch);
            assert_eq!(results, expected, "k={k}, {}", builder.descriptor());
        }
    }
}

#[test]
fn caps_bound_resolver_work_not_just_output() {
    // A batch of tightly capped short repeats: the resolver must drop
    // cursors (satellite contract: retire a query's remaining cursors
    // once the cap is hit), not resolve everything and truncate.
    let genome = toy_genome();
    let index = EngineBuilder::new()
        .k(4)
        .build_index(&genome.text_with_sentinel())
        .unwrap();
    let mut rng = SeededRng::new(17);
    let mut capped = QueryBatch::new();
    let mut uncapped = QueryBatch::new();
    for _ in 0..40 {
        let len = rng.range(1, 3); // 1-2 bp: hundreds of occurrences
        let start = rng.range(0, genome.len() - len + 1);
        let pattern = genome.seq().slice(start, len);
        capped.push(QueryRequest::locate_capped(2), &pattern);
        uncapped.push(QueryRequest::locate(), &pattern);
    }
    let engine = EngineBuilder::new().k(4);
    let (capped_results, capped_stats) = engine.attach(&index).unwrap().run(&capped);
    let (full_results, full_stats) = engine.attach(&index).unwrap().run(&uncapped);
    assert!(capped_stats.cursors_dropped > 0, "{capped_stats:?}");
    assert!(capped_stats.cursors_retired < full_stats.cursors_retired);
    assert!(capped_stats.resolve_lf_steps < full_stats.resolve_lf_steps);
    assert_eq!(full_stats.cursors_dropped, 0);
    for i in 0..capped_results.len() {
        assert_eq!(
            capped_results.positions(i).len(),
            2.min(full_results.count(i))
        );
        // The kept positions are a subset of the full resolution.
        for p in capped_results.positions(i) {
            assert!(full_results.positions(i).contains(p), "#{i}");
        }
    }
}

#[test]
fn capped_locates_match_the_sequential_rule_at_every_thread_count() {
    let genome = toy_genome();
    let batch = mixed_batch(&genome, 300, 137);
    let index = EngineBuilder::new()
        .k(2)
        .build_index(&genome.text_with_sentinel())
        .unwrap();
    let builder = EngineBuilder::new().k(2);
    let (expected, _) = builder.sequential().attach(&index).unwrap().run(&batch);
    for threads in [1usize, 2, 7] {
        let (results, _) = builder.threads(threads).attach(&index).unwrap().run(&batch);
        assert_eq!(results, expected, "{threads} threads");
    }
}

#[test]
fn arena_reuse_is_steady_state_allocation_free_in_results() {
    // Observable arena contract: repeated submissions of the same batch
    // through one arena yield identical results and the pooled buffers
    // stop growing after the first run (capacity high-water).
    let genome = toy_genome();
    let batch = mixed_batch(&genome, 200, 139);
    let index = EngineBuilder::new()
        .k(4)
        .build_index(&genome.text_with_sentinel())
        .unwrap();
    let engine = EngineBuilder::new().k(4).attach(&index).unwrap();
    let mut arena = exma_engine::QueryArena::new();
    engine.run_into(&batch, &mut arena);
    let first: QueryResults = arena.results().clone();
    let bytes_after_warmup = arena.results().heap_bytes();
    for _ in 0..3 {
        engine.run_into(&batch, &mut arena);
        assert_eq!(arena.results(), &first);
        assert_eq!(arena.results().heap_bytes(), bytes_after_warmup);
    }
}

#[test]
fn zero_cap_and_empty_pattern_edge_cases() {
    let genome = toy_genome();
    let index = EngineBuilder::new()
        .k(4)
        .build_index(&genome.text_with_sentinel())
        .unwrap();
    let engine = EngineBuilder::new().k(4).attach(&index).unwrap();
    let frequent = genome.seq().slice(0, 1);
    let batch = QueryBatch::new()
        .locate_capped(&frequent, 0) // cap 0: no positions, truncated
        .locate_capped(Vec::<Base>::new(), 3) // empty pattern, capped
        .count(Vec::<Base>::new())
        .interval(Vec::<Base>::new());
    let (results, _) = engine.run(&batch);
    assert_eq!(results.positions(0), &[] as &[u32]);
    assert_eq!(results.output(0), QueryOutput::Located { truncated: true });
    assert_eq!(results.positions(1).len(), 3);
    assert_eq!(results.output(1), QueryOutput::Located { truncated: true });
    let n = index.text_len();
    assert_eq!(results.count(2), n);
    assert_eq!(results.interval(3), Some(0..n));
}
