//! Acceptance property of the batched locate pipeline: converting serial
//! per-row LF-walks into lockstep resolver rounds — with or without row
//! sorting, software prefetch, or thread sharding — must be invisible in
//! the answers. For k ∈ {1, 2, 4} and every resolve schedule, a
//! `QueryBatch` of locates over hundreds of random patterns (tails with
//! `len % k != 0`, empty patterns, absent patterns, and high-occurrence
//! short repeats) must equal the sequential 1-step `FmIndex::locate`,
//! the naive text scan, and the per-row `resolve_range_into` path —
//! ordering included, per the sorted-ascending contract.

use exma_engine::{BatchConfig, BatchEngine, Executor, QueryBatch, QueryRequest, ShardedEngine};
use exma_genome::{Base, Genome, GenomeProfile, SeededRng};
use exma_index::{naive, FmIndex, KStepFmIndex, ResolveConfig};

fn toy_genome() -> Genome {
    Genome::synthesize(&GenomeProfile::toy(), 42)
}

/// Half reference-sampled (hits, often multi-occurrence thanks to the toy
/// profile's repeats), half uniform-random (mostly absent), with empty
/// patterns sprinkled in. Every 13th pattern is 1–3 bases long — a
/// high-occurrence repeat whose interval holds hundreds of rows, the
/// worklist shape that distinguishes the lockstep resolver from the
/// per-row walk. Lengths otherwise span 1..40, covering every residue
/// mod 2 and 4.
fn locate_pattern_mix(genome: &Genome, total: usize, seed: u64) -> Vec<Vec<Base>> {
    let mut rng = SeededRng::new(seed);
    (0..total)
        .map(|i| {
            if i % 101 == 0 {
                return Vec::new();
            }
            let len = if i % 13 == 0 {
                rng.range(1, 4) // short repeat: large interval
            } else {
                rng.range(1, 40)
            };
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                genome.seq().slice(start, len)
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        })
        .collect()
}

/// Every resolver schedule the benchmarks exercise, layered on the full
/// locality search schedule.
fn resolve_configs() -> [ResolveConfig; 4] {
    [
        ResolveConfig::default(),
        ResolveConfig::sorted(),
        ResolveConfig::locality(),
        ResolveConfig {
            sort_by_row: false,
            prefetch_distance: 1,
        },
    ]
}

fn engine_with_resolve(index: &KStepFmIndex, resolve: ResolveConfig) -> BatchEngine<'_> {
    BatchEngine::with_config(
        index,
        BatchConfig {
            resolve,
            ..BatchConfig::locality()
        },
    )
}

#[test]
fn locate_batches_agree_with_one_step_locate_on_600_patterns() {
    let genome = toy_genome();
    let one = FmIndex::from_genome(&genome);
    let patterns = locate_pattern_mix(&genome, 600, 83);
    let batch = QueryBatch::uniform(QueryRequest::locate(), &patterns);
    let expected: Vec<Vec<u32>> = patterns.iter().map(|p| one.locate(p)).collect();

    for k in [1usize, 2, 4] {
        let index = KStepFmIndex::from_genome(&genome, k);
        for config in resolve_configs() {
            let engine = engine_with_resolve(&index, config);
            let (results, stats) = engine.run(&batch);
            assert_eq!(results.len(), patterns.len());
            for (i, expect) in expected.iter().enumerate() {
                assert_eq!(
                    results.positions(i),
                    &expect[..],
                    "k={k}, {config:?}, pattern #{i}"
                );
            }
            // Every interval row retired exactly one cursor, within the
            // SA sampling rate's round bound.
            let total: usize = expected.iter().map(Vec::len).sum();
            assert_eq!(stats.cursors_retired, total, "k={k}, {config:?}");
            assert_eq!(stats.cursors_dropped, 0, "k={k}, {config:?}");
            assert!(
                stats.resolve_rounds <= index.base_index().sampled_sa().sample_rate(),
                "k={k}, {config:?}: {} rounds",
                stats.resolve_rounds
            );
        }
    }
}

#[test]
fn locate_batches_agree_with_naive_scan() {
    let genome = toy_genome();
    let patterns = locate_pattern_mix(&genome, 200, 89);
    let batch = QueryBatch::uniform(QueryRequest::locate(), &patterns);
    for k in [2usize, 4] {
        let index = KStepFmIndex::from_genome(&genome, k);
        let (results, _) = engine_with_resolve(&index, ResolveConfig::locality()).run(&batch);
        for (i, pattern) in patterns.iter().enumerate() {
            assert_eq!(
                results.positions(i),
                &naive::occurrences(genome.seq(), pattern)[..],
                "k={k}, pattern #{i}"
            );
        }
    }
}

#[test]
fn locate_batches_are_ordering_identical_to_the_per_row_path() {
    // The resolver retires cursors in whatever round their walk ends, so
    // ordering agreement with the serial path is a real property, not a
    // tautology — `resolve_range_into`'s contract is sorted ascending.
    let genome = toy_genome();
    let patterns = locate_pattern_mix(&genome, 400, 97);
    let batch = QueryBatch::uniform(QueryRequest::locate(), &patterns);
    let index = KStepFmIndex::from_genome(&genome, 4);
    let base = index.base_index();
    let per_row: Vec<Vec<u32>> = patterns
        .iter()
        .map(|p| {
            let mut out = Vec::new();
            base.resolve_range_into(index.backward_search(p), &mut out);
            out
        })
        .collect();
    for config in resolve_configs() {
        let engine = engine_with_resolve(&index, config);
        let (results, _) = engine.run(&batch);
        for (i, expect) in per_row.iter().enumerate() {
            assert_eq!(results.positions(i), &expect[..], "{config:?}, #{i}");
            let mut sorted = expect.clone();
            sorted.sort_unstable();
            assert_eq!(&sorted, expect, "per-row output not ascending at #{i}");
        }
    }
}

#[test]
fn every_positions_slice_is_sorted_ascending() {
    let genome = toy_genome();
    let patterns = locate_pattern_mix(&genome, 300, 101);
    let batch = QueryBatch::uniform(QueryRequest::locate(), &patterns);
    let index = KStepFmIndex::from_genome(&genome, 4);
    let (results, _) = engine_with_resolve(&index, ResolveConfig::locality()).run(&batch);
    for i in 0..results.len() {
        assert!(
            results.positions(i).windows(2).all(|w| w[0] < w[1]),
            "positions of pattern #{i} not strictly ascending"
        );
    }
}

#[test]
fn sharded_locate_is_thread_count_invariant() {
    // 1, 2 and 7 threads: 7 does not divide 600, so the last shard is
    // ragged — pooled results must still stitch back identical, in input
    // order, with identical per-query ordering.
    let genome = toy_genome();
    let index = KStepFmIndex::from_genome(&genome, 4);
    let patterns = locate_pattern_mix(&genome, 600, 103);
    let batch = QueryBatch::uniform(QueryRequest::locate(), &patterns);
    let (expected, expected_stats) = ShardedEngine::new(&index, 1).run(&batch);
    for threads in [2usize, 7] {
        let engine = ShardedEngine::new(&index, threads);
        let (results, stats) = engine.run(&batch);
        assert_eq!(results, expected, "{threads} threads");
        // Sharding moves cursors between workers but never changes the
        // total resolution work.
        assert_eq!(stats.cursors_retired, expected_stats.cursors_retired);
        assert_eq!(stats.resolve_lf_steps, expected_stats.resolve_lf_steps);
        assert!(stats.resolve_rounds <= expected_stats.resolve_rounds);
    }
}

#[test]
fn sharded_locate_agrees_with_one_step() {
    let genome = toy_genome();
    let one = FmIndex::from_genome(&genome);
    let patterns = locate_pattern_mix(&genome, 300, 107);
    let batch = QueryBatch::uniform(QueryRequest::locate(), &patterns);
    let expected: Vec<Vec<u32>> = patterns.iter().map(|p| one.locate(p)).collect();
    for k in [2usize, 4] {
        let index = KStepFmIndex::from_genome(&genome, k);
        for threads in [2usize, 4] {
            let (results, _) = ShardedEngine::new(&index, threads).run(&batch);
            for (i, expect) in expected.iter().enumerate() {
                assert_eq!(
                    results.positions(i),
                    &expect[..],
                    "k={k}, {threads} threads, #{i}"
                );
            }
        }
    }
}

#[test]
fn sorted_resolver_issues_identical_work() {
    // Row sorting reorders a round's cursor walks; it must never add or
    // remove any — the same acceptance shape the search scheduler has.
    let genome = toy_genome();
    let patterns = locate_pattern_mix(&genome, 600, 109);
    let batch = QueryBatch::uniform(QueryRequest::locate(), &patterns);
    let index = KStepFmIndex::from_genome(&genome, 4);
    let stats_of = |resolve: ResolveConfig| engine_with_resolve(&index, resolve).run(&batch).1;
    let plain = stats_of(ResolveConfig::default());
    for config in [ResolveConfig::sorted(), ResolveConfig::locality()] {
        let stats = stats_of(config);
        assert_eq!(stats.resolve_lf_steps, plain.resolve_lf_steps, "{config:?}");
        assert_eq!(stats.resolve_rounds, plain.resolve_rounds, "{config:?}");
        assert_eq!(stats.cursors_retired, plain.cursors_retired, "{config:?}");
    }
}
