//! Acceptance properties of strand-agnostic search: a mixed batch with
//! `SearchBoth` requests interleaved among the plain operations must
//! come back oracle-identical from **every** executor flavor — the
//! sequential baselines, the lockstep `BatchEngine` at every schedule,
//! and the `ShardedEngine` at any thread count, for k ∈ {1, 2, 4} over
//! a bidirectional index. The oracle itself is checked pattern by
//! pattern against the brute-force both-strand scan
//! (`naive::occurrences_both`), including the palindrome dedup rule and
//! the post-mapping cap (keep the `max_hits` smallest
//! `(position, strand)` hits — deterministic however the raw interval
//! was resolved).

use exma_engine::{BatchConfig, EngineBuilder, QueryBatch, QueryOutput, QueryRequest};
use exma_genome::{
    Base, ErrorProfile, Genome, GenomeProfile, LongReadSimulator, SeededRng, ShortReadSimulator,
};
use exma_index::bidir::{decode_hit, Strand};
use exma_index::{naive, ResolveConfig};

fn toy_genome() -> Genome {
    Genome::synthesize(&GenomeProfile::toy(), 42)
}

/// A batch mixing `SearchBoth` (uncapped, tightly capped, loosely
/// capped) with the plain operations, over genome slices, reverse
/// windows, random patterns, short repeats, palindromes, and the empty
/// pattern.
fn mixed_both_batch(genome: &Genome, total: usize, seed: u64) -> QueryBatch {
    let mut rng = SeededRng::new(seed);
    let mut batch = QueryBatch::new();
    for i in 0..total {
        let pattern: Vec<Base> = if i % 101 == 0 {
            Vec::new()
        } else if i % 37 == 0 {
            // A reverse-complement palindrome: forced dedup coverage.
            let half: Vec<Base> = (0..rng.range(1, 4)).map(|_| rng.base()).collect();
            let mut pal = half.clone();
            pal.extend(half.iter().rev().map(|b| b.complement()));
            pal
        } else {
            let len = if i % 13 == 0 {
                rng.range(1, 4) // short repeat: large interval, caps bite
            } else {
                rng.range(1, 40)
            };
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                if i % 4 == 0 {
                    genome.revcomp_window(start, len)
                } else {
                    genome.seq().slice(start, len)
                }
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        };
        match i % 6 {
            0 => batch.push(QueryRequest::search_both(), pattern),
            1 => batch.push(
                QueryRequest::search_both_capped(rng.range(0, 6) as u32),
                pattern,
            ),
            2 => batch.push(QueryRequest::search_both_capped(1000), pattern),
            3 => batch.push(QueryRequest::Count, pattern),
            4 => batch.push(QueryRequest::locate_capped(3), pattern),
            _ => batch.push(QueryRequest::Interval, pattern),
        }
    }
    batch
}

/// Every executor flavor under test for a given k.
fn executors(k: usize) -> Vec<EngineBuilder> {
    let base = EngineBuilder::new().k(k).bidirectional(true);
    vec![
        base.sequential(),
        base.schedule(BatchConfig::default()),
        base.schedule(BatchConfig::sorted()),
        base, // locality
        base.resolve(ResolveConfig::default()),
        base.threads(2),
        base.threads(7),
    ]
}

#[test]
fn search_both_is_executor_invariant_and_oracle_identical() {
    let genome = toy_genome();
    let batch = mixed_both_batch(&genome, 500, 131);
    for k in [1usize, 2, 4] {
        let builder = EngineBuilder::new().k(k).bidirectional(true);
        let index = builder.build_index(&genome.text_with_sentinel()).unwrap();
        let (expected, _) = builder.sequential().attach(&index).unwrap().run(&batch);

        // The sequential oracle honors the both-strand contract against
        // the naive scan, cap and dedup rules included.
        for i in 0..batch.len() {
            if let QueryRequest::SearchBoth { max_hits } = batch.request(i) {
                let hits = naive::occurrences_both(genome.seq(), batch.pattern(i));
                let cap = max_hits.map_or(hits.len(), |h| h as usize);
                let kept = cap.min(hits.len());
                assert_eq!(expected.positions(i), &hits[..kept], "k={k} #{i}");
                assert_eq!(
                    expected.output(i),
                    QueryOutput::BothLocated {
                        truncated: kept < hits.len()
                    },
                    "k={k} #{i}"
                );
            }
        }

        for builder in executors(k) {
            let (results, _) = builder.attach(&index).unwrap().run(&batch);
            assert_eq!(results, expected, "k={k}, {}", builder.descriptor());
        }
    }
}

#[test]
fn palindromes_report_each_site_once_tagged_forward() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(2).bidirectional(true);
    let index = builder.build_index(&genome.text_with_sentinel()).unwrap();
    let parse = |s: &str| exma_genome::alphabet::parse_bases(s).unwrap();
    let batch = QueryBatch::new()
        .search_both(parse("ACGT"))
        .search_both(parse("AATT"))
        .search_both(parse("GATC"))
        .search_both(parse("AT"))
        .search_both(Vec::<Base>::new());
    for threads in [1usize, 2, 7] {
        let (results, _) = builder.threads(threads).attach(&index).unwrap().run(&batch);
        for i in 0..batch.len() {
            let decoded: Vec<(u32, Strand)> = results
                .positions(i)
                .iter()
                .map(|&h| decode_hit(h))
                .collect();
            assert!(
                decoded.iter().all(|&(_, s)| s == Strand::Forward),
                "#{i}: reverse hit survived dedup: {decoded:?}"
            );
            assert_eq!(
                results.positions(i),
                &naive::occurrences_both(genome.seq(), batch.pattern(i))[..],
                "#{i}"
            );
        }
    }
    // The empty pattern: one forward hit per position, 0..=len.
    let (results, _) = builder.attach(&index).unwrap().run(&batch);
    assert_eq!(results.count(4), genome.len() + 1);
}

#[test]
fn caps_keep_the_smallest_hits_at_every_thread_count() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4).bidirectional(true);
    let index = builder.build_index(&genome.text_with_sentinel()).unwrap();
    let frequent = genome.seq().slice(0, 2); // hundreds of hits both ways
    let uncapped = QueryBatch::new().search_both(&frequent);
    let (full, _) = builder.attach(&index).unwrap().run(&uncapped);
    let all = full.positions(0).to_vec();
    assert!(all.len() > 10, "pattern not frequent enough for the test");
    assert!(all.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
    for cap in [0usize, 1, 7, all.len() - 1, all.len(), all.len() + 50] {
        let batch = QueryBatch::new().search_both_capped(&frequent, cap as u32);
        for threads in [1usize, 2, 7] {
            let (results, _) = builder.threads(threads).attach(&index).unwrap().run(&batch);
            let kept = cap.min(all.len());
            // The cap keeps a prefix of the sorted hit list — the
            // smallest (position, strand) hits, not resolver order.
            assert_eq!(results.positions(0), &all[..kept], "cap={cap} t={threads}");
            assert_eq!(
                results.output(0),
                QueryOutput::BothLocated {
                    truncated: kept < all.len()
                },
                "cap={cap} t={threads}"
            );
        }
    }
}

#[test]
fn simulated_reverse_strand_reads_resolve_without_client_revcomp() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4).bidirectional(true);
    let index = builder.build_index(&genome.text_with_sentinel()).unwrap();
    let engine = builder.attach(&index).unwrap();
    // Error-free reads so every read matches its template exactly; the
    // 50/50 strand draw guarantees reverse origins in any decent batch.
    let short = ShortReadSimulator::new(36, ErrorProfile::error_free());
    let long = LongReadSimulator::new(200, 50, ErrorProfile::error_free());
    let reads: Vec<exma_genome::Read> = short
        .simulate(&genome, 40, 0xB07)
        .into_iter()
        .chain(long.simulate(&genome, 10, 0x106))
        .collect();
    assert!(reads.iter().any(|r| r.origin.reverse), "no reverse reads");
    let mut batch = QueryBatch::new();
    for read in &reads {
        batch.push(QueryRequest::search_both(), read.bases.to_vec());
    }
    let (results, _) = engine.run(&batch);
    for (i, read) in reads.iter().enumerate() {
        let expect = (
            read.origin.start as u32,
            if read.origin.reverse {
                Strand::Reverse
            } else {
                Strand::Forward
            },
        );
        let decoded: Vec<(u32, Strand)> = results
            .positions(i)
            .iter()
            .map(|&h| decode_hit(h))
            .collect();
        // Palindrome dedup may retag a (rare) palindromic read; accept
        // the forward tag at the same site in that case.
        let found = decoded.contains(&expect)
            || (exma_index::bidir::is_palindromic(&read.origin.template(&genome))
                && decoded.contains(&(expect.0, Strand::Forward)));
        assert!(
            found,
            "read #{i} origin {expect:?} missing from {decoded:?}"
        );
    }
}

#[test]
fn strandedness_is_part_of_the_attach_contract() {
    let genome = toy_genome();
    let forward = EngineBuilder::new().k(2);
    let bidir = forward.bidirectional(true);
    let findex = forward.build_index(&genome.text_with_sentinel()).unwrap();
    let bindex = bidir.build_index(&genome.text_with_sentinel()).unwrap();
    assert_eq!(bindex.text_len(), 2 * genome.len() + 1);
    assert!(bidir.attach(&findex).is_err());
    assert!(forward.attach(&bindex).is_err());
    assert!(bidir.attach(&bindex).is_ok());
    assert!(bidir.descriptor().ends_with("_bidir"));
    assert!(!forward.descriptor().contains("_bidir"));
}
