//! `exma-bench` — the benchmark harness of the EXMA reproduction.
//!
//! The ROADMAP's north star demands *measured* hot-path speedups; this
//! binary produces the measurements. It synthesizes the paper's genome
//! profiles at relative scale, simulates Illumina and ONT read workloads,
//! times `build`/`count`/`locate` through the 1-step, k-step (k = 2, 4)
//! and batched engines, and writes `BENCH_exma.json` (median ns/query,
//! queries/sec, heap bytes). Every engine's answers are cross-checked
//! against the 1-step oracle; any divergence makes the process exit
//! non-zero, which is what the `bench-smoke` CI job gates on.
//!
//! ```text
//! cargo run --release -p exma-bench              # full run (~20 s)
//! cargo run --release -p exma-bench -- --smoke   # CI-sized run (< 60 s budget)
//! ```

mod engines;
mod json;

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use exma_genome::{
    Base, ErrorProfile, Genome, GenomeProfile, LongReadSimulator, ShortReadSimulator,
};

use crate::engines::EngineSet;
use crate::json::Json;

/// Seed window taken from each simulated ONT read. 51 is deliberately odd:
/// it exercises the pattern-tail path of both k = 2 and k = 4 engines.
const ONT_SEED_LEN: usize = 51;

/// Illumina template read length (the paper's short-read workload).
const ILLUMINA_LEN: usize = 100;

const USAGE: &str = "exma-bench: benchmark 1-step vs k-step vs batched FM-index engines

USAGE:
    cargo run --release -p exma-bench [-- OPTIONS]

OPTIONS:
    --smoke        CI-sized run: small genomes, fewer queries, < 60 s
    --out PATH     output JSON path (default: BENCH_exma.json)
    --seed N       master seed for genomes and read sets (default: 42)
    --help         print this help

Exits non-zero if any engine's count/locate results diverge from the
1-step FmIndex oracle.";

struct Args {
    smoke: bool,
    out: PathBuf,
    seed: u64,
}

/// Everything that differs between `--smoke` and the full run.
struct RunSpec {
    mode: &'static str,
    genomes: Vec<GenomeProfile>,
    illumina_reads: usize,
    ont_reads: usize,
    /// Odd, so the median is an actual observation.
    count_reps: usize,
    locate_reps: usize,
    /// How many patterns per workload get full locate verification.
    verify_locates: usize,
}

fn full_spec() -> RunSpec {
    RunSpec {
        mode: "full",
        genomes: vec![GenomeProfile::human_rel(), GenomeProfile::picea_rel()],
        illumina_reads: 5_000,
        ont_reads: 2_000,
        count_reps: 5,
        locate_reps: 3,
        verify_locates: 200,
    }
}

fn smoke_spec() -> RunSpec {
    // The paper's profiles, shrunk to CI size (builds in milliseconds,
    // whole run in seconds) but keeping their GC/repeat structure.
    let shrink = |profile: GenomeProfile, len: usize| GenomeProfile {
        name: format!("{}_smoke", profile.name),
        len,
        ..profile
    };
    RunSpec {
        mode: "smoke",
        genomes: vec![
            shrink(GenomeProfile::human_rel(), 120_000),
            shrink(GenomeProfile::picea_rel(), 200_000),
        ],
        illumina_reads: 800,
        ont_reads: 300,
        count_reps: 3,
        locate_reps: 3,
        verify_locates: 100,
    }
}

/// A named set of query patterns.
struct Workload {
    name: String,
    patterns: Vec<Vec<Base>>,
}

fn workloads(genome: &Genome, spec: &RunSpec, seed: u64) -> Vec<Workload> {
    // Error-bearing Illumina reads: most are exact substrings (0.12%
    // per-base error), so counts are usually >= 1 — the "mostly hit"
    // workload. Indels make a few lengths odd, which also stresses tails.
    let illumina = ShortReadSimulator::new(ILLUMINA_LEN, ErrorProfile::illumina())
        .simulate(genome, spec.illumina_reads, seed ^ 0x1111)
        .iter()
        .map(|r| r.bases.to_vec())
        .collect();
    // Fixed-width seeds clipped from ONT reads: at ~13% per-base error a
    // 51-mer almost never matches exactly, so backward searches die early —
    // the "mostly miss" workload where batched dead-query dropping pays.
    let ont = LongReadSimulator::new(1_200, 300, ErrorProfile::ont())
        .simulate(genome, spec.ont_reads, seed ^ 0x2222)
        .iter()
        .filter(|r| r.len() >= ONT_SEED_LEN)
        .map(|r| (0..ONT_SEED_LEN).map(|i| r.bases.get(i)).collect())
        .collect();
    vec![
        Workload {
            name: format!("illumina_{ILLUMINA_LEN}bp"),
            patterns: illumina,
        },
        Workload {
            name: format!("ont_seed_{ONT_SEED_LEN}bp"),
            patterns: ont,
        },
    ]
}

/// Times `sweep` `reps` times; returns (median seconds, last checksum).
fn time_sweep(reps: usize, mut sweep: impl FnMut() -> u64) -> (f64, u64) {
    let mut times = Vec::with_capacity(reps);
    let mut checksum = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        checksum = sweep();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[reps / 2], checksum)
}

/// Checks every engine's answers against the 1-step oracle. Returns the
/// number of divergent (engine, workload) pairs, reporting each to stderr.
fn verify(set: &EngineSet, loads: &[Workload], verify_locates: usize, genome: &str) -> usize {
    let engines = set.engines();
    let (oracle, rest) = engines.split_first().expect("engine set is never empty");
    let mut divergences = 0;
    for load in loads {
        let expect_counts = oracle.count_all(&load.patterns);
        let head = &load.patterns[..load.patterns.len().min(verify_locates)];
        let expect_locs = oracle.locate_all(head);
        for engine in rest {
            if engine.count_all(&load.patterns) != expect_counts {
                eprintln!(
                    "DIVERGENCE: {genome}/{}/{}: count differs from 1-step oracle",
                    engine.label, load.name
                );
                divergences += 1;
            } else if engine.locate_all(head) != expect_locs {
                eprintln!(
                    "DIVERGENCE: {genome}/{}/{}: locate differs from 1-step oracle",
                    engine.label, load.name
                );
                divergences += 1;
            }
        }
    }
    divergences
}

fn run(args: &Args) -> ExitCode {
    let spec = if args.smoke {
        smoke_spec()
    } else {
        full_spec()
    };
    let started = Instant::now();
    let mut results: Vec<Json> = Vec::new();
    let mut divergences = 0usize;

    for profile in &spec.genomes {
        eprintln!(
            "[{}] synthesizing {} ({} bp)...",
            spec.mode, profile.name, profile.len
        );
        let genome = Genome::synthesize(profile, args.seed);
        let loads = workloads(&genome, &spec, args.seed);

        eprintln!("[{}] building 1-step, k=2, k=4 indexes...", spec.mode);
        let set = EngineSet::build(&genome.text_with_sentinel());

        divergences += verify(&set, &loads, spec.verify_locates, &profile.name);

        for engine in set.engines() {
            let mut ops: Vec<Json> = Vec::new();
            for load in &loads {
                let queries = load.patterns.len();
                let (count_secs, count_sum) =
                    time_sweep(spec.count_reps, || engine.count_checksum(&load.patterns));
                let (locate_secs, locate_sum) =
                    time_sweep(spec.locate_reps, || engine.locate_checksum(&load.patterns));
                for (op, secs, reps, checksum) in [
                    ("count", count_secs, spec.count_reps, count_sum),
                    ("locate", locate_secs, spec.locate_reps, locate_sum),
                ] {
                    let ns_per_query = secs * 1e9 / queries as f64;
                    ops.push(
                        Json::obj()
                            .field("op", op)
                            .field("workload", load.name.as_str())
                            .field("queries", queries)
                            .field("reps", reps)
                            .field("median_ns_per_query", ns_per_query)
                            .field("queries_per_sec", 1e9 / ns_per_query)
                            .field("checksum", checksum),
                    );
                }
                eprintln!(
                    "[{}] {}/{}/{}: count {:.0} ns/q, locate {:.0} ns/q",
                    spec.mode,
                    profile.name,
                    engine.label,
                    load.name,
                    count_secs * 1e9 / queries as f64,
                    locate_secs * 1e9 / queries as f64,
                );
            }
            let mut entry = Json::obj()
                .field("genome", profile.name.as_str())
                .field("genome_len", genome.len())
                .field("engine", engine.label)
                .field("k", engine.k)
                .field("build_ms", engine.build_secs * 1e3)
                .field("heap_bytes", engine.heap_bytes);
            if let Some(shared) = engine.shares_index_with {
                entry = entry.field("shares_index_with", shared);
            }
            results.push(entry.field("ops", ops));
        }
    }

    let verified = divergences == 0;
    let doc = Json::obj()
        .field("schema_version", 1u64)
        .field("mode", spec.mode)
        .field("seed", args.seed)
        .field("illumina_read_len", ILLUMINA_LEN)
        .field("ont_seed_len", ONT_SEED_LEN)
        .field("verified_against_oracle", verified)
        .field("wall_clock_secs", started.elapsed().as_secs_f64())
        .field("results", results);
    let rendered = format!("{doc}\n");
    if let Err(err) = std::fs::write(&args.out, rendered) {
        eprintln!("failed to write {}: {err}", args.out.display());
        return ExitCode::from(2);
    }
    eprintln!("[{}] wrote {}", spec.mode, args.out.display());

    if verified {
        ExitCode::SUCCESS
    } else {
        eprintln!("{divergences} engine/workload pair(s) diverged from the 1-step oracle");
        ExitCode::FAILURE
    }
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut args = Args {
        smoke: false,
        out: PathBuf::from("BENCH_exma.json"),
        seed: 42,
    };
    let mut argv = argv.peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                let path = argv.next().ok_or("--out requires a path")?;
                args.out = PathBuf::from(path);
            }
            "--seed" => {
                let raw = argv.next().ok_or("--seed requires a number")?;
                args.seed = raw.parse().map_err(|_| format!("bad seed '{raw}'"))?;
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(Some(args)) => run(&args),
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_default_and_parse() {
        let args = parse_args(Vec::<String>::new().into_iter())
            .unwrap()
            .unwrap();
        assert!(!args.smoke);
        assert_eq!(args.out, PathBuf::from("BENCH_exma.json"));
        assert_eq!(args.seed, 42);

        let args = parse_args(
            ["--smoke", "--out", "/tmp/b.json", "--seed", "7"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap()
        .unwrap();
        assert!(args.smoke);
        assert_eq!(args.out, PathBuf::from("/tmp/b.json"));
        assert_eq!(args.seed, 7);
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse_args(["--frobnicate".to_string()].into_iter()).is_err());
        assert!(parse_args(["--seed".to_string(), "x".to_string()].into_iter()).is_err());
        assert!(parse_args(["--help".to_string()].into_iter())
            .unwrap()
            .is_none());
    }

    #[test]
    fn smoke_spec_is_ci_sized() {
        let spec = smoke_spec();
        assert!(spec.genomes.iter().all(|g| g.len <= 200_000));
        assert!(spec.count_reps % 2 == 1, "median needs odd reps");
    }

    #[test]
    fn workloads_exercise_k_tails() {
        // 51 is odd on purpose: 51 % 2 == 1 and 51 % 4 == 3, so both k-step
        // engines hit their tail path on the ONT workload.
        assert_eq!(ONT_SEED_LEN % 2, 1);
        assert_eq!(ONT_SEED_LEN % 4, 3);
    }

    #[test]
    fn median_of_odd_reps_is_middle_observation() {
        let mut calls = 0usize;
        let (_, checksum) = time_sweep(3, || {
            calls += 1;
            calls as u64
        });
        assert_eq!(calls, 3);
        assert_eq!(checksum, 3);
    }
}
