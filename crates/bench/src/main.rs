//! `exma-bench` — the benchmark harness of the EXMA reproduction.
//!
//! The ROADMAP's north star demands *measured* hot-path speedups; this
//! binary produces the measurements. It synthesizes the paper's genome
//! profiles at relative scale, simulates Illumina and ONT read workloads,
//! times `build`/`count`/`locate` through the 1-step, k-step (k = 2, 4),
//! batched (plain, interval-sorted, sorted+prefetching) and sharded
//! (multi-threaded) engines, sweeps the k-mer checkpoint spacing, and
//! writes `BENCH_exma.json` (median ns/query, queries/sec, heap bytes).
//! Every engine's answers are cross-checked against the 1-step oracle and
//! the sorted schedule is checked to issue no extra LF steps; any
//! violation makes the process exit non-zero, which is what the
//! `bench-smoke` CI job gates on.
//!
//! ```text
//! cargo run --release -p exma-bench              # full run (~2 min)
//! cargo run --release -p exma-bench -- --smoke   # CI-sized run (< 60 s budget)
//! ```

mod engines;
mod json;

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use exma_genome::{
    Base, ErrorProfile, Genome, GenomeProfile, LongReadSimulator, ShortReadSimulator,
};
use exma_index::KStepBuildConfig;

use crate::engines::{Engine, EngineSet, SaSweepPoint, SweepPoint};
use crate::json::Json;

/// Seed window taken from each simulated ONT read. 51 is deliberately odd:
/// it exercises the pattern-tail path of both k = 2 and k = 4 engines.
const ONT_SEED_LEN: usize = 51;

/// Illumina template read length (the paper's short-read workload).
const ILLUMINA_LEN: usize = 100;

/// `k_occ_sample_rate` values covered by `--sweep-sample-rate` (the
/// default full-mode k = 4 spacing is 256).
const SWEEP_RATES: [usize; 5] = [64, 128, 256, 512, 1024];

/// `sa_sample_rate` values covered by `--sweep-sa-sample-rate` (the
/// default is 32). Coarser rates shrink the sampled suffix array but
/// lengthen every locate cursor's LF-walk — the locate-latency / heap
/// trade-off the sweep maps.
const SA_SWEEP_RATES: [usize; 4] = [8, 16, 32, 64];

const USAGE: &str = "exma-bench: benchmark 1-step vs k-step vs batched/sharded FM-index engines

USAGE:
    cargo run --release -p exma-bench [-- OPTIONS]

OPTIONS:
    --smoke               CI-sized run: small genomes, fewer queries, < 60 s
    --out PATH            output JSON path (default: BENCH_exma.json)
    --seed N              master seed for genomes and read sets (default: 42)
    --threads LIST        sharded-engine thread counts, comma-separated
                          (default: 1,2,4,8 full / 1,2 smoke)
    --sweep-sample-rate   also sweep k_occ_sample_rate over 64..1024 on the
                          picea profile (k = 4, sorted+prefetching engine)
    --sweep-sa-sample-rate
                          also sweep sa_sample_rate over 8..64 on the picea
                          profile (k = 4, sorted+prefetching locate resolver)
    --help                print this help

Exits non-zero if any engine's count/locate results diverge from the
1-step FmIndex oracle, or if the interval-sorted schedule issues more LF
steps than the plain one.";

struct Args {
    smoke: bool,
    out: PathBuf,
    seed: u64,
    /// Empty means "use the mode's default thread counts".
    threads: Vec<usize>,
    sweep: bool,
    sweep_sa: bool,
}

/// Everything that differs between `--smoke` and the full run.
struct RunSpec {
    mode: &'static str,
    genomes: Vec<GenomeProfile>,
    illumina_reads: usize,
    ont_reads: usize,
    /// Odd, so the median is an actual observation.
    count_reps: usize,
    locate_reps: usize,
    /// How many patterns per workload get full locate verification.
    verify_locates: usize,
    /// Sharded-engine thread counts measured by default.
    thread_counts: Vec<usize>,
}

fn full_spec() -> RunSpec {
    RunSpec {
        mode: "full",
        genomes: vec![
            GenomeProfile::human_rel(),
            GenomeProfile::picea_rel(),
            GenomeProfile::pinus_rel(),
        ],
        illumina_reads: 5_000,
        ont_reads: 2_000,
        // The bench box is a shared single-core VM with bursty neighbor
        // noise; 9 repetitions keep the median out of a noise burst.
        count_reps: 9,
        locate_reps: 5,
        verify_locates: 200,
        thread_counts: vec![1, 2, 4, 8],
    }
}

fn smoke_spec() -> RunSpec {
    // The paper's profiles, shrunk to CI size (builds in milliseconds,
    // whole run in seconds) but keeping their GC/repeat structure.
    let shrink = |profile: GenomeProfile, len: usize| GenomeProfile {
        name: format!("{}_smoke", profile.name),
        len,
        ..profile
    };
    RunSpec {
        mode: "smoke",
        genomes: vec![
            shrink(GenomeProfile::human_rel(), 120_000),
            shrink(GenomeProfile::picea_rel(), 200_000),
        ],
        illumina_reads: 800,
        ont_reads: 300,
        count_reps: 3,
        locate_reps: 3,
        verify_locates: 100,
        thread_counts: vec![1, 2],
    }
}

/// A named set of query patterns.
struct Workload {
    name: String,
    patterns: Vec<Vec<Base>>,
}

fn workloads(genome: &Genome, spec: &RunSpec, seed: u64) -> Vec<Workload> {
    // Error-bearing Illumina reads: most are exact substrings (0.12%
    // per-base error), so counts are usually >= 1 — the "mostly hit"
    // workload. Indels make a few lengths odd, which also stresses tails.
    let illumina = ShortReadSimulator::new(ILLUMINA_LEN, ErrorProfile::illumina())
        .simulate(genome, spec.illumina_reads, seed ^ 0x1111)
        .iter()
        .map(|r| r.bases.to_vec())
        .collect();
    // Fixed-width seeds clipped from ONT reads: at ~13% per-base error a
    // 51-mer almost never matches exactly, so backward searches die early —
    // the "mostly miss" workload where batched dead-query dropping pays.
    let ont = LongReadSimulator::new(1_200, 300, ErrorProfile::ont())
        .simulate(genome, spec.ont_reads, seed ^ 0x2222)
        .iter()
        .filter(|r| r.len() >= ONT_SEED_LEN)
        .map(|r| (0..ONT_SEED_LEN).map(|i| r.bases.get(i)).collect())
        .collect();
    vec![
        Workload {
            name: format!("illumina_{ILLUMINA_LEN}bp"),
            patterns: illumina,
        },
        Workload {
            name: format!("ont_seed_{ONT_SEED_LEN}bp"),
            patterns: ont,
        },
    ]
}

/// Checks every engine's answers against the 1-step oracle. Returns the
/// number of divergent (engine, workload) pairs, reporting each to stderr.
fn verify(engines: &[Engine], loads: &[Workload], verify_locates: usize, genome: &str) -> usize {
    let (oracle, rest) = engines.split_first().expect("engine set is never empty");
    let mut divergences = 0;
    for load in loads {
        let expect_counts = oracle.count_all(&load.patterns);
        let head = &load.patterns[..load.patterns.len().min(verify_locates)];
        let expect_locs = oracle.locate_all(head);
        for engine in rest {
            if engine.count_all(&load.patterns) != expect_counts {
                eprintln!(
                    "DIVERGENCE: {genome}/{}/{}: count differs from 1-step oracle",
                    engine.label, load.name
                );
                divergences += 1;
            } else if engine.locate_all(head) != expect_locs {
                eprintln!(
                    "DIVERGENCE: {genome}/{}/{}: locate differs from 1-step oracle",
                    engine.label, load.name
                );
                divergences += 1;
            }
        }
    }
    divergences
}

/// Scheduling sanity gate: interval sorting reorders a round's work but
/// must never add refinements. Compares `BatchStats.steps` of the sorted
/// schedule against the plain one on every workload; returns the number
/// of violations, reporting each to stderr.
fn check_sorted_steps(engines: &[Engine], loads: &[Workload], genome: &str) -> usize {
    let steps_of = |label: &str, load: &Workload| {
        engines
            .iter()
            .find(|e| e.label == label)
            .and_then(|e| e.batch_steps(&load.patterns))
    };
    let mut violations = 0;
    for load in loads {
        let (Some(plain), Some(sorted)) = (
            steps_of("batched_k4", load),
            steps_of("batched_sorted_k4", load),
        ) else {
            continue;
        };
        if sorted > plain {
            eprintln!(
                "SCHEDULING REGRESSION: {genome}/{}: sorted schedule issued {sorted} LF steps, plain {plain}",
                load.name
            );
            violations += 1;
        }
    }
    violations
}

/// Accumulated timings of one (engine, workload, op) cell.
#[derive(Default, Clone)]
struct OpTiming {
    times: Vec<f64>,
    checksum: u64,
}

impl OpTiming {
    fn median_secs(&self) -> f64 {
        let mut times = self.times.clone();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    }
}

/// Times every engine on every workload with repetitions *interleaved*
/// across engines (rep 1 of every engine, then rep 2, ...): the bench box
/// is a shared VM with bursty neighbor noise, and consecutive per-engine
/// reps would let one burst land entirely on whichever engine was being
/// measured. Returns `timings[engine][load * 2 + op]` (op 0 = count,
/// 1 = locate).
fn measure_interleaved(
    engines: &[Engine],
    loads: &[Workload],
    spec: &RunSpec,
) -> Vec<Vec<OpTiming>> {
    let mut timings = vec![vec![OpTiming::default(); loads.len() * 2]; engines.len()];
    for (li, load) in loads.iter().enumerate() {
        for (op, reps) in [(0, spec.count_reps), (1, spec.locate_reps)] {
            for _ in 0..reps {
                for (ei, engine) in engines.iter().enumerate() {
                    if !engine.measure.includes(op) {
                        continue; // locate-only entries skip the count op
                    }
                    let start = Instant::now();
                    let checksum = if op == 0 {
                        engine.count_checksum(&load.patterns)
                    } else {
                        engine.locate_checksum(&load.patterns)
                    };
                    let cell = &mut timings[ei][li * 2 + op];
                    cell.times.push(start.elapsed().as_secs_f64());
                    cell.checksum = checksum;
                }
            }
        }
    }
    timings
}

/// Assembles one engine's JSON entry from its accumulated timings.
fn engine_entry(
    engine: &Engine,
    timings: &[OpTiming],
    loads: &[Workload],
    spec: &RunSpec,
    genome: &Genome,
) -> Json {
    let mut ops: Vec<Json> = Vec::new();
    for (li, load) in loads.iter().enumerate() {
        let queries = load.patterns.len();
        let mut shown: Vec<String> = Vec::new();
        for (op, name) in [(0usize, "count"), (1, "locate")] {
            let cell = &timings[li * 2 + op];
            if cell.times.is_empty() {
                continue; // op not measured for this entry
            }
            let ns_per_query = cell.median_secs() * 1e9 / queries as f64;
            shown.push(format!("{name} {ns_per_query:.0} ns/q"));
            ops.push(
                Json::obj()
                    .field("op", name)
                    .field("workload", load.name.as_str())
                    .field("queries", queries)
                    .field("reps", cell.times.len())
                    .field("median_ns_per_query", ns_per_query)
                    .field("queries_per_sec", 1e9 / ns_per_query)
                    .field("checksum", cell.checksum),
            );
        }
        eprintln!(
            "[{}] {}/{}/{}: {}",
            spec.mode,
            genome.profile().name,
            engine.label,
            load.name,
            shown.join(", "),
        );
    }
    let mut entry = Json::obj()
        .field("genome", genome.profile().name.as_str())
        .field("genome_len", genome.len())
        .field("engine", engine.label.as_str())
        .field("k", engine.k)
        .field("build_ms", engine.build_secs * 1e3)
        .field("heap_bytes", engine.heap_bytes);
    if let Some(threads) = engine.threads {
        entry = entry.field("threads", threads);
    }
    if let Some(shared) = engine.shares_index_with {
        entry = entry.field("shares_index_with", shared);
    }
    entry.field("ops", ops)
}

fn run(args: &Args) -> ExitCode {
    let spec = if args.smoke {
        smoke_spec()
    } else {
        full_spec()
    };
    let thread_counts = if args.threads.is_empty() {
        spec.thread_counts.clone()
    } else {
        args.threads.clone()
    };
    let started = Instant::now();
    let mut results: Vec<Json> = Vec::new();
    let mut sweep_results: Vec<Json> = Vec::new();
    let mut sa_sweep_results: Vec<Json> = Vec::new();
    let mut violations = 0usize;

    for profile in &spec.genomes {
        eprintln!(
            "[{}] synthesizing {} ({} bp)...",
            spec.mode, profile.name, profile.len
        );
        let genome = Genome::synthesize(profile, args.seed);
        let loads = workloads(&genome, &spec, args.seed);
        let text = genome.text_with_sentinel();

        eprintln!("[{}] building 1-step, k=2, k=4 indexes...", spec.mode);
        let set = EngineSet::build(&text);
        let engines = set.engines(&thread_counts);

        violations += verify(&engines, &loads, spec.verify_locates, &profile.name);
        violations += check_sorted_steps(&engines, &loads, &profile.name);

        let timings = measure_interleaved(&engines, &loads, &spec);
        for (engine, engine_timings) in engines.iter().zip(&timings) {
            results.push(engine_entry(engine, engine_timings, &loads, &spec, &genome));
        }

        // The sample-rate sweep runs on the picea profile — the paper's
        // headline memory/latency trade-off genome — reusing this
        // genome's oracle and workloads.
        if args.sweep && profile.name.starts_with("picea") {
            // Oracle counts are invariant across sweep rates; compute once.
            let oracle_counts: Vec<Vec<usize>> = loads
                .iter()
                .map(|load| engines[0].count_all(&load.patterns))
                .collect();
            for rate in SWEEP_RATES {
                eprintln!("[{}] sweep: k=4, k_occ_sample_rate={rate}...", spec.mode);
                let point = SweepPoint::build(&text, rate);
                let sweep_engine = [point.engine()];
                for (load, expected) in loads.iter().zip(&oracle_counts) {
                    if sweep_engine[0].count_all(&load.patterns) != *expected {
                        eprintln!(
                            "DIVERGENCE: {}/sweep_rate_{rate}/{}: count differs from 1-step oracle",
                            profile.name, load.name
                        );
                        violations += 1;
                    }
                }
                let timings = measure_interleaved(&sweep_engine, &loads, &spec);
                sweep_results.push(
                    engine_entry(&sweep_engine[0], &timings[0], &loads, &spec, &genome)
                        .field("k_occ_sample_rate", rate),
                );
            }
        }

        // The SA-rate sweep also runs on picea: the sampled suffix array
        // is the locate-latency / heap knob, measured through the
        // sorted+prefetching locate resolver against this genome's
        // per-row oracle locates.
        if args.sweep_sa && profile.name.starts_with("picea") {
            // Oracle locates are invariant across sweep rates; compute
            // once over each workload's verification head.
            let oracle_locs: Vec<Vec<Vec<u32>>> = loads
                .iter()
                .map(|load| {
                    let head = &load.patterns[..load.patterns.len().min(spec.verify_locates)];
                    engines[0].locate_all(head)
                })
                .collect();
            for rate in SA_SWEEP_RATES {
                eprintln!("[{}] sa sweep: k=4, sa_sample_rate={rate}...", spec.mode);
                let point = SaSweepPoint::build(&text, rate);
                let sweep_engine = [point.engine()];
                for (load, expected) in loads.iter().zip(&oracle_locs) {
                    let head = &load.patterns[..load.patterns.len().min(spec.verify_locates)];
                    if sweep_engine[0].locate_all(head) != *expected {
                        eprintln!(
                            "DIVERGENCE: {}/sa_sweep_rate_{rate}/{}: locate differs from 1-step oracle",
                            profile.name, load.name
                        );
                        violations += 1;
                    }
                }
                let timings = measure_interleaved(&sweep_engine, &loads, &spec);
                sa_sweep_results.push(
                    engine_entry(&sweep_engine[0], &timings[0], &loads, &spec, &genome)
                        .field("sa_sample_rate", point.sa_sample_rate),
                );
            }
        }
    }

    let verified = violations == 0;
    let mut doc = Json::obj()
        .field("schema_version", 3u64)
        .field("mode", spec.mode)
        .field("seed", args.seed)
        .field("illumina_read_len", ILLUMINA_LEN)
        .field("ont_seed_len", ONT_SEED_LEN)
        .field(
            "thread_counts",
            thread_counts
                .iter()
                .map(|&t| Json::Int(t as u64))
                .collect::<Vec<_>>(),
        )
        // The SA sampling rate every non-sweep engine is built at.
        .field("sa_sample_rate", KStepBuildConfig::for_k(4).sa_sample_rate)
        .field("verified_against_oracle", verified)
        .field("wall_clock_secs", started.elapsed().as_secs_f64())
        .field("results", results);
    if args.sweep {
        doc = doc.field("sample_rate_sweep", sweep_results);
    }
    if args.sweep_sa {
        doc = doc.field("sa_rate_sweep", sa_sweep_results);
    }
    let rendered = format!("{doc}\n");
    if let Err(err) = std::fs::write(&args.out, rendered) {
        eprintln!("failed to write {}: {err}", args.out.display());
        return ExitCode::from(2);
    }
    eprintln!("[{}] wrote {}", spec.mode, args.out.display());

    if verified {
        ExitCode::SUCCESS
    } else {
        eprintln!("{violations} oracle divergence(s) / scheduling regression(s)");
        ExitCode::FAILURE
    }
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut args = Args {
        smoke: false,
        out: PathBuf::from("BENCH_exma.json"),
        seed: 42,
        threads: Vec::new(),
        sweep: false,
        sweep_sa: false,
    };
    let mut argv = argv.peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--sweep-sample-rate" => args.sweep = true,
            "--sweep-sa-sample-rate" => args.sweep_sa = true,
            "--out" => {
                let path = argv.next().ok_or("--out requires a path")?;
                args.out = PathBuf::from(path);
            }
            "--seed" => {
                let raw = argv.next().ok_or("--seed requires a number")?;
                args.seed = raw.parse().map_err(|_| format!("bad seed '{raw}'"))?;
            }
            "--threads" => {
                let raw = argv.next().ok_or("--threads requires a list like 1,2,4")?;
                args.threads = raw
                    .split(',')
                    .map(|part| {
                        part.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&t| t > 0)
                            .ok_or_else(|| format!("bad thread count '{part}'"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(Some(args)) => run(&args),
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_default_and_parse() {
        let args = parse_args(Vec::<String>::new().into_iter())
            .unwrap()
            .unwrap();
        assert!(!args.smoke);
        assert!(!args.sweep);
        assert!(!args.sweep_sa);
        assert!(args.threads.is_empty());
        assert_eq!(args.out, PathBuf::from("BENCH_exma.json"));
        assert_eq!(args.seed, 42);

        let args = parse_args(
            [
                "--smoke",
                "--out",
                "/tmp/b.json",
                "--seed",
                "7",
                "--threads",
                "1,2,8",
                "--sweep-sample-rate",
                "--sweep-sa-sample-rate",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap()
        .unwrap();
        assert!(args.smoke);
        assert!(args.sweep);
        assert!(args.sweep_sa);
        assert_eq!(args.threads, vec![1, 2, 8]);
        assert_eq!(args.out, PathBuf::from("/tmp/b.json"));
        assert_eq!(args.seed, 7);
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse_args(["--frobnicate".to_string()].into_iter()).is_err());
        assert!(parse_args(["--seed".to_string(), "x".to_string()].into_iter()).is_err());
        assert!(parse_args(["--threads".to_string(), "1,x".to_string()].into_iter()).is_err());
        assert!(parse_args(["--threads".to_string(), "0".to_string()].into_iter()).is_err());
        assert!(parse_args(["--help".to_string()].into_iter())
            .unwrap()
            .is_none());
    }

    #[test]
    fn smoke_spec_is_ci_sized() {
        let spec = smoke_spec();
        assert!(spec.genomes.iter().all(|g| g.len <= 200_000));
        assert!(spec.count_reps % 2 == 1, "median needs odd reps");
        assert!(spec.thread_counts.contains(&2), "CI runs sharded at 2");
    }

    #[test]
    fn full_spec_covers_all_three_references() {
        let names: Vec<_> = full_spec().genomes.iter().map(|g| g.name.clone()).collect();
        assert_eq!(names, ["human_rel", "picea_rel", "pinus_rel"]);
    }

    #[test]
    fn workloads_exercise_k_tails() {
        // 51 is odd on purpose: 51 % 2 == 1 and 51 % 4 == 3, so both k-step
        // engines hit their tail path on the ONT workload.
        assert_eq!(ONT_SEED_LEN % 2, 1);
        assert_eq!(ONT_SEED_LEN % 4, 3);
    }

    #[test]
    fn median_of_odd_reps_is_middle_observation() {
        let cell = OpTiming {
            times: vec![9.0, 1.0, 5.0],
            checksum: 7,
        };
        assert_eq!(cell.median_secs(), 5.0);
    }
}
