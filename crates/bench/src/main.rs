//! `exma-bench` — the benchmark harness of the EXMA reproduction.
//!
//! The ROADMAP's north star demands *measured* hot-path speedups; this
//! binary produces the measurements. It synthesizes the paper's genome
//! profiles at relative scale, simulates Illumina and ONT read workloads,
//! and drives **every variant through one `Executor` surface**: the
//! builder-config enumeration of [`engines::builder_configs`] (sequential
//! baselines, lockstep schedules, sharded thread counts, resolver
//! isolations) is timed on three ops per workload — an all-`count` batch,
//! an all-`locate` batch, and a `mixed` scenario interleaving counts,
//! capped and uncapped locates, and interval requests — then writes
//! `BENCH_exma.json` (schema v7: derived descriptors as engine labels,
//! per-component heap breakdowns, the delta-width sweep, and the
//! bidirectional preset section). Every genome additionally rebuilds
//! the headline k = 4 index strand-agnostic under each memory-layout
//! preset (default/compact/fast) and times all-`SearchBoth` batches of
//! error-free reads drawn from either strand, verified against the
//! brute-force both-strand scan — the measured cost of the doubled
//! `forward·revcomp` text next to its forward-only counterpart.
//! Every variant's answers are cross-checked against the sequential
//! 1-step oracle, the sorted schedule is checked to issue no extra LF
//! steps, and the compact layout preset is gated to at most half the
//! flat-u32 baseline's heap; any violation makes the process exit
//! non-zero, which is what the `bench-smoke` CI job gates on.
//!
//! ```text
//! cargo run --release -p exma-bench                 # full run (~2 min)
//! cargo run --release -p exma-bench -- --smoke      # CI-sized run (< 60 s)
//! cargo run --release -p exma-bench -- --list-engines  # print the enumeration
//! ```

mod engines;
mod json;

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use exma_engine::{
    DeltaWidth, EngineBuilder, HeapBreakdown, IndexLayout, QueryArena, QueryBatch, QueryRequest,
    QueryResults,
};
use exma_genome::{
    Base, ErrorProfile, Genome, GenomeProfile, LongReadSimulator, ShortReadSimulator, Symbol,
};
use exma_index::{naive, KStepBuildConfig};

use crate::engines::{
    builder_configs, checksum, EngineSet, Measure, SweepPoint, Variant, OP_COUNT, OP_KINDS,
    OP_LOCATE, OP_MIXED, OP_NAMES,
};
use crate::json::Json;

/// Seed window taken from each simulated ONT read. 51 is deliberately odd:
/// it exercises the pattern-tail path of both k = 2 and k = 4 engines.
const ONT_SEED_LEN: usize = 51;

/// Illumina template read length (the paper's short-read workload).
const ILLUMINA_LEN: usize = 100;

/// Hit cap of the mixed scenario's capped-locate queries — tight enough
/// to bite on repeat patterns, loose enough that most 100 bp reads are
/// untruncated.
const MIXED_MAX_HITS: u32 = 8;

/// `k_occ_sample_rate` values covered by `--sweep-sample-rate` (the
/// default full-mode k = 4 spacing is 256).
const SWEEP_RATES: [usize; 5] = [64, 128, 256, 512, 1024];

/// `sa_sample_rate` values covered by `--sweep-sa-sample-rate` (the
/// default is 32). Coarser rates shrink the sampled suffix array but
/// lengthen every locate cursor's LF-walk — the locate-latency / heap
/// trade-off the sweep maps.
const SA_SWEEP_RATES: [usize; 4] = [8, 16, 32, 64];

/// `k_occ_sample_rate` held fixed by `--sweep-delta-width` — the compact
/// preset's spacing, where checkpoint rows dominate the footprint and
/// the delta-width × superblock-spacing cross actually moves it.
const DELTA_SWEEP_KOCC_RATE: usize = 640;

/// Superblock spacings crossed with each two-level width by
/// `--sweep-delta-width`.
const DELTA_SWEEP_SB_RATES: [usize; 3] = [2, 8, 64];

const USAGE: &str = "exma-bench: benchmark the builder-config enumeration of FM-index engines

USAGE:
    cargo run --release -p exma-bench [-- OPTIONS]

OPTIONS:
    --smoke               CI-sized run: small genomes, fewer queries, < 60 s
    --out PATH            output JSON path (default: BENCH_exma.json)
    --seed N              master seed for genomes and read sets (default: 42)
    --threads LIST        sharded-engine thread counts, comma-separated
                          (default: 1,2,4,8 full / 1,2 smoke)
    --sweep-sample-rate   also sweep k_occ_sample_rate over 64..1024 on the
                          picea profile (k = 4, locality engine)
    --sweep-sa-sample-rate
                          also sweep sa_sample_rate over 8..64 on the picea
                          profile (k = 4, locality engine, locate timing)
    --sweep-delta-width   also cross checkpoint delta width (u32 flat, u16,
                          u8) with superblock spacing (2, 8, 64) at the
                          compact k-occ spacing on the picea profile;
                          unbuildable points (delta overflow) are recorded
                          as build errors, mapping the compression frontier
    --list-engines        print the derived descriptor of every enumerated
                          builder config (sweep configs included with the
                          sweep flags) and exit
    --help                print this help

Exits non-zero if any variant's results diverge from the sequential
1-step oracle on any op (count, locate, or the mixed scenario), if the
interval-sorted schedule issues more LF steps than the plain one, or if
the compact layout preset's k = 4 heap exceeds half the flat-u32
baseline's on any genome.";

struct Args {
    smoke: bool,
    out: PathBuf,
    seed: u64,
    /// Empty means "use the mode's default thread counts".
    threads: Vec<usize>,
    sweep: bool,
    sweep_sa: bool,
    sweep_delta: bool,
    list_engines: bool,
}

/// Everything that differs between `--smoke` and the full run.
struct RunSpec {
    mode: &'static str,
    genomes: Vec<GenomeProfile>,
    illumina_reads: usize,
    ont_reads: usize,
    /// Odd, so the median is an actual observation.
    count_reps: usize,
    locate_reps: usize,
    /// How many patterns per workload get full locate/mixed verification.
    verify_locates: usize,
    /// Sharded-engine thread counts measured by default.
    thread_counts: Vec<usize>,
}

fn full_spec() -> RunSpec {
    RunSpec {
        mode: "full",
        genomes: vec![
            GenomeProfile::human_rel(),
            GenomeProfile::picea_rel(),
            GenomeProfile::pinus_rel(),
        ],
        illumina_reads: 5_000,
        ont_reads: 2_000,
        // The bench box is a shared single-core VM with bursty neighbor
        // noise; 9 repetitions keep the median out of a noise burst.
        count_reps: 9,
        locate_reps: 5,
        verify_locates: 200,
        thread_counts: vec![1, 2, 4, 8],
    }
}

fn smoke_spec() -> RunSpec {
    // The paper's profiles, shrunk to CI size (builds in milliseconds,
    // whole run in seconds) but keeping their GC/repeat structure.
    let shrink = |profile: GenomeProfile, len: usize| GenomeProfile {
        name: format!("{}_smoke", profile.name),
        len,
        ..profile
    };
    RunSpec {
        mode: "smoke",
        genomes: vec![
            shrink(GenomeProfile::human_rel(), 120_000),
            shrink(GenomeProfile::picea_rel(), 200_000),
        ],
        illumina_reads: 800,
        ont_reads: 300,
        count_reps: 3,
        locate_reps: 3,
        verify_locates: 100,
        thread_counts: vec![1, 2],
    }
}

/// A named pattern set with its three pre-built query batches (one per
/// timed op) and the verification heads of the position-heavy ops.
struct Workload {
    name: String,
    queries: usize,
    /// `batches[op]` for op ∈ {OP_COUNT, OP_LOCATE, OP_MIXED}.
    batches: [QueryBatch; OP_KINDS],
    /// First `verify_locates` queries of the locate and mixed batches —
    /// full-position verification over the whole set would dominate the
    /// run.
    locate_head: QueryBatch,
    mixed_head: QueryBatch,
}

/// The mixed count+locate scenario: one submission cycling through
/// every request shape the API offers.
fn mixed_batch(patterns: &[Vec<Base>]) -> QueryBatch {
    let mut batch = QueryBatch::new();
    for (i, pattern) in patterns.iter().enumerate() {
        match i % 4 {
            0 => batch.push(QueryRequest::Count, pattern),
            1 => batch.push(QueryRequest::locate(), pattern),
            2 => batch.push(QueryRequest::locate_capped(MIXED_MAX_HITS), pattern),
            _ => batch.push(QueryRequest::Interval, pattern),
        }
    }
    batch
}

fn workload(name: String, patterns: Vec<Vec<Base>>, verify_locates: usize) -> Workload {
    let head = patterns.len().min(verify_locates);
    Workload {
        name,
        queries: patterns.len(),
        locate_head: QueryBatch::uniform(QueryRequest::locate(), &patterns[..head]),
        mixed_head: mixed_batch(&patterns[..head]),
        batches: [
            QueryBatch::uniform(QueryRequest::Count, &patterns),
            QueryBatch::uniform(QueryRequest::locate(), &patterns),
            mixed_batch(&patterns),
        ],
    }
}

fn workloads(genome: &Genome, spec: &RunSpec, seed: u64) -> Vec<Workload> {
    // Error-bearing Illumina reads: most are exact substrings (0.12%
    // per-base error), so counts are usually >= 1 — the "mostly hit"
    // workload. Indels make a few lengths odd, which also stresses tails.
    let illumina: Vec<Vec<Base>> = ShortReadSimulator::new(ILLUMINA_LEN, ErrorProfile::illumina())
        .simulate(genome, spec.illumina_reads, seed ^ 0x1111)
        .iter()
        .map(|r| r.bases.to_vec())
        .collect();
    // Fixed-width seeds clipped from ONT reads: at ~13% per-base error a
    // 51-mer almost never matches exactly, so backward searches die early —
    // the "mostly miss" workload where batched dead-query dropping pays.
    let ont: Vec<Vec<Base>> = LongReadSimulator::new(1_200, 300, ErrorProfile::ont())
        .simulate(genome, spec.ont_reads, seed ^ 0x2222)
        .iter()
        .filter(|r| r.len() >= ONT_SEED_LEN)
        .map(|r| (0..ONT_SEED_LEN).map(|i| r.bases.get(i)).collect())
        .collect();
    vec![
        workload(
            format!("illumina_{ILLUMINA_LEN}bp"),
            illumina,
            spec.verify_locates,
        ),
        workload(
            format!("ont_seed_{ONT_SEED_LEN}bp"),
            ont,
            spec.verify_locates,
        ),
    ]
}

/// Checks every variant's answers against the sequential 1-step oracle
/// on all three ops. Returns the number of divergent (variant, workload,
/// op) triples, reporting each to stderr.
fn verify(variants: &[Variant], loads: &[Workload], genome: &str) -> usize {
    let (oracle, rest) = variants.split_first().expect("enumeration is never empty");
    let mut divergences = 0;
    for load in loads {
        let checks = [
            (OP_NAMES[OP_COUNT], &load.batches[OP_COUNT]),
            (OP_NAMES[OP_LOCATE], &load.locate_head),
            (OP_NAMES[OP_MIXED], &load.mixed_head),
        ];
        for (op, batch) in checks {
            let (expected, _) = oracle.exec.run(batch);
            for variant in rest {
                if variant.exec.run(batch).0 != expected {
                    eprintln!(
                        "DIVERGENCE: {genome}/{}/{}: {op} differs from the 1-step oracle",
                        variant.label, load.name
                    );
                    divergences += 1;
                }
            }
        }
    }
    divergences
}

/// Scheduling sanity gate: interval sorting reorders a round's work but
/// must never add refinements. Compares `BatchStats.steps` of the sorted
/// schedule against the plain one on every workload; returns the number
/// of violations, reporting each to stderr.
fn check_sorted_steps(variants: &[Variant], loads: &[Workload], genome: &str) -> usize {
    let steps_of = |label: &str, batch: &QueryBatch| {
        variants
            .iter()
            .find(|v| v.label == label)
            .map(|v| v.exec.run(batch).1.steps)
    };
    let mut violations = 0;
    for load in loads {
        let batch = &load.batches[OP_COUNT];
        let (Some(plain), Some(sorted)) = (
            steps_of("lockstep_k4_plain", batch),
            steps_of("lockstep_k4_sorted", batch),
        ) else {
            continue;
        };
        if sorted > plain {
            eprintln!(
                "SCHEDULING REGRESSION: {genome}/{}: sorted schedule issued {sorted} LF steps, plain {plain}",
                load.name
            );
            violations += 1;
        }
    }
    violations
}

/// Accumulated timings of one (variant, workload, op) cell.
#[derive(Default, Clone)]
struct OpTiming {
    times: Vec<f64>,
    checksum: u64,
}

impl OpTiming {
    fn median_secs(&self) -> f64 {
        let mut times = self.times.clone();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    }
}

/// Times every variant on every workload and op with repetitions
/// *interleaved* across variants (rep 1 of every variant, then rep 2,
/// ...): the bench box is a shared VM with bursty neighbor noise, and
/// consecutive per-variant reps would let one burst land entirely on
/// whichever variant was being measured. Each variant reuses one
/// `QueryArena` across all reps — the steady state the pooled API is
/// designed for. Returns `timings[variant][load * OP_KINDS + op]`.
fn measure_interleaved(
    variants: &[Variant],
    loads: &[Workload],
    spec: &RunSpec,
) -> Vec<Vec<OpTiming>> {
    let mut timings = vec![vec![OpTiming::default(); loads.len() * OP_KINDS]; variants.len()];
    let mut arenas: Vec<QueryArena> = variants.iter().map(|_| QueryArena::new()).collect();
    for (li, load) in loads.iter().enumerate() {
        for op in 0..OP_KINDS {
            let reps = if op == OP_COUNT {
                spec.count_reps
            } else {
                spec.locate_reps
            };
            for _ in 0..reps {
                for (vi, variant) in variants.iter().enumerate() {
                    if !variant.measure.includes(op) {
                        continue; // locate-only variants skip count/mixed
                    }
                    let start = Instant::now();
                    variant.exec.run_into(&load.batches[op], &mut arenas[vi]);
                    let elapsed = start.elapsed().as_secs_f64();
                    let cell = &mut timings[vi][li * OP_KINDS + op];
                    cell.times.push(elapsed);
                    cell.checksum = checksum(std::hint::black_box(arenas[vi].results()));
                }
            }
        }
    }
    timings
}

/// Assembles one variant's JSON entry from its accumulated timings.
fn engine_entry(
    variant: &Variant,
    timings: &[OpTiming],
    loads: &[Workload],
    spec: &RunSpec,
    genome: &Genome,
) -> Json {
    let mut ops: Vec<Json> = Vec::new();
    for (li, load) in loads.iter().enumerate() {
        let mut shown: Vec<String> = Vec::new();
        for (op, name) in OP_NAMES.iter().enumerate() {
            let cell = &timings[li * OP_KINDS + op];
            if cell.times.is_empty() {
                continue; // op not measured for this variant
            }
            let ns_per_query = cell.median_secs() * 1e9 / load.queries as f64;
            shown.push(format!("{name} {ns_per_query:.0} ns/q"));
            ops.push(
                Json::obj()
                    .field("op", *name)
                    .field("workload", load.name.as_str())
                    .field("queries", load.queries)
                    .field("reps", cell.times.len())
                    .field("median_ns_per_query", ns_per_query)
                    .field("queries_per_sec", 1e9 / ns_per_query)
                    .field("checksum", cell.checksum),
            );
        }
        eprintln!(
            "[{}] {}/{}/{}: {}",
            spec.mode,
            genome.profile().name,
            variant.label,
            load.name,
            shown.join(", "),
        );
    }
    let mut entry = Json::obj()
        .field("genome", genome.profile().name.as_str())
        .field("genome_len", genome.len())
        .field("engine", variant.label.as_str())
        .field("k", variant.k)
        .field("build_ms", variant.build_secs * 1e3)
        .field("heap_bytes", variant.heap_bytes)
        .field("heap", heap_json(&variant.heap));
    if let Some(threads) = variant.threads {
        entry = entry.field("threads", threads);
    }
    if let Some(shared) = &variant.shares_index_with {
        entry = entry.field("shares_index_with", shared.as_str());
    }
    entry.field("ops", ops)
}

/// The per-component heap attribution of one index, as the schema-v6
/// `heap` object (`total` always equals the component sum — the
/// breakdown is exact, not an estimate).
fn heap_json(heap: &HeapBreakdown) -> Json {
    Json::obj()
        .field("total", heap.total())
        .field("k_occ_checkpoints", heap.k_occ_checkpoints)
        .field("k_occ_deltas", heap.k_occ_deltas)
        .field("k_occ_codes", heap.k_occ_codes)
        .field("one_step_occ", heap.one_step_occ)
        .field("sa_samples", heap.sa_samples)
        .field("rank_bits", heap.rank_bits)
        .field("other", heap.other)
}

/// The strand-agnostic recipes of the bidirectional section: the
/// headline k = 4 width under each memory-layout preset, rebuilt over
/// the doubled `forward·revcomp` text.
fn bidir_preset_builders() -> [(&'static str, EngineBuilder); 3] {
    [
        ("default", EngineBuilder::new().bidirectional(true)),
        (
            "compact",
            EngineBuilder::new()
                .layout(IndexLayout::compact())
                .bidirectional(true),
        ),
        (
            "fast",
            EngineBuilder::new()
                .layout(IndexLayout::fast())
                .bidirectional(true),
        ),
    ]
}

/// A named all-`SearchBoth` pattern set and its verification head.
struct BidirLoad {
    name: String,
    queries: usize,
    batch: QueryBatch,
    head: QueryBatch,
}

/// The bidirectional workloads: error-free simulated reads — Illumina
/// lengths and ONT seed clips — drawn as sequenced from either strand
/// and submitted verbatim, the "align without client-side reverse
/// complementing" scenario. Error-free so every read still matches its
/// template and the answers stay hit-biased; every query is capped at
/// [`MIXED_MAX_HITS`] so both-strand response sizes stay bounded.
fn bidir_loads(genome: &Genome, spec: &RunSpec, seed: u64) -> Vec<BidirLoad> {
    let short: Vec<Vec<Base>> = ShortReadSimulator::new(ILLUMINA_LEN, ErrorProfile::error_free())
        .simulate(genome, spec.illumina_reads / 5, seed ^ 0x3333)
        .iter()
        .map(|r| r.bases.to_vec())
        .collect();
    let long: Vec<Vec<Base>> = LongReadSimulator::new(1_200, 300, ErrorProfile::error_free())
        .simulate(genome, spec.ont_reads / 5, seed ^ 0x4444)
        .iter()
        .filter(|r| r.len() >= ONT_SEED_LEN)
        .map(|r| (0..ONT_SEED_LEN).map(|i| r.bases.get(i)).collect())
        .collect();
    let load = |name: String, patterns: Vec<Vec<Base>>| {
        let head = patterns.len().min(spec.verify_locates);
        let request = QueryRequest::search_both_capped(MIXED_MAX_HITS);
        BidirLoad {
            name,
            queries: patterns.len(),
            head: QueryBatch::uniform(request, &patterns[..head]),
            batch: QueryBatch::uniform(request, &patterns),
        }
    };
    vec![
        load(format!("illumina_{ILLUMINA_LEN}bp_bothstrand"), short),
        load(format!("ont_seed_{ONT_SEED_LEN}bp_bothstrand"), long),
    ]
}

/// The bidirectional measurement: each preset of
/// [`bidir_preset_builders`] is built, verified, and timed on the
/// [`bidir_loads`]. The default preset's verification head is checked
/// query by query against the brute-force both-strand scan (cap rule
/// included); the other presets must answer the full batches
/// identically to the default one — layout changes the footprint,
/// never the answers. Heap is reported next to the matching
/// forward-only index's, making the ~2× strand-agnostic cost a
/// measured number per preset. Returns the JSON entries and the
/// divergence count.
fn bidir_section(
    genome: &Genome,
    text: &[Symbol],
    forward_heap: [usize; 3],
    spec: &RunSpec,
    seed: u64,
) -> (Vec<Json>, usize) {
    let loads = bidir_loads(genome, spec, seed);
    let mut entries = Vec::new();
    let mut divergences = 0;
    let mut reference: Vec<QueryResults> = Vec::new();
    for (pi, (preset, builder)) in bidir_preset_builders().into_iter().enumerate() {
        let start = Instant::now();
        let index = builder
            .build_index(text)
            .expect("bidir recipes build on every profile");
        let build_secs = start.elapsed().as_secs_f64();
        let exec = builder
            .attach(&index)
            .expect("bidir recipes attach to their own index");
        let mut arena = QueryArena::new();
        let mut ops: Vec<Json> = Vec::new();
        for (li, load) in loads.iter().enumerate() {
            if pi == 0 {
                // The default preset carries the naive-oracle check.
                let (head_results, _) = exec.run(&load.head);
                for i in 0..load.head.len() {
                    let hits = naive::occurrences_both(genome.seq(), load.head.pattern(i));
                    let kept = (MIXED_MAX_HITS as usize).min(hits.len());
                    if head_results.positions(i) != &hits[..kept] {
                        eprintln!(
                            "DIVERGENCE: {}/{}/{}: search_both #{i} differs from the \
                             both-strand naive scan",
                            genome.profile().name,
                            builder.descriptor(),
                            load.name
                        );
                        divergences += 1;
                    }
                }
                reference.push(exec.run(&load.batch).0);
            } else if exec.run(&load.batch).0 != reference[li] {
                eprintln!(
                    "DIVERGENCE: {}/{}/{}: search_both differs from the default preset",
                    genome.profile().name,
                    builder.descriptor(),
                    load.name
                );
                divergences += 1;
            }
            let mut cell = OpTiming::default();
            for _ in 0..spec.locate_reps {
                let start = Instant::now();
                exec.run_into(&load.batch, &mut arena);
                cell.times.push(start.elapsed().as_secs_f64());
                cell.checksum = checksum(std::hint::black_box(arena.results()));
            }
            let ns_per_query = cell.median_secs() * 1e9 / load.queries as f64;
            eprintln!(
                "[{}] {}/{}/{}: search_both {ns_per_query:.0} ns/q",
                spec.mode,
                genome.profile().name,
                builder.descriptor(),
                load.name,
            );
            ops.push(
                Json::obj()
                    .field("op", "search_both")
                    .field("workload", load.name.as_str())
                    .field("queries", load.queries)
                    .field("reps", cell.times.len())
                    .field("median_ns_per_query", ns_per_query)
                    .field("queries_per_sec", 1e9 / ns_per_query)
                    .field("checksum", cell.checksum),
            );
        }
        entries.push(
            Json::obj()
                .field("genome", genome.profile().name.as_str())
                .field("genome_len", genome.len())
                .field("preset", preset)
                .field("engine", builder.descriptor())
                .field("k", builder.step_width())
                .field("build_ms", build_secs * 1e3)
                .field("heap_bytes", index.heap_bytes())
                .field("heap", heap_json(&index.heap_breakdown()))
                .field("forward_heap_bytes", forward_heap[pi])
                .field(
                    "heap_ratio_vs_forward",
                    index.heap_bytes() as f64 / forward_heap[pi] as f64,
                )
                .field("ops", ops),
        );
    }
    (entries, divergences)
}

/// The builder configs behind the two sweeps, descriptor-visible in
/// `--list-engines` and shared with the sweep runners below.
fn sweep_builders() -> Vec<(EngineBuilder, Measure, usize)> {
    SWEEP_RATES
        .iter()
        .map(|&rate| {
            (
                EngineBuilder::new().k_occ_sample_rate(rate),
                Measure::All,
                rate,
            )
        })
        .collect()
}

fn sa_sweep_builders() -> Vec<(EngineBuilder, Measure, usize)> {
    SA_SWEEP_RATES
        .iter()
        .map(|&rate| {
            (
                EngineBuilder::new().sa_sample_rate(rate),
                Measure::LocateOnly,
                rate,
            )
        })
        .collect()
}

/// The delta-width × superblock-spacing cross of `--sweep-delta-width`:
/// the flat u32 baseline plus every two-level width at every spacing,
/// all at the compact k-occ checkpoint rate. Some u8 points are
/// expected *not* to build on real profiles — a 640-row block under a
/// wide superblock overflows a u8 counter — which is the frontier the
/// sweep exists to map.
fn delta_sweep_builders() -> Vec<(EngineBuilder, Measure, DeltaWidth, usize)> {
    let base = EngineBuilder::new().k_occ_sample_rate(DELTA_SWEEP_KOCC_RATE);
    let mut builders = vec![(
        base.delta_width(DeltaWidth::U32),
        Measure::All,
        DeltaWidth::U32,
        0usize,
    )];
    for width in [DeltaWidth::U16, DeltaWidth::U8] {
        for &sb in &DELTA_SWEEP_SB_RATES {
            builders.push((
                base.delta_width(width).superblock_rate(sb),
                Measure::All,
                width,
                sb,
            ));
        }
    }
    builders
}

/// `--list-engines`: print the derived descriptor of every enumerated
/// builder config (no index is built — descriptors derive from the
/// recipes alone).
fn list_engines(args: &Args, thread_counts: &[usize]) {
    println!("# main enumeration (one entry per genome in a run)");
    for (builder, measure) in builder_configs(thread_counts) {
        println!(
            "{:<34} k={} threads={} measure={:?}",
            builder.descriptor(),
            builder.step_width(),
            builder.thread_count(),
            measure
        );
    }
    println!("# bidirectional presets (one entry per genome in a run)");
    for (preset, builder) in bidir_preset_builders() {
        println!(
            "{:<34} preset={preset} k={} bidirectional",
            builder.descriptor(),
            builder.step_width(),
        );
    }
    if args.sweep {
        println!("# --sweep-sample-rate configs (picea profile)");
        for (builder, measure, rate) in sweep_builders() {
            println!(
                "{:<34} k_occ_sample_rate={rate} measure={measure:?}",
                builder.descriptor()
            );
        }
    }
    if args.sweep_sa {
        println!("# --sweep-sa-sample-rate configs (picea profile)");
        for (builder, measure, rate) in sa_sweep_builders() {
            println!(
                "{:<34} sa_sample_rate={rate} measure={measure:?}",
                builder.descriptor()
            );
        }
    }
    if args.sweep_delta {
        println!("# --sweep-delta-width configs (picea profile)");
        for (builder, measure, width, sb) in delta_sweep_builders() {
            println!(
                "{:<34} delta_width={width} superblock_rate={sb} measure={measure:?}",
                builder.descriptor()
            );
        }
    }
}

fn run(args: &Args) -> ExitCode {
    let spec = if args.smoke {
        smoke_spec()
    } else {
        full_spec()
    };
    let thread_counts = if args.threads.is_empty() {
        spec.thread_counts.clone()
    } else {
        args.threads.clone()
    };
    if args.list_engines {
        list_engines(args, &thread_counts);
        return ExitCode::SUCCESS;
    }
    let started = Instant::now();
    let mut results: Vec<Json> = Vec::new();
    let mut bidir_results: Vec<Json> = Vec::new();
    let mut sweep_results: Vec<Json> = Vec::new();
    let mut sa_sweep_results: Vec<Json> = Vec::new();
    let mut delta_sweep_results: Vec<Json> = Vec::new();
    let mut violations = 0usize;

    for profile in &spec.genomes {
        eprintln!(
            "[{}] synthesizing {} ({} bp)...",
            spec.mode, profile.name, profile.len
        );
        let genome = Genome::synthesize(profile, args.seed);
        let loads = workloads(&genome, &spec, args.seed);
        let text = genome.text_with_sentinel();

        eprintln!("[{}] building 1-step, k=2, k=4 indexes...", spec.mode);
        let set = EngineSet::build(&text);
        let variants = set.variants(&thread_counts);

        violations += verify(&variants, &loads, &profile.name);
        violations += check_sorted_steps(&variants, &loads, &profile.name);

        // Heap regression gate: the compact preset's k = 4 index must
        // cost at most half the flat-u32 baseline's — if two-level
        // compression ever regresses, the run fails loud, on every
        // genome including the CI smoke profiles.
        let (compact, fast) = (set.k4_compact.heap_bytes(), set.k4_fast.heap_bytes());
        if compact * 2 > fast {
            eprintln!(
                "HEAP REGRESSION: {}: compact k=4 heap {compact} B exceeds half the \
                 flat-u32 layout's {fast} B",
                profile.name
            );
            violations += 1;
        }

        let timings = measure_interleaved(&variants, &loads, &spec);
        for (variant, variant_timings) in variants.iter().zip(&timings) {
            results.push(engine_entry(
                variant,
                variant_timings,
                &loads,
                &spec,
                &genome,
            ));
        }

        // The bidirectional section runs on every genome, smoke
        // included: the strand-agnostic cost per layout preset is a
        // headline number, not an opt-in sweep.
        eprintln!(
            "[{}] building bidirectional k=4 presets (default/compact/fast)...",
            spec.mode
        );
        let forward_heap = [
            set.k4.heap_bytes(),
            set.k4_compact.heap_bytes(),
            set.k4_fast.heap_bytes(),
        ];
        let (entries, bidir_divergences) =
            bidir_section(&genome, &text, forward_heap, &spec, args.seed);
        violations += bidir_divergences;
        bidir_results.extend(entries);

        // The sample-rate sweeps run on the picea profile — the paper's
        // headline memory/latency trade-off genome — reusing this
        // genome's oracle and workloads. Sweep points verify against the
        // oracle variant on their measured op before being timed.
        let oracle = &variants[0];
        if args.sweep && profile.name.starts_with("picea") {
            // Oracle answers are invariant across sweep rates; compute
            // them once per workload, not once per (rate, workload).
            let oracle_counts: Vec<_> = loads
                .iter()
                .map(|load| oracle.exec.run(&load.batches[OP_COUNT]).0)
                .collect();
            for (builder, measure, rate) in sweep_builders() {
                eprintln!("[{}] sweep: k=4, k_occ_sample_rate={rate}...", spec.mode);
                let point = SweepPoint::build(&text, builder, measure);
                let sweep_variant = [point.variant()];
                for (load, expected) in loads.iter().zip(&oracle_counts) {
                    if sweep_variant[0].exec.run(&load.batches[OP_COUNT]).0 != *expected {
                        eprintln!(
                            "DIVERGENCE: {}/kocc_{rate}/{}: count differs from 1-step oracle",
                            profile.name, load.name
                        );
                        violations += 1;
                    }
                }
                let timings = measure_interleaved(&sweep_variant, &loads, &spec);
                sweep_results.push(
                    engine_entry(&sweep_variant[0], &timings[0], &loads, &spec, &genome)
                        .field("k_occ_sample_rate", rate),
                );
            }
        }

        if args.sweep_sa && profile.name.starts_with("picea") {
            // Oracle locates are likewise rate-invariant; one pass per
            // workload's verification head.
            let oracle_locates: Vec<_> = loads
                .iter()
                .map(|load| oracle.exec.run(&load.locate_head).0)
                .collect();
            for (builder, measure, rate) in sa_sweep_builders() {
                eprintln!("[{}] sa sweep: k=4, sa_sample_rate={rate}...", spec.mode);
                let point = SweepPoint::build(&text, builder, measure);
                let sweep_variant = [point.variant()];
                for (load, expected) in loads.iter().zip(&oracle_locates) {
                    if sweep_variant[0].exec.run(&load.locate_head).0 != *expected {
                        eprintln!(
                            "DIVERGENCE: {}/sa_{rate}/{}: locate differs from 1-step oracle",
                            profile.name, load.name
                        );
                        violations += 1;
                    }
                }
                let timings = measure_interleaved(&sweep_variant, &loads, &spec);
                sa_sweep_results.push(
                    engine_entry(&sweep_variant[0], &timings[0], &loads, &spec, &genome)
                        .field("sa_sample_rate", rate),
                );
            }
        }

        if args.sweep_delta && profile.name.starts_with("picea") {
            let oracle_counts: Vec<_> = loads
                .iter()
                .map(|load| oracle.exec.run(&load.batches[OP_COUNT]).0)
                .collect();
            for (builder, measure, width, sb) in delta_sweep_builders() {
                eprintln!(
                    "[{}] delta sweep: k=4, kocc={DELTA_SWEEP_KOCC_RATE}, width={width}, sb={sb}...",
                    spec.mode
                );
                let tagged = |entry: Json| {
                    entry
                        .field("delta_width", width.to_string())
                        .field("superblock_rate", sb)
                };
                let point = match SweepPoint::try_build(&text, builder, measure) {
                    Ok(point) => point,
                    Err(err) => {
                        // An unbuildable point is the frontier, not a
                        // failure: record the typed reason and move on.
                        eprintln!("[{}]   -> does not build: {err}", spec.mode);
                        delta_sweep_results.push(tagged(
                            Json::obj()
                                .field("genome", profile.name.as_str())
                                .field("engine", builder.descriptor())
                                .field("build_error", err.to_string()),
                        ));
                        continue;
                    }
                };
                let sweep_variant = [point.variant()];
                for (load, expected) in loads.iter().zip(&oracle_counts) {
                    if sweep_variant[0].exec.run(&load.batches[OP_COUNT]).0 != *expected {
                        eprintln!(
                            "DIVERGENCE: {}/{}/{}: count differs from 1-step oracle",
                            profile.name, sweep_variant[0].label, load.name
                        );
                        violations += 1;
                    }
                }
                let timings = measure_interleaved(&sweep_variant, &loads, &spec);
                delta_sweep_results.push(tagged(engine_entry(
                    &sweep_variant[0],
                    &timings[0],
                    &loads,
                    &spec,
                    &genome,
                )));
            }
        }
    }

    let verified = violations == 0;
    let mut doc = Json::obj()
        .field("schema_version", 7u64)
        .field("mode", spec.mode)
        .field("seed", args.seed)
        .field("illumina_read_len", ILLUMINA_LEN)
        .field("ont_seed_len", ONT_SEED_LEN)
        .field("mixed_max_hits", MIXED_MAX_HITS as u64)
        .field(
            "thread_counts",
            thread_counts
                .iter()
                .map(|&t| Json::Int(t as u64))
                .collect::<Vec<_>>(),
        )
        // The SA sampling rate every non-sweep variant is built at.
        .field("sa_sample_rate", KStepBuildConfig::for_k(4).sa_sample_rate)
        .field("verified_against_oracle", verified)
        .field("wall_clock_secs", started.elapsed().as_secs_f64())
        .field("results", results)
        .field("bidir_presets", bidir_results);
    if args.sweep {
        doc = doc.field("sample_rate_sweep", sweep_results);
    }
    if args.sweep_sa {
        doc = doc.field("sa_rate_sweep", sa_sweep_results);
    }
    if args.sweep_delta {
        doc = doc.field("delta_width_sweep", delta_sweep_results);
    }
    let rendered = format!("{doc}\n");
    if let Err(err) = std::fs::write(&args.out, rendered) {
        eprintln!("failed to write {}: {err}", args.out.display());
        return ExitCode::from(2);
    }
    eprintln!("[{}] wrote {}", spec.mode, args.out.display());

    if verified {
        ExitCode::SUCCESS
    } else {
        eprintln!("{violations} oracle divergence(s) / scheduling regression(s)");
        ExitCode::FAILURE
    }
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut args = Args {
        smoke: false,
        out: PathBuf::from("BENCH_exma.json"),
        seed: 42,
        threads: Vec::new(),
        sweep: false,
        sweep_sa: false,
        sweep_delta: false,
        list_engines: false,
    };
    let mut argv = argv.peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--sweep-sample-rate" => args.sweep = true,
            "--sweep-sa-sample-rate" => args.sweep_sa = true,
            "--sweep-delta-width" => args.sweep_delta = true,
            "--list-engines" => args.list_engines = true,
            "--out" => {
                let path = argv.next().ok_or("--out requires a path")?;
                args.out = PathBuf::from(path);
            }
            "--seed" => {
                let raw = argv.next().ok_or("--seed requires a number")?;
                args.seed = raw.parse().map_err(|_| format!("bad seed '{raw}'"))?;
            }
            "--threads" => {
                let raw = argv.next().ok_or("--threads requires a list like 1,2,4")?;
                args.threads = raw
                    .split(',')
                    .map(|part| {
                        part.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&t| t > 0)
                            .ok_or_else(|| format!("bad thread count '{part}'"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(Some(args)) => run(&args),
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_default_and_parse() {
        let args = parse_args(Vec::<String>::new().into_iter())
            .unwrap()
            .unwrap();
        assert!(!args.smoke);
        assert!(!args.sweep);
        assert!(!args.sweep_sa);
        assert!(!args.sweep_delta);
        assert!(!args.list_engines);
        assert!(args.threads.is_empty());
        assert_eq!(args.out, PathBuf::from("BENCH_exma.json"));
        assert_eq!(args.seed, 42);

        let args = parse_args(
            [
                "--smoke",
                "--out",
                "/tmp/b.json",
                "--seed",
                "7",
                "--threads",
                "1,2,8",
                "--sweep-sample-rate",
                "--sweep-sa-sample-rate",
                "--sweep-delta-width",
                "--list-engines",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap()
        .unwrap();
        assert!(args.smoke);
        assert!(args.sweep);
        assert!(args.sweep_sa);
        assert!(args.sweep_delta);
        assert!(args.list_engines);
        assert_eq!(args.threads, vec![1, 2, 8]);
        assert_eq!(args.out, PathBuf::from("/tmp/b.json"));
        assert_eq!(args.seed, 7);
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse_args(["--frobnicate".to_string()].into_iter()).is_err());
        assert!(parse_args(["--seed".to_string(), "x".to_string()].into_iter()).is_err());
        assert!(parse_args(["--threads".to_string(), "1,x".to_string()].into_iter()).is_err());
        assert!(parse_args(["--threads".to_string(), "0".to_string()].into_iter()).is_err());
        assert!(parse_args(["--help".to_string()].into_iter())
            .unwrap()
            .is_none());
    }

    #[test]
    fn smoke_spec_is_ci_sized() {
        let spec = smoke_spec();
        assert!(spec.genomes.iter().all(|g| g.len <= 200_000));
        assert!(spec.count_reps % 2 == 1, "median needs odd reps");
        assert!(spec.thread_counts.contains(&2), "CI runs sharded at 2");
    }

    #[test]
    fn full_spec_covers_all_three_references() {
        let names: Vec<_> = full_spec().genomes.iter().map(|g| g.name.clone()).collect();
        assert_eq!(names, ["human_rel", "picea_rel", "pinus_rel"]);
    }

    #[test]
    fn workloads_exercise_k_tails() {
        // 51 is odd on purpose: 51 % 2 == 1 and 51 % 4 == 3, so both k-step
        // engines hit their tail path on the ONT workload.
        assert_eq!(ONT_SEED_LEN % 2, 1);
        assert_eq!(ONT_SEED_LEN % 4, 3);
    }

    #[test]
    fn mixed_batches_cycle_every_request_shape() {
        let patterns: Vec<Vec<exma_genome::Base>> = vec![Vec::new(); 8];
        let batch = mixed_batch(&patterns);
        assert_eq!(batch.request(0), QueryRequest::Count);
        assert_eq!(batch.request(1), QueryRequest::locate());
        assert_eq!(
            batch.request(2),
            QueryRequest::locate_capped(MIXED_MAX_HITS)
        );
        assert_eq!(batch.request(3), QueryRequest::Interval);
        assert_eq!(batch.request(4), QueryRequest::Count);
    }

    #[test]
    fn sweep_builders_cover_the_advertised_rates() {
        let rates: Vec<usize> = sweep_builders().iter().map(|&(_, _, r)| r).collect();
        assert_eq!(rates, SWEEP_RATES);
        let sa_rates: Vec<usize> = sa_sweep_builders().iter().map(|&(_, _, r)| r).collect();
        assert_eq!(sa_rates, SA_SWEEP_RATES);
        assert!(sa_sweep_builders()
            .iter()
            .all(|&(_, m, _)| m == Measure::LocateOnly));
    }

    #[test]
    fn delta_sweep_crosses_widths_and_spacings() {
        let builders = delta_sweep_builders();
        // 1 flat baseline + {u16, u8} × 3 spacings.
        assert_eq!(builders.len(), 7);
        assert_eq!(builders[0].2, DeltaWidth::U32);
        let labels: Vec<String> = builders.iter().map(|(b, ..)| b.descriptor()).collect();
        assert!(labels.contains(&"lockstep_k4_locality_kocc640_d32".to_string()));
        assert!(labels.contains(&"lockstep_k4_locality_kocc640_sb2".to_string()));
        assert!(labels.contains(&"lockstep_k4_locality_kocc640_d8_sb64".to_string()));
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len(), "sweep labels must be unique");
    }

    #[test]
    fn bidir_presets_cover_every_layout_with_derived_labels() {
        let presets = bidir_preset_builders();
        let names: Vec<&str> = presets.iter().map(|(name, _)| *name).collect();
        assert_eq!(names, ["default", "compact", "fast"]);
        for (_, builder) in &presets {
            assert!(builder.is_bidirectional());
            assert_eq!(builder.step_width(), 4);
            assert!(
                builder.descriptor().ends_with("_bidir"),
                "{}",
                builder.descriptor()
            );
        }
        let labels: std::collections::HashSet<String> =
            presets.iter().map(|(_, b)| b.descriptor()).collect();
        assert_eq!(labels.len(), 3, "preset labels must be distinct");
    }

    #[test]
    fn heap_json_mirrors_the_breakdown_exactly() {
        let heap = HeapBreakdown {
            k_occ_checkpoints: 1,
            k_occ_deltas: 2,
            k_occ_codes: 3,
            one_step_occ: 4,
            sa_samples: 5,
            rank_bits: 6,
            other: 7,
        };
        let rendered = heap_json(&heap).to_string();
        assert!(rendered.contains("\"total\": 28"), "{rendered}");
        assert!(rendered.contains("\"k_occ_deltas\": 2"), "{rendered}");
        assert!(rendered.contains("\"other\": 7"), "{rendered}");
    }

    #[test]
    fn median_of_odd_reps_is_middle_observation() {
        let cell = OpTiming {
            times: vec![9.0, 1.0, 5.0],
            checksum: 7,
        };
        assert_eq!(cell.median_secs(), 5.0);
    }
}
