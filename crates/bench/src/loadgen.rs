//! `exma-loadgen` — an open-loop load generator for `exma-server`.
//!
//! The serving claim the server makes — continuous batching turns
//! trickles of small network submissions into engine-friendly merged
//! batches — is a claim about behavior *under an arrival process*, not
//! under a lockstep test. This binary measures it: requests are
//! scheduled by a seeded Poisson process at fixed target rates and
//! sent at their scheduled instants whether or not earlier responses
//! have returned (open loop, so a slow server cannot slow the clock
//! and hide its own queueing — the coordinated-omission trap).
//! Latency is measured from each request's *scheduled* arrival to its
//! response, so queueing delay is part of the number.
//!
//! Every RESULTS payload is byte-compared against a local oracle: the
//! generator rebuilds the identical genome and index from the same
//! `--profile`/`--len`/`--seed`/`--k` (synthesis is deterministic) and
//! encodes a direct [`Executor`] run of each request through the same
//! wire encoder. A server that answers from the wrong index, splits a
//! merged batch at the wrong offset, or reorders routes fails the run.
//!
//! STATS frames before and after each rate turn the server's counters
//! into per-rate deltas; `mean_coalesced_batch` (submissions per
//! engine run) is the continuous-batching figure of merit.
//!
//! Robustness knobs ride along: `--deadline-us` stamps every QUERY
//! with a protocol-v2 latency budget and reports the deadline-miss
//! (LATE) rate separately from the latency percentiles — under
//! overload the honest summary is "p99 of the answered plus the
//! fraction shed", not a percentile over survivors only. BUSY draws a
//! bounded retry with jittered exponential backoff. `--chaos` runs a
//! seeded [`FaultPlan`] sidecar that feeds the server torn, truncated,
//! stalled, and corrupted frames on sacrificial connections for the
//! whole measurement window; the measured connections must stay
//! byte-verified throughout.
//!
//! ```text
//! # self-hosted: spins up a server in-process on an ephemeral port
//! cargo run --release -p exma-bench --bin exma-loadgen
//!
//! # against a separately started server (must share profile/len/seed/k
//! # and run without a tighter --max-hits-ceiling than --locate-cap)
//! cargo run --release -p exma-server -- --profile toy --port 7878 &
//! cargo run --release -p exma-bench --bin exma-loadgen -- --addr 127.0.0.1:7878
//! ```

mod json;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use exma_engine::{EngineBuilder, Executor, QueryBatch, QueryOutput, QueryRequest};
use exma_genome::{
    Base, ErrorProfile, Genome, GenomeProfile, LongReadSimulator, SeededRng, ShortReadSimulator,
};
use exma_index::bidir::{decode_hit, is_palindromic, Strand};
use exma_server::wire::{self, Opcode, StatsSnapshot, HEADER_LEN};
use exma_server::{FaultPlan, Server, ServerConfig, ServerHandle};

use crate::json::Json;

const USAGE: &str = "\
exma-loadgen: open-loop load generator and verifier for exma-server

USAGE:
    cargo run --release -p exma-bench --bin exma-loadgen [-- OPTIONS]

OPTIONS:
    --addr HOST:PORT   target a running exma-server; it must have been
                       started with the same --profile/--len/--seed/--k
                       and no --max-hits-ceiling below --locate-cap
                       (default: self-host a server in-process)
    --profile NAME     reference profile: toy, human_rel, picea_rel,
                       pinus_rel (default: toy)
    --len N            override the profile's length in bases
    --seed N           genome synthesis seed (default: 42)
    --k N              step width of the index (default: 4)
    --rates LIST       target request rates in req/s, comma-separated
                       (default: 1000,4000)
    --requests N       requests per rate (default: 1000)
    --conns N          client connections (default: 4)
    --queries N        queries per request frame (default: 8)
    --locate-cap N     max_hits cap on every locate query (default: 16)
    --bidirectional    serve and verify a bidirectional (both-strand)
                       index: every 4th query is a strand-agnostic
                       SearchBoth over simulated short/long reads drawn
                       as sequenced from either strand (never
                       client-side reverse-complemented), the chaos
                       sidecar sabotages SearchBoth frames too, and the
                       JSON gains a strand_mix block; a --addr server
                       must also have been started --bidirectional
    --arrival-seed N   seed of the Poisson arrival process (default: 7)
    --deadline-us N    per-request latency budget stamped on every
                       QUERY frame; expired requests come back LATE
                       and count as deadline misses (default: 0 = none)
    --busy-retries N   retry a BUSY answer up to N times with jittered
                       exponential backoff (default: 3; 0 = give up)
    --chaos RATE       run a fault-injection sidecar for the whole
                       measurement window: sacrificial connections
                       send frames sabotaged with probability RATE
                       (torn/truncated/stalled/corrupted) while the
                       measured load must stay byte-verified
                       (default: 0 = off)
    --chaos-seed N     seed of the fault plan (default: 99)
    --linger-us N      self-hosted server's coalescing window (default:
                       1000; ignored with --addr)
    --queue-depth N    self-hosted server's admission queue (default:
                       1024; ignored with --addr)
    --no-verify        skip the byte-exact oracle comparison
    --out PATH         output JSON path (default: LOAD_exma.json)
    --help             print this help

Exits non-zero if any response diverges from the local oracle, any
ERROR frame arrives, or any request goes unanswered.";

struct Args {
    addr: Option<String>,
    profile: String,
    len: Option<usize>,
    seed: u64,
    k: usize,
    rates: Vec<f64>,
    requests: usize,
    conns: usize,
    queries: usize,
    locate_cap: u32,
    bidirectional: bool,
    arrival_seed: u64,
    deadline_us: u32,
    busy_retries: u32,
    chaos: f64,
    chaos_seed: u64,
    linger: Duration,
    queue_depth: usize,
    verify: bool,
    out: PathBuf,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut args = Args {
        addr: None,
        profile: "toy".to_string(),
        len: None,
        seed: 42,
        k: 4,
        rates: vec![1000.0, 4000.0],
        requests: 1000,
        conns: 4,
        queries: 8,
        locate_cap: 16,
        bidirectional: false,
        arrival_seed: 7,
        deadline_us: 0,
        busy_retries: 3,
        chaos: 0.0,
        chaos_seed: 99,
        linger: Duration::from_micros(1000),
        queue_depth: 1024,
        verify: true,
        out: PathBuf::from("LOAD_exma.json"),
    };
    let mut argv = argv.peekable();
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} requires a value"));
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--profile" => args.profile = value("--profile")?,
            "--len" => args.len = Some(parse_num(&value("--len")?)?),
            "--seed" => args.seed = parse_num(&value("--seed")?)?,
            "--k" => args.k = parse_num(&value("--k")?)?,
            "--rates" => {
                args.rates = value("--rates")?
                    .split(',')
                    .map(|part| {
                        part.trim()
                            .parse::<f64>()
                            .ok()
                            .filter(|&r| r.is_finite() && r > 0.0)
                            .ok_or_else(|| format!("bad rate '{part}'"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--requests" => args.requests = parse_num(&value("--requests")?)?,
            "--conns" => args.conns = parse_num(&value("--conns")?)?,
            "--queries" => args.queries = parse_num(&value("--queries")?)?,
            "--locate-cap" => args.locate_cap = parse_num(&value("--locate-cap")?)?,
            "--bidirectional" => args.bidirectional = true,
            "--arrival-seed" => args.arrival_seed = parse_num(&value("--arrival-seed")?)?,
            "--deadline-us" => args.deadline_us = parse_num(&value("--deadline-us")?)?,
            "--busy-retries" => args.busy_retries = parse_num(&value("--busy-retries")?)?,
            "--chaos" => {
                args.chaos = value("--chaos")?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or("--chaos needs a probability in [0, 1]")?;
            }
            "--chaos-seed" => args.chaos_seed = parse_num(&value("--chaos-seed")?)?,
            "--linger-us" => {
                args.linger = Duration::from_micros(parse_num(&value("--linger-us")?)?)
            }
            "--queue-depth" => args.queue_depth = parse_num(&value("--queue-depth")?)?,
            "--no-verify" => args.verify = false,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.rates.is_empty() {
        return Err("--rates needs at least one rate".to_string());
    }
    if args.requests == 0 || args.conns == 0 || args.queries == 0 {
        return Err("--requests, --conns and --queries must be positive".to_string());
    }
    Ok(Some(args))
}

fn parse_num<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("bad number '{raw}'"))
}

fn profile_for(name: &str, len: Option<usize>) -> Result<GenomeProfile, String> {
    let mut profile = match name {
        "toy" => GenomeProfile::toy(),
        "human_rel" => GenomeProfile::human_rel(),
        "picea_rel" => GenomeProfile::picea_rel(),
        "pinus_rel" => GenomeProfile::pinus_rel(),
        other => return Err(format!("unknown profile '{other}'")),
    };
    if let Some(len) = len {
        if len == 0 {
            return Err("--len must be positive".to_string());
        }
        profile.len = len;
    }
    Ok(profile)
}

/// One request of the workload: the pre-encoded QUERY frame and the
/// oracle's byte-exact RESULTS payload. Both are fixed before the
/// clock starts so the hot loop does no encoding.
struct Request {
    frame: Vec<u8>,
    expected: Option<Vec<u8>>,
}

/// The deterministic mixed-op batch of request `idx`: counts, capped
/// locates and intervals over hit-biased substring patterns plus
/// random (mostly-miss) ones. Locates are always capped — open-loop
/// response sizes must stay bounded regardless of pattern frequency.
///
/// With a read pool (`--bidirectional`) the op cycle widens to four:
/// every fourth query is a capped `SearchBoth` over a simulated read —
/// short or long, drawn as sequenced from either strand, sent without
/// any client-side reverse complementing. The cap keeps the
/// both-strand answers bounded just like the locates.
fn request_batch(
    genome: &Genome,
    reads: Option<&[Vec<Base>]>,
    idx: usize,
    queries: usize,
    locate_cap: u32,
) -> QueryBatch {
    let mut rng = SeededRng::new(0x10adu64 ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut batch = QueryBatch::new();
    for q in 0..queries {
        let cycle = if reads.is_some() { 4 } else { 3 };
        if (idx + q) % cycle == 3 {
            let pool = reads.expect("cycle 4 only with a read pool");
            let read = pool[rng.range(0, pool.len())].clone();
            batch.push(QueryRequest::search_both_capped(locate_cap), read);
            continue;
        }
        let len = rng.range(8, 28);
        let pattern: Vec<Base> = if rng.chance(0.7) {
            let start = rng.range(0, genome.len() - len + 1);
            genome.seq().slice(start, len)
        } else {
            (0..len).map(|_| rng.base()).collect()
        };
        match (idx + q) % cycle {
            0 => batch.push(QueryRequest::Count, pattern),
            1 => batch.push(QueryRequest::locate_capped(locate_cap), pattern),
            _ => batch.push(QueryRequest::Interval, pattern),
        }
    }
    batch
}

/// The `--bidirectional` pattern pool: error-free simulated reads —
/// Illumina-length shorts and a few ONT-style longs — whose 50/50
/// strand draw guarantees reverse-strand patterns in the workload.
/// Error-free so every read matches its template exactly and the
/// oracle's SearchBoth answers always contain the origin.
fn read_pool(genome: &Genome) -> Vec<Vec<Base>> {
    let short = ShortReadSimulator::new(36, ErrorProfile::error_free());
    let long = LongReadSimulator::new(150, 40, ErrorProfile::error_free());
    short
        .simulate(genome, 64, 0x5EAD)
        .into_iter()
        .chain(long.simulate(genome, 16, 0x10E6))
        .map(|read| read.bases.to_vec())
        .collect()
}

/// The strand composition of the workload's SearchBoth share, from the
/// oracle's own answers (zero hit counts under `--no-verify`): the
/// per-strand hit totals, the palindromic patterns the dedup rule
/// collapses to forward-only answers, and the answers the cap
/// truncated.
#[derive(Default)]
struct StrandMix {
    search_both_queries: u64,
    forward_hits: u64,
    reverse_hits: u64,
    truncated_answers: u64,
    palindromic_patterns: u64,
}

/// Builds every request up front: frames encoded, oracle answers
/// (optionally) computed through the same wire encoder the server
/// uses, the strand mix tallied from them. Request ids are the
/// request indices.
fn build_requests(
    genome: &Genome,
    reads: Option<&[Vec<Base>]>,
    oracle: Option<&dyn Executor>,
    args: &Args,
) -> (Vec<Request>, StrandMix) {
    let mut mix = StrandMix::default();
    let requests = (0..args.requests)
        .map(|idx| {
            let batch = request_batch(genome, reads, idx, args.queries, args.locate_cap);
            let mut payload = Vec::new();
            wire::encode_query_batch(&batch, &mut payload).expect("loadgen batches are encodable");
            let results = oracle.map(|exec| exec.run(&batch).0);
            for i in 0..batch.len() {
                if !matches!(batch.request(i), QueryRequest::SearchBoth { .. }) {
                    continue;
                }
                mix.search_both_queries += 1;
                mix.palindromic_patterns += u64::from(is_palindromic(batch.pattern(i)));
                if let Some(results) = &results {
                    for &hit in results.positions(i) {
                        match decode_hit(hit).1 {
                            Strand::Forward => mix.forward_hits += 1,
                            Strand::Reverse => mix.reverse_hits += 1,
                        }
                    }
                    if matches!(
                        results.output(i),
                        QueryOutput::BothLocated { truncated: true }
                    ) {
                        mix.truncated_answers += 1;
                    }
                }
            }
            let expected = results.map(|results| {
                let mut expected = Vec::new();
                wire::encode_results_range(&results, 0, results.len(), &mut expected);
                expected
            });
            Request {
                // A v2 QUERY frame; deadline 0 means no budget.
                frame: wire::query_frame(idx as u64, args.deadline_us, &payload),
                expected,
            }
        })
        .collect();
    (requests, mix)
}

/// Cumulative Poisson arrival offsets: `schedule[i]` is request `i`'s
/// intended send instant relative to the run start, exponential
/// inter-arrivals at `rate` per second.
fn arrival_schedule(requests: usize, rate: f64, seed: u64) -> Vec<Duration> {
    let mut rng = SeededRng::new(seed);
    let mut at = 0.0f64;
    (0..requests)
        .map(|_| {
            // f64() is in [0, 1); flip to (0, 1] so ln never sees zero.
            let dt = -(1.0 - rng.f64()).ln() / rate;
            at += dt;
            Duration::from_secs_f64(at)
        })
        .collect()
}

fn sleep_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        let Some(remaining) = deadline
            .checked_duration_since(now)
            .filter(|d| !d.is_zero())
        else {
            return;
        };
        thread::sleep(remaining);
    }
}

/// What one response turned out to be.
enum Outcome {
    /// RESULTS that matched the oracle (or went unchecked): latency
    /// from scheduled arrival to last payload byte.
    Ok(Duration),
    /// BUSY that stayed BUSY through every retry.
    Busy,
    /// A LATE frame: the server shed the request as past its deadline.
    /// Reported as a miss rate, never folded into the percentiles.
    Late,
    /// RESULTS that diverged from the oracle.
    Mismatch,
    /// An ERROR frame, an unanswered request, or a broken connection.
    Error,
}

/// Bounded jittered-exponential-backoff retry on BUSY.
#[derive(Clone, Copy)]
struct RetryPolicy {
    /// Retry attempts after the first BUSY; 0 gives up immediately.
    attempts: u32,
    /// Backoff before retry `n` is `base << n`, scaled by a uniform
    /// jitter in `[0.5, 1.5)` so synchronized clients desynchronize.
    base: Duration,
}

/// Everything measured at one target rate.
struct RateOutcome {
    target_rps: f64,
    offered_rps: f64,
    achieved_rps: f64,
    ok: usize,
    busy: usize,
    late: usize,
    mismatches: usize,
    errors: usize,
    /// BUSY retries sent across every connection.
    retries: u64,
    /// Sorted OK latencies in milliseconds.
    latencies_ms: Vec<f64>,
    before: StatsSnapshot,
    after: StatsSnapshot,
}

/// Runs one rate: `conns` connections interleave the request list
/// round-robin, each sending on schedule from its own thread while its
/// reader thread collects responses until every assigned id is
/// answered (or the 30 s read timeout calls the rest lost).
fn run_rate(
    addr: &str,
    requests: &[Request],
    schedule: &[Duration],
    conns: usize,
    target_rps: f64,
    retry: RetryPolicy,
    stats_conn: &mut ControlConn,
) -> RateOutcome {
    let before = stats_conn.snapshot();
    let start = Instant::now();
    let per_conn: Vec<(Vec<Outcome>, u64, Option<Instant>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let assigned: Vec<usize> = (c..requests.len()).step_by(conns).collect();
                    run_connection(addr, requests, schedule, &assigned, start, retry)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let after = stats_conn.snapshot();

    let mut ok = 0;
    let mut busy = 0;
    let mut late = 0;
    let mut mismatches = 0;
    let mut errors = 0;
    let mut retries = 0;
    let mut latencies_ms = Vec::new();
    let mut last_done = start;
    for (outcomes, conn_retries, conn_last) in per_conn {
        retries += conn_retries;
        if let Some(t) = conn_last {
            last_done = last_done.max(t);
        }
        for outcome in outcomes {
            match outcome {
                Outcome::Ok(latency) => {
                    ok += 1;
                    latencies_ms.push(latency.as_secs_f64() * 1e3);
                }
                Outcome::Busy => busy += 1,
                Outcome::Late => late += 1,
                Outcome::Mismatch => mismatches += 1,
                Outcome::Error => errors += 1,
            }
        }
    }
    latencies_ms.sort_by(f64::total_cmp);
    let wall = (last_done - start).as_secs_f64();
    RateOutcome {
        target_rps,
        offered_rps: requests.len() as f64 / schedule.last().expect("nonempty").as_secs_f64(),
        achieved_rps: if wall > 0.0 {
            (ok + busy + late) as f64 / wall
        } else {
            0.0
        },
        ok,
        busy,
        late,
        mismatches,
        errors,
        retries,
        latencies_ms,
        before,
        after,
    }
}

/// One connection's share of a rate run. Returns an outcome per
/// assigned request, the BUSY retries sent, and the instant the last
/// response landed.
fn run_connection(
    addr: &str,
    requests: &[Request],
    schedule: &[Duration],
    assigned: &[usize],
    start: Instant,
    retry: RetryPolicy,
) -> (Vec<Outcome>, u64, Option<Instant>) {
    let Ok(stream) = TcpStream::connect(addr) else {
        return (assigned.iter().map(|_| Outcome::Error).collect(), 0, None);
    };
    let Ok(read_half) = stream.try_clone() else {
        return (assigned.iter().map(|_| Outcome::Error).collect(), 0, None);
    };

    // The reader runs concurrently with the sender — open loop means
    // many requests can be in flight on this one connection.
    let expected = assigned.len();
    let reader = thread::spawn(move || read_responses(read_half, expected));

    let mut sender = stream;
    for &idx in assigned {
        sleep_until(start + schedule[idx]);
        if sender.write_all(&requests[idx].frame).is_err() {
            // The reader sees the broken stream too and returns; the
            // unsent requests score as unanswered below.
            break;
        }
    }
    let responses = reader.join().expect("reader thread");

    let mut last_done = None;
    let mut outcomes: Vec<Outcome> = assigned
        .iter()
        .map(|&idx| {
            let Some((opcode, payload, at)) = responses
                .iter()
                .find_map(|r| (r.request_id == idx as u64).then_some((r.opcode, &r.payload, r.at)))
            else {
                return Outcome::Error; // unanswered
            };
            last_done = Some(last_done.map_or(at, |t: Instant| t.max(at)));
            match opcode {
                Ok(Opcode::Results) => match &requests[idx].expected {
                    Some(expected) if payload != expected => Outcome::Mismatch,
                    _ => Outcome::Ok(at - (start + schedule[idx])),
                },
                Ok(Opcode::Busy) => Outcome::Busy,
                Ok(Opcode::Late) => Outcome::Late,
                _ => Outcome::Error,
            }
        })
        .collect();

    // BUSY retry pass, after the open-loop schedule completes so the
    // retries never perturb it: bounded attempts, jittered exponential
    // backoff, latency still measured from the original scheduled
    // arrival (the retry wait is part of the client's experience).
    let mut retries = 0;
    if retry.attempts > 0 {
        let mut rng = SeededRng::new(0xB05Fu64 ^ assigned.first().copied().unwrap_or(0) as u64);
        let _ = sender.set_read_timeout(Some(Duration::from_secs(5)));
        for (slot, &idx) in assigned.iter().enumerate() {
            if !matches!(outcomes[slot], Outcome::Busy) {
                continue;
            }
            for attempt in 0..retry.attempts {
                let jitter = 0.5 + rng.f64();
                thread::sleep(
                    Duration::from_secs_f64(retry.base.as_secs_f64() * jitter)
                        * 2u32.pow(attempt.min(16)),
                );
                retries += 1;
                if sender.write_all(&requests[idx].frame).is_err() {
                    outcomes[slot] = Outcome::Error;
                    break;
                }
                // Nothing else is in flight here, so the next frame is
                // this retry's answer.
                let Some(response) = read_responses(sender.try_clone().expect("clone"), 1).pop()
                else {
                    outcomes[slot] = Outcome::Error;
                    break;
                };
                debug_assert_eq!(response.request_id, idx as u64);
                outcomes[slot] = match response.opcode {
                    Ok(Opcode::Results) => match &requests[idx].expected {
                        Some(expected) if &response.payload != expected => Outcome::Mismatch,
                        _ => {
                            last_done = Some(
                                last_done.map_or(response.at, |t: Instant| t.max(response.at)),
                            );
                            Outcome::Ok(response.at - (start + schedule[idx]))
                        }
                    },
                    Ok(Opcode::Busy) => Outcome::Busy,
                    Ok(Opcode::Late) => Outcome::Late,
                    _ => Outcome::Error,
                };
                if !matches!(outcomes[slot], Outcome::Busy) {
                    break;
                }
            }
        }
    }
    (outcomes, retries, last_done)
}

/// One frame as the reader saw it.
struct Response {
    request_id: u64,
    opcode: Result<Opcode, wire::WireError>,
    payload: Vec<u8>,
    at: Instant,
}

/// Reads until `expected` frames arrive, the peer closes, or the
/// 30-second stall guard trips (a hung server must fail the run, not
/// wedge it).
fn read_responses(mut stream: TcpStream, expected: usize) -> Vec<Response> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut responses = Vec::with_capacity(expected);
    let mut header_bytes = [0u8; HEADER_LEN];
    while responses.len() < expected {
        if read_exact(&mut stream, &mut header_bytes).is_err() {
            break;
        }
        let Ok(header) = wire::decode_header(&header_bytes, usize::MAX) else {
            break;
        };
        let mut payload = vec![0u8; header.payload_len as usize];
        if read_exact(&mut stream, &mut payload).is_err() {
            break;
        }
        responses.push(Response {
            request_id: header.request_id,
            opcode: Opcode::from_byte(header.opcode),
            payload,
            at: Instant::now(),
        });
    }
    responses
}

fn read_exact(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The fault-injection sidecar: until `stop` flips, sacrificial
/// connections send workload frames sabotaged per a seeded
/// [`FaultPlan`] — torn prefixes then hangups, silent stalls, flipped
/// bytes. Nothing here is asserted or measured beyond the count of
/// frames thrown; the assertion is that the *measured* connections
/// stay byte-verified while this runs. Returns the frames thrown.
fn run_chaos(addr: &str, requests: &[Request], seed: u64, rate: f64, stop: &AtomicBool) -> u64 {
    let mut plan = FaultPlan::new(seed, rate);
    let mut stalled: Vec<TcpStream> = Vec::new();
    let mut thrown = 0u64;
    for idx in (0..requests.len()).cycle() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let frame = &requests[idx].frame;
        let fault = plan.decide(frame.len());
        let Ok(mut conn) = TcpStream::connect(addr) else {
            // Mid-drain or a refused connect: chaos just moves on.
            thread::sleep(Duration::from_millis(5));
            continue;
        };
        let _ = conn.write_all(&fault.wire_bytes(frame));
        thrown += 1;
        if fault.stalls() {
            // Park it half-sent; the server's idle reaper owns it now.
            // Cap the herd so a long run doesn't hoard sockets.
            if stalled.len() >= 32 {
                stalled.remove(0);
            }
            stalled.push(conn);
        } else if !fault.disconnects() {
            // Whatever the answer is — RESULTS to a different question,
            // ERROR, a hangup — drain a bounded amount and move on.
            let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
            let mut sink = [0u8; 4096];
            let _ = conn.read(&mut sink);
        }
        thread::sleep(Duration::from_millis(2));
    }
    thrown
}

/// A dedicated connection for STATS probes, kept apart from the load
/// connections so probes never queue behind load frames.
struct ControlConn {
    stream: TcpStream,
    next_id: u64,
}

impl ControlConn {
    fn connect(addr: &str) -> std::io::Result<ControlConn> {
        Ok(ControlConn {
            stream: TcpStream::connect(addr)?,
            next_id: 1 << 62,
        })
    }

    fn snapshot(&mut self) -> StatsSnapshot {
        let id = self.next_id;
        self.next_id += 1;
        self.stream
            .write_all(&wire::frame(Opcode::Stats, id, &[]))
            .expect("stats request");
        let mut header_bytes = [0u8; HEADER_LEN];
        read_exact(&mut self.stream, &mut header_bytes).expect("stats header");
        let header = wire::decode_header(&header_bytes, usize::MAX).expect("stats frame");
        assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::StatsReply));
        assert_eq!(header.request_id, id);
        let mut payload = vec![0u8; header.payload_len as usize];
        read_exact(&mut self.stream, &mut payload).expect("stats payload");
        wire::decode_stats(&payload).expect("stats decode")
    }
}

/// Nearest-rank percentile of an already-sorted sample; NaN (rendered
/// as JSON null) when the sample is empty.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = (q * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Submissions per engine run between two snapshots — the
/// continuous-batching figure of merit.
fn mean_coalesced(before: &StatsSnapshot, after: &StatsSnapshot) -> f64 {
    let batches = after.batches_run.saturating_sub(before.batches_run);
    let coalesced = after
        .submissions_coalesced
        .saturating_sub(before.submissions_coalesced);
    if batches == 0 {
        return f64::NAN;
    }
    coalesced as f64 / batches as f64
}

fn rate_entry(outcome: &RateOutcome) -> Json {
    let (before, after) = (&outcome.before, &outcome.after);
    let lat = &outcome.latencies_ms;
    let mean_ms = if lat.is_empty() {
        f64::NAN
    } else {
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    Json::obj()
        .field("target_rps", outcome.target_rps)
        .field("offered_rps", outcome.offered_rps)
        .field("achieved_rps", outcome.achieved_rps)
        .field(
            "requests",
            outcome.ok + outcome.busy + outcome.late + outcome.mismatches + outcome.errors,
        )
        .field("ok", outcome.ok)
        .field("busy", outcome.busy)
        .field("late", outcome.late)
        .field("mismatches", outcome.mismatches)
        .field("errors", outcome.errors)
        .field("busy_retries", outcome.retries)
        .field(
            // Misses over everything offered — separate from (and
            // alongside) percentiles that only cover the answered.
            "deadline_miss_rate",
            outcome.late as f64
                / (outcome.ok + outcome.busy + outcome.late + outcome.mismatches + outcome.errors)
                    .max(1) as f64,
        )
        .field(
            "latency_ms",
            Json::obj()
                .field("p50", percentile(lat, 0.50))
                .field("p99", percentile(lat, 0.99))
                .field("p999", percentile(lat, 0.999))
                .field("max", lat.last().copied().unwrap_or(f64::NAN))
                .field("mean", mean_ms),
        )
        .field(
            "stats_delta",
            Json::obj()
                .field(
                    "batches_run",
                    after.batches_run.saturating_sub(before.batches_run),
                )
                .field(
                    "submissions_coalesced",
                    after
                        .submissions_coalesced
                        .saturating_sub(before.submissions_coalesced),
                )
                .field("mean_coalesced_batch", mean_coalesced(before, after))
                .field("max_coalesced_seen", after.max_coalesced)
                .field(
                    "queries_executed",
                    after
                        .queries_executed
                        .saturating_sub(before.queries_executed),
                )
                .field(
                    "positions_returned",
                    after
                        .positions_returned
                        .saturating_sub(before.positions_returned),
                )
                .field(
                    "search_rounds",
                    after.search_rounds.saturating_sub(before.search_rounds),
                )
                .field(
                    "resolve_rounds",
                    after.resolve_rounds.saturating_sub(before.resolve_rounds),
                )
                .field(
                    "late_dropped",
                    after.late_dropped.saturating_sub(before.late_dropped),
                )
                .field(
                    "writer_shed",
                    after.writer_shed.saturating_sub(before.writer_shed),
                )
                .field(
                    "conns_reaped",
                    after.conns_reaped.saturating_sub(before.conns_reaped),
                )
                .field(
                    "goaway_sent",
                    after.goaway_sent.saturating_sub(before.goaway_sent),
                ),
        )
}

fn run(args: &Args) -> ExitCode {
    let profile = match profile_for(&args.profile, args.len) {
        Ok(profile) => profile,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "[loadgen] synthesizing {} ({} bp, seed {}) and building the k={}{} oracle...",
        profile.name,
        profile.len,
        args.seed,
        args.k,
        if args.bidirectional {
            " bidirectional"
        } else {
            ""
        }
    );
    let genome = Genome::synthesize(&profile, args.seed);
    let builder = EngineBuilder::new()
        .k(args.k)
        .bidirectional(args.bidirectional);
    let index = match builder.build_index(&genome.text_with_sentinel()) {
        Ok(index) => Arc::new(index),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let oracle = args
        .verify
        .then(|| builder.attach(&index).expect("oracle attach"));
    let reads = args.bidirectional.then(|| read_pool(&genome));
    let (requests, strand_mix) = build_requests(&genome, reads.as_deref(), oracle.as_deref(), args);

    // Self-host unless --addr points at a running server.
    let mut hosted: Option<(ServerHandle, thread::JoinHandle<std::io::Result<()>>)> = None;
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => {
            let config = ServerConfig {
                queue_depth: args.queue_depth,
                linger: args.linger,
                // Under chaos, stalled sacrificial connections must be
                // reaped within the run, not after a minute.
                idle_timeout: if args.chaos > 0.0 {
                    Some(Duration::from_secs(2))
                } else {
                    ServerConfig::default().idle_timeout
                },
                ..ServerConfig::default()
            };
            let server = match Server::bind("127.0.0.1:0", Arc::clone(&index), builder, config) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("error: cannot self-host: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let handle = server.handle().expect("local addr");
            let addr = handle.addr().to_string();
            hosted = Some((handle, thread::spawn(move || server.run())));
            eprintln!("[loadgen] self-hosted server on {addr}");
            addr
        }
    };

    let mut stats_conn = match ControlConn::connect(&addr) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let retry = RetryPolicy {
        attempts: args.busy_retries,
        base: Duration::from_micros(500),
    };
    let mut rate_entries = Vec::new();
    let mut failed = false;
    let first_before = stats_conn.snapshot();
    let stop_chaos = AtomicBool::new(false);
    let chaos_thrown = thread::scope(|scope| {
        // The sidecar spans every rate: the measured load below runs
        // against a server under continuous attack.
        let chaos = (args.chaos > 0.0).then(|| {
            let (addr, requests, stop) = (&addr, &requests, &stop_chaos);
            eprintln!(
                "[loadgen] chaos sidecar on: fault rate {} (seed {})",
                args.chaos, args.chaos_seed
            );
            scope.spawn(move || run_chaos(addr, requests, args.chaos_seed, args.chaos, stop))
        });
        for (ri, &rate) in args.rates.iter().enumerate() {
            let schedule = arrival_schedule(
                args.requests,
                rate,
                args.arrival_seed ^ (ri as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
            );
            eprintln!(
                "[loadgen] rate {rate} req/s: {} requests x {} queries over {} conns...",
                args.requests, args.queries, args.conns
            );
            let outcome = run_rate(
                &addr,
                &requests,
                &schedule,
                args.conns,
                rate,
                retry,
                &mut stats_conn,
            );
            eprintln!(
                "[loadgen]   ok {} busy {} late {} mismatch {} error {} | retries {} | p50 {:.2} ms p99 {:.2} ms p999 {:.2} ms | {:.0} req/s achieved | {:.2} subs/batch",
                outcome.ok,
                outcome.busy,
                outcome.late,
                outcome.mismatches,
                outcome.errors,
                outcome.retries,
                percentile(&outcome.latencies_ms, 0.50),
                percentile(&outcome.latencies_ms, 0.99),
                percentile(&outcome.latencies_ms, 0.999),
                outcome.achieved_rps,
                mean_coalesced(&outcome.before, &outcome.after),
            );
            failed |= outcome.mismatches > 0 || outcome.errors > 0;
            rate_entries.push(rate_entry(&outcome));
        }
        stop_chaos.store(true, Ordering::Relaxed);
        chaos.map(|h| h.join().expect("chaos thread"))
    });
    if let Some(thrown) = chaos_thrown {
        eprintln!("[loadgen] chaos sidecar threw {thrown} sabotaged frames");
    }
    let last_after = stats_conn.snapshot();

    let mut doc = Json::obj()
        .field("schema_version", 8u64)
        .field("mode", "loadgen")
        .field("profile", profile.name.as_str())
        .field("genome_len", genome.len())
        .field("seed", args.seed)
        .field("k", args.k)
        .field("bidirectional", args.bidirectional)
        .field(
            "server",
            if args.addr.is_some() {
                addr.as_str()
            } else {
                "self-hosted"
            },
        )
        .field("connections", args.conns)
        .field("requests_per_rate", args.requests)
        .field("queries_per_request", args.queries)
        .field("locate_cap", args.locate_cap as u64)
        .field("arrival_seed", args.arrival_seed)
        .field("deadline_us", args.deadline_us as u64)
        .field("busy_retries", args.busy_retries as u64)
        .field("chaos_rate", args.chaos)
        .field("chaos_frames", chaos_thrown.unwrap_or(0))
        .field("verified_against_oracle", args.verify && !failed)
        .field(
            "mean_coalesced_batch",
            mean_coalesced(&first_before, &last_after),
        );
    if args.bidirectional {
        doc = doc.field(
            "strand_mix",
            Json::obj()
                .field("search_both_queries", strand_mix.search_both_queries)
                .field("forward_hits", strand_mix.forward_hits)
                .field("reverse_hits", strand_mix.reverse_hits)
                .field("truncated_answers", strand_mix.truncated_answers)
                .field("palindromic_patterns", strand_mix.palindromic_patterns),
        );
    }
    let doc = doc.field("rates", rate_entries);
    let rendered = format!("{doc}\n");
    if let Err(err) = std::fs::write(&args.out, rendered) {
        eprintln!("failed to write {}: {err}", args.out.display());
        return ExitCode::from(2);
    }
    eprintln!("[loadgen] wrote {}", args.out.display());

    if let Some((handle, thread)) = hosted {
        // The drain no longer needs clients gone first (the server
        // force-closes and joins them), but closing our control
        // connection is still the polite order.
        drop(stats_conn);
        handle.shutdown();
        if thread.join().expect("server thread").is_err() {
            failed = true;
        }
    }
    if failed {
        eprintln!("loadgen FAILED: mismatches or errors above");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(Some(args)) => run(&args),
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_default_and_parse() {
        let args = parse_args(Vec::<String>::new().into_iter())
            .unwrap()
            .unwrap();
        assert!(args.addr.is_none());
        assert!(args.verify);
        assert_eq!(args.rates, vec![1000.0, 4000.0]);
        assert_eq!(args.requests, 1000);
        assert_eq!(args.out, PathBuf::from("LOAD_exma.json"));

        let argv = [
            "--addr",
            "127.0.0.1:7878",
            "--rates",
            "500,2500.5",
            "--requests",
            "64",
            "--conns",
            "2",
            "--queries",
            "5",
            "--locate-cap",
            "9",
            "--bidirectional",
            "--deadline-us",
            "4000",
            "--busy-retries",
            "5",
            "--chaos",
            "0.25",
            "--chaos-seed",
            "11",
            "--no-verify",
            "--out",
            "/tmp/l.json",
        ];
        let args = parse_args(argv.iter().map(|s| s.to_string()))
            .unwrap()
            .unwrap();
        assert_eq!(args.addr.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(args.rates, vec![500.0, 2500.5]);
        assert_eq!(args.requests, 64);
        assert_eq!(args.conns, 2);
        assert_eq!(args.queries, 5);
        assert_eq!(args.locate_cap, 9);
        assert!(args.bidirectional);
        assert_eq!(args.deadline_us, 4000);
        assert_eq!(args.busy_retries, 5);
        assert_eq!(args.chaos, 0.25);
        assert_eq!(args.chaos_seed, 11);
        assert!(!args.verify);
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse_args(["--frobnicate".to_string()].into_iter()).is_err());
        assert!(parse_args(["--rates".to_string(), "0".to_string()].into_iter()).is_err());
        assert!(parse_args(["--rates".to_string(), "x".to_string()].into_iter()).is_err());
        assert!(parse_args(["--requests".to_string(), "0".to_string()].into_iter()).is_err());
        assert!(parse_args(["--chaos".to_string(), "1.5".to_string()].into_iter()).is_err());
        assert!(parse_args(["--chaos".to_string(), "-0.1".to_string()].into_iter()).is_err());
        assert!(parse_args(["--help".to_string()].into_iter())
            .unwrap()
            .is_none());
    }

    #[test]
    fn arrival_schedule_is_monotonic_and_near_rate() {
        let schedule = arrival_schedule(4000, 1000.0, 7);
        assert!(schedule.windows(2).all(|w| w[0] <= w[1]));
        // 4000 arrivals at 1000/s should span ~4 s; the Poisson spread
        // at n = 4000 stays well within +-20%.
        let span = schedule.last().unwrap().as_secs_f64();
        assert!((3.2..=4.8).contains(&span), "span {span}");
        // Determinism: the same seed replays the same process.
        assert_eq!(schedule, arrival_schedule(4000, 1000.0, 7));
        assert_ne!(schedule, arrival_schedule(4000, 1000.0, 8));
    }

    #[test]
    fn request_batches_are_deterministic_and_mixed() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
        let a = request_batch(&genome, None, 3, 9, 16);
        let b = request_batch(&genome, None, 3, 9, 16);
        assert_eq!(a.len(), 9);
        for q in 0..a.len() {
            assert_eq!(a.request(q), b.request(q));
            assert_eq!(a.pattern(q), b.pattern(q));
        }
        // Kind cycle is offset by the request index.
        assert_eq!(a.request(0), QueryRequest::Count);
        assert_eq!(a.request(1), QueryRequest::locate_capped(16));
        assert_eq!(a.request(2), QueryRequest::Interval);
        assert_ne!(
            request_batch(&genome, None, 4, 9, 16).request(0),
            QueryRequest::Count
        );
    }

    #[test]
    fn bidirectional_batches_interleave_search_both_reads() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
        let pool = read_pool(&genome);
        assert_eq!(pool.len(), 64 + 16);
        // The pool's 50/50 strand draw really does produce reverse
        // reads — the strand-agnostic contract has something to prove.
        let short = ShortReadSimulator::new(36, ErrorProfile::error_free());
        let origins = short.simulate(&genome, 64, 0x5EAD);
        assert!(origins.iter().any(|r| r.origin.reverse));
        assert!(origins.iter().any(|r| !r.origin.reverse));

        let a = request_batch(&genome, Some(&pool), 0, 8, 16);
        let b = request_batch(&genome, Some(&pool), 0, 8, 16);
        assert_eq!(a.len(), 8);
        for q in 0..a.len() {
            assert_eq!(a.request(q), b.request(q));
            assert_eq!(a.pattern(q), b.pattern(q));
        }
        // The widened cycle: every fourth query is a capped SearchBoth
        // whose pattern is one of the simulated reads, verbatim.
        for q in [3usize, 7] {
            assert_eq!(a.request(q), QueryRequest::search_both_capped(16));
            assert!(pool.iter().any(|read| read[..] == *a.pattern(q)));
        }
        assert_eq!(a.request(0), QueryRequest::Count);
        assert_eq!(a.request(1), QueryRequest::locate_capped(16));
        assert_eq!(a.request(2), QueryRequest::Interval);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.50), 51.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn coalescing_figure_divides_delta_submissions_by_delta_batches() {
        let before = StatsSnapshot {
            batches_run: 10,
            submissions_coalesced: 10,
            ..Default::default()
        };
        let after = StatsSnapshot {
            batches_run: 14,
            submissions_coalesced: 22,
            ..Default::default()
        };
        assert_eq!(mean_coalesced(&before, &after), 3.0);
        assert!(mean_coalesced(&before, &before).is_nan());
    }
}
