//! A minimal JSON value and serializer.
//!
//! The workspace builds fully offline with zero external dependencies, so
//! instead of `serde_json` the bench harness hand-rolls the tiny subset of
//! JSON it emits: objects, arrays, strings, booleans and numbers, pretty
//! printed deterministically (insertion order preserved) so diffs between
//! benchmark runs stay readable.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Bool(bool),
    /// Integers get their own variant so counters serialize without a
    /// floating-point detour (`12345`, never `12345.0`).
    Int(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder seeded empty; chain [`Json::field`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    fn write(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                // JSON has no NaN/Inf; the harness never produces them, but
                // degrade to null rather than emit invalid output.
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => {
                write!(f, "\"")?;
                for ch in s.chars() {
                    match ch {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        '\r' => write!(f, "\\r")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    return write!(f, "[]");
                }
                writeln!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    write!(f, "{pad}  ")?;
                    item.write(f, indent + 1)?;
                    writeln!(f, "{}", if i + 1 < items.len() { "," } else { "" })?;
                }
                write!(f, "{pad}]")
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    return write!(f, "{{}}");
                }
                writeln!(f, "{{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    write!(f, "{pad}  ")?;
                    Json::Str(key.clone()).write(f, indent + 1)?;
                    write!(f, ": ")?;
                    value.write(f, indent + 1)?;
                    writeln!(f, "{}", if i + 1 < fields.len() { "," } else { "" })?;
                }
                write!(f, "{pad}}}")
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, 0)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Int(42).to_string(), "42");
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(
            Json::Str("a\"b\\c\n".into()).to_string(),
            "\"a\\\"b\\\\c\\n\""
        );
    }

    #[test]
    fn nested_structure_is_valid_and_ordered() {
        let doc = Json::obj()
            .field("mode", "smoke")
            .field("n", 3u64)
            .field("items", vec![Json::Int(1), Json::obj().field("x", 2u64)]);
        let text = doc.to_string();
        assert!(text.starts_with("{\n  \"mode\": \"smoke\""));
        assert!(text.contains("\"items\": [\n    1,\n    {\n      \"x\": 2\n    }\n  ]"));
        // Balanced braces/brackets (a cheap well-formedness check without a
        // parser dependency).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                text.matches(open).count(),
                text.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Arr(Vec::new()).to_string(), "[]");
        assert_eq!(Json::obj().to_string(), "{}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }
}
