//! The engines under measurement, behind one uniform face.
//!
//! The query paths compete on identical inputs: the sequential 1-step
//! baseline (`FmIndex`), the sequential k-step index (k ∈ {2, 4}), the
//! batched lockstep engine, its interval-sorted and sorted+prefetching
//! schedules, and the multi-threaded sharded engine at several thread
//! counts. The `locate_*` entries isolate the locate pipeline: identical
//! k = 4 searches, differing only in how interval rows resolve (serial
//! per-row walks vs the lockstep batch resolver, plain / sorted+prefetch
//! / sharded) — so they are measured on the `locate` op alone. Every
//! entry past the k-step ones *shares* its index with the matching
//! k-step entry — scheduling, threading and resolution, not the data
//! structure, are what they isolate — so build time and heap bytes are
//! reported from the shared index.

use std::hint::black_box;
use std::time::Instant;

use exma_engine::{BatchConfig, BatchEngine, ShardedEngine};
use exma_genome::{Base, Symbol};
use exma_index::{FmIndex, KStepBuildConfig, KStepFmIndex, ResolveConfig};

/// One genome's worth of built indexes, shared across engine entries.
pub struct EngineSet {
    pub one: FmIndex,
    pub k2: KStepFmIndex,
    pub k4: KStepFmIndex,
    /// Wall-clock build seconds for `one`, `k2`, `k4` respectively.
    pub build_secs: [f64; 3],
}

impl EngineSet {
    /// Builds all three indexes from one sentinel-terminated text, timing
    /// each build (suffix-array construction included — each engine pays
    /// its full cost from raw text).
    pub fn build(text: &[Symbol]) -> EngineSet {
        let t0 = Instant::now();
        let one = FmIndex::from_text(text);
        let t1 = Instant::now();
        let k2 = KStepFmIndex::from_text(text, 2);
        let t2 = Instant::now();
        let k4 = KStepFmIndex::from_text(text, 4);
        let t3 = Instant::now();
        EngineSet {
            one,
            k2,
            k4,
            build_secs: [
                (t1 - t0).as_secs_f64(),
                (t2 - t1).as_secs_f64(),
                (t3 - t2).as_secs_f64(),
            ],
        }
    }

    /// Every engine entry measured against this set. The first entry is
    /// always the 1-step oracle; `thread_counts` adds one sharded entry
    /// (k = 4, locality schedule) per count.
    pub fn engines(&self, thread_counts: &[usize]) -> Vec<Engine<'_>> {
        let share_k2 = (self.build_secs[1], self.k2.heap_bytes(), Some("kstep_k2"));
        let share_k4 = (self.build_secs[2], self.k4.heap_bytes(), Some("kstep_k4"));
        let mut engines = vec![
            Engine {
                label: "1step".to_string(),
                k: 1,
                kind: Kind::OneStep(&self.one),
                build_secs: self.build_secs[0],
                heap_bytes: self.one.heap_bytes(),
                shares_index_with: None,
                threads: None,
                measure: Measure::CountAndLocate,
            },
            Engine {
                label: "kstep_k2".to_string(),
                k: 2,
                kind: Kind::KStep(&self.k2),
                build_secs: self.build_secs[1],
                heap_bytes: self.k2.heap_bytes(),
                shares_index_with: None,
                threads: None,
                measure: Measure::CountAndLocate,
            },
            Engine {
                label: "kstep_k4".to_string(),
                k: 4,
                kind: Kind::KStep(&self.k4),
                build_secs: self.build_secs[2],
                heap_bytes: self.k4.heap_bytes(),
                shares_index_with: None,
                threads: None,
                measure: Measure::CountAndLocate,
            },
            Engine {
                label: "batched_k2".to_string(),
                k: 2,
                kind: Kind::Batched(&self.k2, BatchConfig::default()),
                build_secs: share_k2.0,
                heap_bytes: share_k2.1,
                shares_index_with: share_k2.2,
                threads: None,
                measure: Measure::CountAndLocate,
            },
            Engine {
                label: "batched_k4".to_string(),
                k: 4,
                kind: Kind::Batched(&self.k4, BatchConfig::default()),
                build_secs: share_k4.0,
                heap_bytes: share_k4.1,
                shares_index_with: share_k4.2,
                threads: None,
                measure: Measure::CountAndLocate,
            },
            Engine {
                label: "batched_sorted_k4".to_string(),
                k: 4,
                kind: Kind::Batched(&self.k4, BatchConfig::sorted()),
                build_secs: share_k4.0,
                heap_bytes: share_k4.1,
                shares_index_with: share_k4.2,
                threads: None,
                measure: Measure::CountAndLocate,
            },
            Engine {
                label: "batched_prefetch_k4".to_string(),
                k: 4,
                kind: Kind::Batched(&self.k4, BatchConfig::locality()),
                build_secs: share_k4.0,
                heap_bytes: share_k4.1,
                shares_index_with: share_k4.2,
                threads: None,
                measure: Measure::CountAndLocate,
            },
        ];
        for &threads in thread_counts {
            engines.push(Engine {
                label: format!("sharded_k4_t{threads}"),
                k: 4,
                kind: Kind::Sharded(&self.k4, threads),
                build_secs: share_k4.0,
                heap_bytes: share_k4.1,
                shares_index_with: share_k4.2,
                threads: Some(threads),
                measure: Measure::CountAndLocate,
            });
        }
        // The locate pipeline variants: identical k = 4 locality searches,
        // only the interval-row resolution differs.
        fn locate<'a>(
            label: &str,
            kind: Kind<'a>,
            threads: Option<usize>,
            share: (f64, usize, Option<&'static str>),
        ) -> Engine<'a> {
            Engine {
                label: label.to_string(),
                k: 4,
                kind,
                build_secs: share.0,
                heap_bytes: share.1,
                shares_index_with: share.2,
                threads,
                measure: Measure::LocateOnly,
            }
        }
        engines.push(locate(
            "locate_plain",
            Kind::LocatePerRow(&self.k4),
            None,
            share_k4,
        ));
        engines.push(locate(
            "locate_batched_k4",
            Kind::LocateResolve(&self.k4, ResolveConfig::default()),
            None,
            share_k4,
        ));
        engines.push(locate(
            "locate_sorted_prefetch_k4",
            Kind::LocateResolve(&self.k4, ResolveConfig::locality()),
            None,
            share_k4,
        ));
        for &threads in thread_counts {
            engines.push(locate(
                &format!("locate_sharded_k4_t{threads}"),
                Kind::LocateSharded(&self.k4, threads),
                Some(threads),
                share_k4,
            ));
        }
        engines
    }
}

/// A k = 4 index built at a swept `k_occ_sample_rate`, measured through
/// the sorted+prefetching batch schedule (the headline engine).
pub struct SweepPoint {
    pub index: KStepFmIndex,
    pub build_secs: f64,
}

impl SweepPoint {
    /// Builds the k = 4 index with everything default except the k-mer
    /// checkpoint spacing — the paper's central memory/latency knob.
    pub fn build(text: &[Symbol], k_occ_sample_rate: usize) -> SweepPoint {
        let config = KStepBuildConfig {
            k_occ_sample_rate,
            ..KStepBuildConfig::for_k(4)
        };
        let start = Instant::now();
        let index = KStepFmIndex::from_text_with_config(text, config);
        SweepPoint {
            index,
            build_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// The measured engine entry for this sweep point.
    pub fn engine(&self) -> Engine<'_> {
        Engine {
            label: "batched_prefetch_k4".to_string(),
            k: 4,
            kind: Kind::Batched(&self.index, BatchConfig::locality()),
            build_secs: self.build_secs,
            heap_bytes: self.index.heap_bytes(),
            shares_index_with: None,
            threads: None,
            measure: Measure::CountAndLocate,
        }
    }
}

/// A k = 4 index built at a swept `sa_sample_rate`, measured through the
/// sorted+prefetching locate resolver (the headline locate engine) — the
/// locate-latency / heap trade-off the sampled suffix array controls.
pub struct SaSweepPoint {
    pub index: KStepFmIndex,
    pub build_secs: f64,
    pub sa_sample_rate: usize,
}

impl SaSweepPoint {
    /// Builds the k = 4 index with everything default except the SA
    /// sampling rate: coarser rates shrink the sample vector but lengthen
    /// every resolver cursor's LF-walk.
    pub fn build(text: &[Symbol], sa_sample_rate: usize) -> SaSweepPoint {
        let config = KStepBuildConfig {
            sa_sample_rate,
            ..KStepBuildConfig::for_k(4)
        };
        let start = Instant::now();
        let index = KStepFmIndex::from_text_with_config(text, config);
        SaSweepPoint {
            index,
            build_secs: start.elapsed().as_secs_f64(),
            sa_sample_rate,
        }
    }

    /// The measured engine entry for this sweep point (locate only — the
    /// SA rate does not touch the count path).
    pub fn engine(&self) -> Engine<'_> {
        Engine {
            label: "locate_sorted_prefetch_k4".to_string(),
            k: 4,
            kind: Kind::LocateResolve(&self.index, ResolveConfig::locality()),
            build_secs: self.build_secs,
            heap_bytes: self.index.heap_bytes(),
            shares_index_with: None,
            threads: None,
            measure: Measure::LocateOnly,
        }
    }
}

enum Kind<'a> {
    OneStep(&'a FmIndex),
    KStep(&'a KStepFmIndex),
    Batched(&'a KStepFmIndex, BatchConfig),
    Sharded(&'a KStepFmIndex, usize),
    /// Locality search, serial per-row interval resolution — the locate
    /// pipeline's measured baseline.
    LocatePerRow(&'a KStepFmIndex),
    /// Locality search, lockstep batch resolver at the given schedule.
    LocateResolve(&'a KStepFmIndex, ResolveConfig),
    /// Sharded `run_locate`: per-shard resolver worklists on N threads.
    LocateSharded(&'a KStepFmIndex, usize),
}

impl Kind<'_> {
    /// The locality-scheduled batch engine the locate variants search
    /// with, resolver schedule swapped per variant.
    fn locate_engine<'a>(fm: &'a KStepFmIndex, resolve: ResolveConfig) -> BatchEngine<'a> {
        BatchEngine::with_config(
            fm,
            BatchConfig {
                resolve,
                ..BatchConfig::locality()
            },
        )
    }
}

/// Which ops an engine entry is timed on. Locate pipeline variants share
/// their `count` path with `batched_prefetch_k4`, so re-timing it would
/// only pad the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    CountAndLocate,
    LocateOnly,
}

impl Measure {
    /// Whether op `op` (0 = count, 1 = locate) is timed for this entry.
    pub fn includes(self, op: usize) -> bool {
        match self {
            Measure::CountAndLocate => true,
            Measure::LocateOnly => op == 1,
        }
    }
}

/// One measured engine entry.
pub struct Engine<'a> {
    pub label: String,
    pub k: usize,
    kind: Kind<'a>,
    pub build_secs: f64,
    pub heap_bytes: usize,
    pub shares_index_with: Option<&'static str>,
    /// Worker threads for sharded entries, `None` for single-threaded.
    pub threads: Option<usize>,
    /// Ops this entry is timed on (all entries still *verify* both ops).
    pub measure: Measure,
}

impl Engine<'_> {
    /// Occurrence counts for every pattern, through this engine's own
    /// query path.
    pub fn count_all(&self, patterns: &[Vec<Base>]) -> Vec<usize> {
        match self.kind {
            Kind::OneStep(fm) => patterns.iter().map(|p| fm.count(p)).collect(),
            Kind::KStep(fm) => patterns.iter().map(|p| fm.count(p)).collect(),
            Kind::Batched(fm, config) => BatchEngine::with_config(fm, config).count_batch(patterns),
            Kind::Sharded(fm, threads) => ShardedEngine::new(fm, threads).count_batch(patterns),
            // The locate variants share the locality count path; they are
            // only ever timed on locate, but verification counts them too.
            Kind::LocatePerRow(fm) | Kind::LocateSharded(fm, _) => {
                BatchEngine::with_config(fm, BatchConfig::locality()).count_batch(patterns)
            }
            Kind::LocateResolve(fm, resolve) => {
                Kind::locate_engine(fm, resolve).count_batch(patterns)
            }
        }
    }

    /// Sorted occurrence positions for every pattern. Sequential engines
    /// recycle one buffer through `locate_into`; batched and sharded
    /// engines resolve their intervals after the lockstep search.
    pub fn locate_all(&self, patterns: &[Vec<Base>]) -> Vec<Vec<u32>> {
        let sequential = |fm: &KStepFmIndex| {
            let mut buf = Vec::new();
            patterns
                .iter()
                .map(|p| {
                    fm.locate_into(p, &mut buf);
                    buf.clone()
                })
                .collect()
        };
        match self.kind {
            Kind::OneStep(fm) => {
                let mut buf = Vec::new();
                patterns
                    .iter()
                    .map(|p| {
                        fm.locate_into(p, &mut buf);
                        buf.clone()
                    })
                    .collect()
            }
            Kind::KStep(fm) => sequential(fm),
            Kind::Batched(fm, config) => {
                BatchEngine::with_config(fm, config).locate_batch(patterns)
            }
            Kind::Sharded(fm, threads) => ShardedEngine::new(fm, threads).locate_batch(patterns),
            Kind::LocatePerRow(fm) => {
                BatchEngine::with_config(fm, BatchConfig::locality()).locate_batch_per_row(patterns)
            }
            Kind::LocateResolve(fm, resolve) => Kind::locate_engine(fm, resolve)
                .run_locate(patterns)
                .0
                .into_vecs(),
            Kind::LocateSharded(fm, threads) => ShardedEngine::new(fm, threads)
                .run_locate(patterns)
                .0
                .into_vecs(),
        }
    }

    /// Checksummed count sweep for timing (results folded so the optimizer
    /// cannot discard the work).
    pub fn count_checksum(&self, patterns: &[Vec<Base>]) -> u64 {
        let fold = |counts: Vec<usize>| counts.iter().map(|&c| c as u64).sum();
        match self.kind {
            Kind::OneStep(fm) => patterns
                .iter()
                .map(|p| black_box(fm.count(black_box(p))) as u64)
                .sum(),
            Kind::KStep(fm) => patterns
                .iter()
                .map(|p| black_box(fm.count(black_box(p))) as u64)
                .sum(),
            Kind::Batched(fm, config) => {
                fold(BatchEngine::with_config(fm, config).count_batch(black_box(patterns)))
            }
            Kind::Sharded(fm, threads) => {
                fold(ShardedEngine::new(fm, threads).count_batch(black_box(patterns)))
            }
            // Never timed on count (Measure::LocateOnly), but kept total
            // so the uniform face stays uniform.
            Kind::LocatePerRow(_) | Kind::LocateResolve(..) | Kind::LocateSharded(..) => {
                fold(self.count_all(black_box(patterns)))
            }
        }
    }

    /// Checksummed locate sweep for timing.
    pub fn locate_checksum(&self, patterns: &[Vec<Base>]) -> u64 {
        let fold = |positions: &[u32]| -> u64 {
            positions.iter().map(|&p| p as u64).sum::<u64>() + positions.len() as u64
        };
        let fold_all =
            |located: Vec<Vec<u32>>| located.iter().map(|positions| fold(positions)).sum();
        match self.kind {
            Kind::OneStep(fm) => {
                let mut buf = Vec::new();
                patterns
                    .iter()
                    .map(|p| {
                        fm.locate_into(black_box(p), &mut buf);
                        fold(black_box(&buf))
                    })
                    .sum()
            }
            Kind::KStep(fm) => {
                let mut buf = Vec::new();
                patterns
                    .iter()
                    .map(|p| {
                        fm.locate_into(black_box(p), &mut buf);
                        fold(black_box(&buf))
                    })
                    .sum()
            }
            Kind::Batched(fm, config) => {
                let (results, _) =
                    BatchEngine::with_config(fm, config).run_locate(black_box(patterns));
                fold(black_box(results.all_positions()))
            }
            Kind::Sharded(fm, threads) => {
                let (results, _) = ShardedEngine::new(fm, threads).run_locate(black_box(patterns));
                fold(black_box(results.all_positions()))
            }
            Kind::LocatePerRow(fm) => fold_all(
                BatchEngine::with_config(fm, BatchConfig::locality())
                    .locate_batch_per_row(black_box(patterns)),
            ),
            Kind::LocateResolve(fm, resolve) => {
                let (results, _) = Kind::locate_engine(fm, resolve).run_locate(black_box(patterns));
                fold(black_box(results.all_positions()))
            }
            Kind::LocateSharded(fm, threads) => {
                let (results, _) = ShardedEngine::new(fm, threads).run_locate(black_box(patterns));
                fold(black_box(results.all_positions()))
            }
        }
    }

    /// `BatchStats.steps` of a batched count over `patterns`, for the
    /// harness's scheduling sanity gate. `None` for non-batched engines.
    pub fn batch_steps(&self, patterns: &[Vec<Base>]) -> Option<usize> {
        match self.kind {
            Kind::Batched(fm, config) => Some(
                BatchEngine::with_config(fm, config)
                    .search_batch_with_stats(patterns)
                    .1
                    .steps,
            ),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::{Genome, GenomeProfile};

    #[test]
    fn all_engines_agree_on_a_toy_genome() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
        let set = EngineSet::build(&genome.text_with_sentinel());
        let patterns: Vec<Vec<Base>> = (0..40)
            .map(|i| genome.seq().slice(i * 37, 9 + i % 13))
            .collect();
        let engines = set.engines(&[1, 2, 4]);
        // 7 count engines + 3 sharded + 3 locate variants + 3 sharded
        // locate variants.
        assert_eq!(engines.len(), 16);
        assert_eq!(
            engines
                .iter()
                .filter(|e| e.measure == Measure::LocateOnly)
                .count(),
            6
        );
        let oracle_counts = engines[0].count_all(&patterns);
        let oracle_locs = engines[0].locate_all(&patterns);
        for engine in &engines[1..] {
            assert_eq!(
                engine.count_all(&patterns),
                oracle_counts,
                "{}",
                engine.label
            );
            assert_eq!(
                engine.locate_all(&patterns),
                oracle_locs,
                "{}",
                engine.label
            );
        }
    }

    #[test]
    fn checksums_are_consistent_across_engines() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 7);
        let set = EngineSet::build(&genome.text_with_sentinel());
        let patterns: Vec<Vec<Base>> = (0..25).map(|i| genome.seq().slice(i * 11, 14)).collect();
        let engines = set.engines(&[2]);
        let count_sum = engines[0].count_checksum(&patterns);
        let locate_sum = engines[0].locate_checksum(&patterns);
        for engine in &engines[1..] {
            assert_eq!(
                engine.count_checksum(&patterns),
                count_sum,
                "{}",
                engine.label
            );
            assert_eq!(
                engine.locate_checksum(&patterns),
                locate_sum,
                "{}",
                engine.label
            );
        }
    }

    #[test]
    fn sa_sweep_points_agree_with_the_oracle_and_shrink_with_rate() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 13);
        let text = genome.text_with_sentinel();
        let one = FmIndex::from_text(&text);
        let patterns: Vec<Vec<Base>> = (0..30).map(|i| genome.seq().slice(i * 19, 11)).collect();
        let expected: Vec<Vec<u32>> = patterns.iter().map(|p| one.locate(p)).collect();
        let fine = SaSweepPoint::build(&text, 8);
        let coarse = SaSweepPoint::build(&text, 64);
        assert_eq!(fine.engine().locate_all(&patterns), expected);
        assert_eq!(coarse.engine().locate_all(&patterns), expected);
        assert!(coarse.engine().heap_bytes < fine.engine().heap_bytes);
        assert!(!fine.engine().measure.includes(0));
        assert!(fine.engine().measure.includes(1));
    }

    #[test]
    fn sweep_points_agree_with_the_oracle_and_shrink_with_rate() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 11);
        let text = genome.text_with_sentinel();
        let one = FmIndex::from_text(&text);
        let patterns: Vec<Vec<Base>> = (0..30).map(|i| genome.seq().slice(i * 23, 12)).collect();
        let expected: Vec<usize> = patterns.iter().map(|p| one.count(p)).collect();
        let fine = SweepPoint::build(&text, 64);
        let coarse = SweepPoint::build(&text, 1024);
        assert_eq!(fine.engine().count_all(&patterns), expected);
        assert_eq!(coarse.engine().count_all(&patterns), expected);
        assert!(coarse.engine().heap_bytes < fine.engine().heap_bytes);
    }
}
