//! The engines under measurement, enumerated — not hand-written.
//!
//! PR 2–4 named every (operation × schedule × threads) combination as
//! its own variant; this module replaces that list with a **generic
//! enumeration over [`EngineBuilder`] configurations**: each variant is
//! a builder plus a measurement policy, its label *derived* from the
//! builder ([`EngineBuilder::descriptor`]), and its executor attached
//! through the same builder — one uniform driver for the sequential
//! baselines, every lockstep schedule, every thread count, and both
//! sample-rate sweeps. Adding an engine knob now means adding a builder
//! method, not another hand-named entry (the SPEChpc harness lesson).
//!
//! Every variant past the sequential ones *shares* its index with the
//! matching sequential entry — scheduling, threading and resolution,
//! not the data structure, are what they isolate — so build time and
//! heap bytes are reported from the shared index. The first variant is
//! always the sequential 1-step oracle.

use std::collections::HashSet;
use std::time::Instant;

use exma_engine::{
    BatchConfig, EngineBuilder, EngineError, Executor, HeapBreakdown, IndexLayout, QueryResults,
};
use exma_genome::Symbol;
use exma_index::{FmIndex, KStepFmIndex, ResolveConfig};

/// Op indices of the measurement grid.
pub const OP_COUNT: usize = 0;
/// The all-locate op.
pub const OP_LOCATE: usize = 1;
/// The mixed count+locate(+capped+interval) scenario.
pub const OP_MIXED: usize = 2;
/// Ops per workload.
pub const OP_KINDS: usize = 3;
/// JSON names of the ops.
pub const OP_NAMES: [&str; OP_KINDS] = ["count", "locate", "mixed"];

/// Which ops a variant is timed on. Resolver-isolating variants share
/// their count path with the locality engine, so re-timing counts would
/// only pad the run; every variant still *verifies* every op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Timed on count, locate, and the mixed scenario.
    All,
    /// Timed on locate only.
    LocateOnly,
}

impl Measure {
    /// Whether op `op` is timed for this variant.
    pub fn includes(self, op: usize) -> bool {
        match self {
            Measure::All => true,
            Measure::LocateOnly => op == OP_LOCATE,
        }
    }
}

/// The builder-config enumeration the whole harness drives off.
/// Duplicate descriptors (e.g. `--threads 1` reproducing the serial
/// locality engine, which short-circuits to it anyway) are dropped,
/// keeping the first occurrence.
pub fn builder_configs(thread_counts: &[usize]) -> Vec<(EngineBuilder, Measure)> {
    let mut configs: Vec<(EngineBuilder, Measure)> = Vec::new();
    // Sequential baselines at every step width; seq_k1 is the oracle
    // and must stay first.
    for k in [1usize, 2, 4] {
        configs.push((EngineBuilder::new().k(k).sequential(), Measure::All));
    }
    // Plain lockstep at both widths isolates batching from scheduling.
    for k in [2usize, 4] {
        configs.push((
            EngineBuilder::new().k(k).schedule(BatchConfig::default()),
            Measure::All,
        ));
    }
    // Scheduling refinements at the headline width (locality is the
    // builder default).
    configs.push((
        EngineBuilder::new().schedule(BatchConfig::sorted()),
        Measure::All,
    ));
    configs.push((EngineBuilder::new(), Measure::All));
    // Sharding at every requested thread count.
    for &threads in thread_counts {
        configs.push((EngineBuilder::new().threads(threads), Measure::All));
    }
    // Resolver-schedule isolation: locality search, swapped resolver —
    // locate timing only (counts are identical to the locality entry).
    for resolve in [ResolveConfig::default(), ResolveConfig::sorted()] {
        configs.push((EngineBuilder::new().resolve(resolve), Measure::LocateOnly));
    }
    // The memory-layout presets at the headline width: the compact
    // two-level layout and the flat u32 baseline it is gated against.
    for layout in [IndexLayout::compact(), IndexLayout::fast()] {
        configs.push((EngineBuilder::new().layout(layout), Measure::All));
    }
    let mut seen = HashSet::new();
    configs.retain(|(builder, _)| seen.insert(builder.descriptor()));
    configs
}

/// One genome's worth of built indexes, shared across variants.
pub struct EngineSet {
    pub one: FmIndex,
    pub k2: KStepFmIndex,
    pub k4: KStepFmIndex,
    /// k = 4 rebuilt under [`IndexLayout::compact`] — the memory-first
    /// preset the heap gate measures.
    pub k4_compact: KStepFmIndex,
    /// k = 4 rebuilt under [`IndexLayout::fast`] — the flat-u32 baseline
    /// the gate compares against.
    pub k4_fast: KStepFmIndex,
    /// Wall-clock build seconds for `one`, `k2`, `k4`, `k4_compact`,
    /// `k4_fast` respectively.
    pub build_secs: [f64; 5],
}

impl EngineSet {
    /// Builds all five indexes from one sentinel-terminated text, timing
    /// each build (suffix-array construction included — each engine pays
    /// its full cost from raw text).
    pub fn build(text: &[Symbol]) -> EngineSet {
        fn timed(build: impl FnOnce() -> KStepFmIndex) -> (KStepFmIndex, f64) {
            let start = Instant::now();
            let index = build();
            (index, start.elapsed().as_secs_f64())
        }
        let t0 = Instant::now();
        let one = FmIndex::from_text(text);
        let one_secs = t0.elapsed().as_secs_f64();
        let (k2, k2_secs) = timed(|| {
            EngineBuilder::new()
                .k(2)
                .build_index(text)
                .expect("k=2 recipe builds")
        });
        let (k4, k4_secs) = timed(|| {
            EngineBuilder::new()
                .k(4)
                .build_index(text)
                .expect("k=4 recipe builds")
        });
        let (k4_compact, compact_secs) = timed(|| {
            EngineBuilder::new()
                .layout(IndexLayout::compact())
                .build_index(text)
                .expect("the compact preset builds on every profile")
        });
        let (k4_fast, fast_secs) = timed(|| {
            EngineBuilder::new()
                .layout(IndexLayout::fast())
                .build_index(text)
                .expect("the flat-u32 preset builds on every profile")
        });
        EngineSet {
            one,
            k2,
            k4,
            k4_compact,
            k4_fast,
            build_secs: [one_secs, k2_secs, k4_secs, compact_secs, fast_secs],
        }
    }

    /// Every measured variant: the enumeration of [`builder_configs`]
    /// attached to this set's shared indexes.
    pub fn variants(&self, thread_counts: &[usize]) -> Vec<Variant<'_>> {
        builder_configs(thread_counts)
            .into_iter()
            .map(|(builder, measure)| self.attach(builder, measure))
            .collect()
    }

    /// Wires one builder config onto the shared index matching its
    /// width *and* memory layout (an executor attached to an index built
    /// under a different layout would report the wrong footprint).
    fn attach(&self, builder: EngineBuilder, measure: Measure) -> Variant<'_> {
        let k = builder.step_width();
        let layout = builder.index_layout();
        let (index, build_secs, owner): (&KStepFmIndex, f64, &str) = match (k, layout) {
            (2, l) if l == IndexLayout::default() => (&self.k2, self.build_secs[1], "seq_k2"),
            (4, l) if l == IndexLayout::compact() => (
                &self.k4_compact,
                self.build_secs[3],
                "lockstep_k4_locality_compact",
            ),
            (4, l) if l == IndexLayout::fast() => (
                &self.k4_fast,
                self.build_secs[4],
                "lockstep_k4_locality_fast",
            ),
            (4, l) if l == IndexLayout::default() => (&self.k4, self.build_secs[2], "seq_k4"),
            (1, l) if l == IndexLayout::default() => {
                // The 1-step baseline attaches to the bare FmIndex; the
                // k = 1 k-step index exists only as `seq_k1`'s oracle twin.
                let exec = if builder.is_sequential() {
                    builder.attach_one_step(&self.one)
                } else {
                    unreachable!("no shared lockstep index at k=1")
                }
                .expect("enumerated recipes always attach");
                let label = builder.descriptor();
                return Variant {
                    shares_index_with: (label != "seq_k1").then(|| "seq_k1".to_string()),
                    label,
                    k,
                    exec,
                    build_secs: self.build_secs[0],
                    heap: self.one.heap_breakdown(),
                    heap_bytes: self.one.heap_bytes(),
                    threads: None,
                    measure,
                };
            }
            (k, l) => unreachable!("no shared index at k={k} with layout {l:?}"),
        };
        let exec = builder
            .attach(index)
            .expect("enumerated recipes always attach");
        let label = builder.descriptor();
        Variant {
            shares_index_with: (label != owner).then(|| owner.to_string()),
            label,
            k,
            exec,
            build_secs,
            heap: index.heap_breakdown(),
            heap_bytes: index.heap_bytes(),
            threads: (builder.thread_count() > 1).then(|| builder.thread_count()),
            measure,
        }
    }
}

/// One measured variant: a derived label, the executor behind it, and
/// its reporting metadata.
pub struct Variant<'a> {
    /// [`EngineBuilder::descriptor`] of the config — the JSON `engine`
    /// label.
    pub label: String,
    pub k: usize,
    /// The executor every op runs through.
    pub exec: Box<dyn Executor + 'a>,
    pub build_secs: f64,
    /// Per-component heap attribution of the variant's index
    /// (`heap.total() == heap_bytes`).
    pub heap: HeapBreakdown,
    pub heap_bytes: usize,
    /// The sequential entry whose index this variant reuses.
    pub shares_index_with: Option<String>,
    /// Worker threads for sharded variants, `None` for single-threaded.
    pub threads: Option<usize>,
    /// Ops this variant is timed on (it still *verifies* all ops).
    pub measure: Measure,
}

/// An index built at a swept rate, measured through a builder-derived
/// variant — how `--sweep-sample-rate` (k-mer checkpoint spacing) and
/// `--sweep-sa-sample-rate` (SA sampling) reuse the uniform driver.
pub struct SweepPoint {
    pub index: KStepFmIndex,
    pub builder: EngineBuilder,
    pub build_secs: f64,
    pub measure: Measure,
}

impl SweepPoint {
    /// Builds the swept index and remembers the recipe.
    pub fn build(text: &[Symbol], builder: EngineBuilder, measure: Measure) -> SweepPoint {
        SweepPoint::try_build(text, builder, measure).expect("sweep recipe builds")
    }

    /// Fallible variant of [`SweepPoint::build`] for sweeps whose grid
    /// legitimately contains unbuildable points (a u8 delta overflowing
    /// at a coarse spacing) — the frontier is recorded, not panicked on.
    pub fn try_build(
        text: &[Symbol],
        builder: EngineBuilder,
        measure: Measure,
    ) -> Result<SweepPoint, EngineError> {
        let start = Instant::now();
        let index = builder.build_index(text)?;
        Ok(SweepPoint {
            index,
            builder,
            build_secs: start.elapsed().as_secs_f64(),
            measure,
        })
    }

    /// The measured variant for this sweep point (it owns its index, so
    /// nothing is shared).
    pub fn variant(&self) -> Variant<'_> {
        Variant {
            label: self.builder.descriptor(),
            k: self.builder.step_width(),
            exec: self
                .builder
                .attach(&self.index)
                .expect("sweep recipe attaches to its own index"),
            build_secs: self.build_secs,
            heap: self.index.heap_breakdown(),
            heap_bytes: self.index.heap_bytes(),
            shares_index_with: None,
            threads: (self.builder.thread_count() > 1).then(|| self.builder.thread_count()),
            measure: self.measure,
        }
    }
}

/// Folds a result set so the optimizer cannot elide query work and so
/// runs are comparable across engines: counts, interval bounds, kept
/// positions and their total all feed the sum.
pub fn checksum(results: &QueryResults) -> u64 {
    let mut sum = results.total_positions() as u64;
    for (i, output) in results.outputs().iter().enumerate() {
        sum = sum.wrapping_add(match *output {
            exma_engine::QueryOutput::Count(n) => n as u64,
            exma_engine::QueryOutput::Interval { lo, hi } => (lo as u64) << 32 | hi as u64,
            exma_engine::QueryOutput::Located { truncated }
            | exma_engine::QueryOutput::BothLocated { truncated } => {
                let fold: u64 = results.positions(i).iter().map(|&p| p as u64).sum();
                fold + u64::from(truncated)
            }
        });
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    // The harness's own mixed-scenario builder, so this agreement test
    // always covers exactly the workload the timed runs measure.
    use crate::mixed_batch;
    use exma_engine::{QueryBatch, QueryRequest};
    use exma_genome::{Base, Genome, GenomeProfile};

    #[test]
    fn enumeration_derives_dedupes_and_orders() {
        let configs = builder_configs(&[1, 2, 4]);
        let labels: Vec<String> = configs.iter().map(|(b, _)| b.descriptor()).collect();
        // seq_k1 leads (the oracle), t1 deduped into the serial locality
        // entry, resolver isolations trail as locate-only.
        assert_eq!(labels[0], "seq_k1");
        assert_eq!(
            labels,
            [
                "seq_k1",
                "seq_k2",
                "seq_k4",
                "lockstep_k2_plain",
                "lockstep_k4_plain",
                "lockstep_k4_sorted",
                "lockstep_k4_locality",
                "lockstep_k4_locality_t2",
                "lockstep_k4_locality_t4",
                "lockstep_k4_locality_rplain",
                "lockstep_k4_locality_rsorted",
                "lockstep_k4_locality_compact",
                "lockstep_k4_locality_fast",
            ]
        );
        assert_eq!(
            configs
                .iter()
                .filter(|(_, m)| *m == Measure::LocateOnly)
                .count(),
            2
        );
        let unique: HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len(), "labels must be unique");
    }

    #[test]
    fn all_variants_agree_on_a_toy_genome() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
        let set = EngineSet::build(&genome.text_with_sentinel());
        let patterns: Vec<Vec<Base>> = (0..40)
            .map(|i| genome.seq().slice(i * 37, 9 + i % 13))
            .collect();
        let variants = set.variants(&[1, 2, 4]);
        assert_eq!(variants.len(), 13);
        let batches = [
            QueryBatch::uniform(QueryRequest::Count, &patterns),
            QueryBatch::uniform(QueryRequest::locate(), &patterns),
            mixed_batch(&patterns),
        ];
        for batch in &batches {
            let (expected, _) = variants[0].exec.run(batch);
            let expected_sum = checksum(&expected);
            for variant in &variants[1..] {
                let (results, _) = variant.exec.run(batch);
                assert_eq!(results, expected, "{}", variant.label);
                assert_eq!(checksum(&results), expected_sum, "{}", variant.label);
            }
        }
    }

    #[test]
    fn sharing_and_measure_metadata_line_up() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 7);
        let set = EngineSet::build(&genome.text_with_sentinel());
        let variants = set.variants(&[2]);
        assert!(variants[0].shares_index_with.is_none());
        let locality = variants
            .iter()
            .find(|v| v.label == "lockstep_k4_locality")
            .unwrap();
        assert_eq!(locality.shares_index_with.as_deref(), Some("seq_k4"));
        assert_eq!(locality.heap_bytes, set.k4.heap_bytes());
        let sharded = variants
            .iter()
            .find(|v| v.label == "lockstep_k4_locality_t2")
            .unwrap();
        assert_eq!(sharded.threads, Some(2));
        let rplain = variants
            .iter()
            .find(|v| v.label == "lockstep_k4_locality_rplain")
            .unwrap();
        assert!(!rplain.measure.includes(OP_COUNT));
        assert!(rplain.measure.includes(OP_LOCATE));
        assert!(!rplain.measure.includes(OP_MIXED));
        for variant in &variants {
            assert_eq!(
                variant.heap.total(),
                variant.heap_bytes,
                "{}: breakdown must sum to the scalar",
                variant.label
            );
        }
    }

    #[test]
    fn layout_preset_variants_own_their_indexes_and_compact_shrinks() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 17);
        let set = EngineSet::build(&genome.text_with_sentinel());
        let variants = set.variants(&[1]);
        let compact = variants
            .iter()
            .find(|v| v.label == "lockstep_k4_locality_compact")
            .unwrap();
        let fast = variants
            .iter()
            .find(|v| v.label == "lockstep_k4_locality_fast")
            .unwrap();
        // Preset variants build their own index, so they share nothing.
        assert!(compact.shares_index_with.is_none());
        assert!(fast.shares_index_with.is_none());
        assert_eq!(compact.heap_bytes, set.k4_compact.heap_bytes());
        assert_eq!(fast.heap_bytes, set.k4_fast.heap_bytes());
        assert!(
            compact.heap_bytes < fast.heap_bytes,
            "compact {} vs fast {}",
            compact.heap_bytes,
            fast.heap_bytes
        );
        // The compression acts on the checkpoint components specifically.
        assert!(
            compact.heap.k_occ_checkpoints + compact.heap.k_occ_deltas
                < fast.heap.k_occ_checkpoints + fast.heap.k_occ_deltas
        );
    }

    #[test]
    fn sweep_points_agree_with_the_oracle_and_shrink_with_rate() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 11);
        let text = genome.text_with_sentinel();
        let one = FmIndex::from_text(&text);
        let patterns: Vec<Vec<Base>> = (0..30).map(|i| genome.seq().slice(i * 23, 12)).collect();
        let batch = QueryBatch::uniform(QueryRequest::Count, &patterns);
        let expected: Vec<usize> = patterns.iter().map(|p| one.count(p)).collect();
        let fine = SweepPoint::build(
            &text,
            EngineBuilder::new().k_occ_sample_rate(64),
            Measure::All,
        );
        let coarse = SweepPoint::build(
            &text,
            EngineBuilder::new().k_occ_sample_rate(1024),
            Measure::All,
        );
        for point in [&fine, &coarse] {
            let (results, _) = point.variant().exec.run(&batch);
            let counts: Vec<usize> = (0..results.len()).map(|i| results.count(i)).collect();
            assert_eq!(counts, expected);
        }
        assert!(coarse.variant().heap_bytes < fine.variant().heap_bytes);
    }

    #[test]
    fn sa_sweep_points_agree_with_the_oracle_and_shrink_with_rate() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 13);
        let text = genome.text_with_sentinel();
        let one = FmIndex::from_text(&text);
        let patterns: Vec<Vec<Base>> = (0..30).map(|i| genome.seq().slice(i * 19, 11)).collect();
        let batch = QueryBatch::uniform(QueryRequest::locate(), &patterns);
        let fine = SweepPoint::build(
            &text,
            EngineBuilder::new().sa_sample_rate(8),
            Measure::LocateOnly,
        );
        let coarse = SweepPoint::build(
            &text,
            EngineBuilder::new().sa_sample_rate(64),
            Measure::LocateOnly,
        );
        for point in [&fine, &coarse] {
            let (results, _) = point.variant().exec.run(&batch);
            for (i, p) in patterns.iter().enumerate() {
                assert_eq!(results.positions(i), &one.locate(p)[..]);
            }
            assert!(!point.variant().measure.includes(OP_COUNT));
            assert!(point.variant().measure.includes(OP_LOCATE));
        }
        assert!(coarse.variant().heap_bytes < fine.variant().heap_bytes);
        assert_eq!(fine.variant().label, "lockstep_k4_locality_sa8");
    }
}
