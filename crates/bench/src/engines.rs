//! The engines under measurement, behind one uniform face.
//!
//! Three query paths compete on identical inputs: the sequential 1-step
//! baseline (`FmIndex`), the sequential k-step index (k ∈ {2, 4}), and the
//! batched lockstep engine on top of the k-step index. Batched entries
//! *share* their index with the matching k-step entry — scheduling, not
//! the data structure, is what they isolate — so their build time and
//! heap bytes are reported from the shared index.

use std::hint::black_box;
use std::time::Instant;

use exma_engine::BatchEngine;
use exma_genome::{Base, Symbol};
use exma_index::{FmIndex, KStepFmIndex};

/// One genome's worth of built indexes, shared across engine entries.
pub struct EngineSet {
    pub one: FmIndex,
    pub k2: KStepFmIndex,
    pub k4: KStepFmIndex,
    /// Wall-clock build seconds for `one`, `k2`, `k4` respectively.
    pub build_secs: [f64; 3],
}

impl EngineSet {
    /// Builds all three indexes from one sentinel-terminated text, timing
    /// each build (suffix-array construction included — each engine pays
    /// its full cost from raw text).
    pub fn build(text: &[Symbol]) -> EngineSet {
        let t0 = Instant::now();
        let one = FmIndex::from_text(text);
        let t1 = Instant::now();
        let k2 = KStepFmIndex::from_text(text, 2);
        let t2 = Instant::now();
        let k4 = KStepFmIndex::from_text(text, 4);
        let t3 = Instant::now();
        EngineSet {
            one,
            k2,
            k4,
            build_secs: [
                (t1 - t0).as_secs_f64(),
                (t2 - t1).as_secs_f64(),
                (t3 - t2).as_secs_f64(),
            ],
        }
    }

    /// Every engine entry measured against this set.
    pub fn engines(&self) -> Vec<Engine<'_>> {
        vec![
            Engine {
                label: "1step",
                k: 1,
                kind: Kind::OneStep(&self.one),
                build_secs: self.build_secs[0],
                heap_bytes: self.one.heap_bytes(),
                shares_index_with: None,
            },
            Engine {
                label: "kstep_k2",
                k: 2,
                kind: Kind::KStep(&self.k2),
                build_secs: self.build_secs[1],
                heap_bytes: self.k2.heap_bytes(),
                shares_index_with: None,
            },
            Engine {
                label: "kstep_k4",
                k: 4,
                kind: Kind::KStep(&self.k4),
                build_secs: self.build_secs[2],
                heap_bytes: self.k4.heap_bytes(),
                shares_index_with: None,
            },
            Engine {
                label: "batched_k2",
                k: 2,
                kind: Kind::Batched(&self.k2),
                build_secs: self.build_secs[1],
                heap_bytes: self.k2.heap_bytes(),
                shares_index_with: Some("kstep_k2"),
            },
            Engine {
                label: "batched_k4",
                k: 4,
                kind: Kind::Batched(&self.k4),
                build_secs: self.build_secs[2],
                heap_bytes: self.k4.heap_bytes(),
                shares_index_with: Some("kstep_k4"),
            },
        ]
    }
}

enum Kind<'a> {
    OneStep(&'a FmIndex),
    KStep(&'a KStepFmIndex),
    Batched(&'a KStepFmIndex),
}

/// One measured engine entry.
pub struct Engine<'a> {
    pub label: &'static str,
    pub k: usize,
    kind: Kind<'a>,
    pub build_secs: f64,
    pub heap_bytes: usize,
    pub shares_index_with: Option<&'static str>,
}

impl Engine<'_> {
    /// Occurrence counts for every pattern, through this engine's own
    /// query path.
    pub fn count_all(&self, patterns: &[Vec<Base>]) -> Vec<usize> {
        match self.kind {
            Kind::OneStep(fm) => patterns.iter().map(|p| fm.count(p)).collect(),
            Kind::KStep(fm) => patterns.iter().map(|p| fm.count(p)).collect(),
            Kind::Batched(fm) => BatchEngine::new(fm).count_batch(patterns),
        }
    }

    /// Sorted occurrence positions for every pattern. Sequential engines
    /// recycle one buffer through `locate_into`; the batched engine
    /// resolves its intervals after the lockstep search.
    pub fn locate_all(&self, patterns: &[Vec<Base>]) -> Vec<Vec<u32>> {
        match self.kind {
            Kind::OneStep(fm) => {
                let mut buf = Vec::new();
                patterns
                    .iter()
                    .map(|p| {
                        fm.locate_into(p, &mut buf);
                        buf.clone()
                    })
                    .collect()
            }
            Kind::KStep(fm) => {
                let mut buf = Vec::new();
                patterns
                    .iter()
                    .map(|p| {
                        fm.locate_into(p, &mut buf);
                        buf.clone()
                    })
                    .collect()
            }
            Kind::Batched(fm) => BatchEngine::new(fm).locate_batch(patterns),
        }
    }

    /// Checksummed count sweep for timing (results folded so the optimizer
    /// cannot discard the work).
    pub fn count_checksum(&self, patterns: &[Vec<Base>]) -> u64 {
        match self.kind {
            Kind::OneStep(fm) => patterns
                .iter()
                .map(|p| black_box(fm.count(black_box(p))) as u64)
                .sum(),
            Kind::KStep(fm) => patterns
                .iter()
                .map(|p| black_box(fm.count(black_box(p))) as u64)
                .sum(),
            Kind::Batched(fm) => BatchEngine::new(fm)
                .count_batch(black_box(patterns))
                .iter()
                .map(|&c| c as u64)
                .sum(),
        }
    }

    /// Checksummed locate sweep for timing.
    pub fn locate_checksum(&self, patterns: &[Vec<Base>]) -> u64 {
        let fold = |positions: &[u32]| -> u64 {
            positions.iter().map(|&p| p as u64).sum::<u64>() + positions.len() as u64
        };
        match self.kind {
            Kind::OneStep(fm) => {
                let mut buf = Vec::new();
                patterns
                    .iter()
                    .map(|p| {
                        fm.locate_into(black_box(p), &mut buf);
                        fold(black_box(&buf))
                    })
                    .sum()
            }
            Kind::KStep(fm) => {
                let mut buf = Vec::new();
                patterns
                    .iter()
                    .map(|p| {
                        fm.locate_into(black_box(p), &mut buf);
                        fold(black_box(&buf))
                    })
                    .sum()
            }
            Kind::Batched(fm) => BatchEngine::new(fm)
                .locate_batch(black_box(patterns))
                .iter()
                .map(|positions| fold(positions))
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::{Genome, GenomeProfile};

    #[test]
    fn all_engines_agree_on_a_toy_genome() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
        let set = EngineSet::build(&genome.text_with_sentinel());
        let patterns: Vec<Vec<Base>> = (0..40)
            .map(|i| genome.seq().slice(i * 37, 9 + i % 13))
            .collect();
        let engines = set.engines();
        let oracle_counts = engines[0].count_all(&patterns);
        let oracle_locs = engines[0].locate_all(&patterns);
        for engine in &engines[1..] {
            assert_eq!(
                engine.count_all(&patterns),
                oracle_counts,
                "{}",
                engine.label
            );
            assert_eq!(
                engine.locate_all(&patterns),
                oracle_locs,
                "{}",
                engine.label
            );
        }
    }

    #[test]
    fn checksums_are_consistent_across_engines() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 7);
        let set = EngineSet::build(&genome.text_with_sentinel());
        let patterns: Vec<Vec<Base>> = (0..25).map(|i| genome.seq().slice(i * 11, 14)).collect();
        let engines = set.engines();
        let count_sum = engines[0].count_checksum(&patterns);
        let locate_sum = engines[0].locate_checksum(&patterns);
        for engine in &engines[1..] {
            assert_eq!(
                engine.count_checksum(&patterns),
                count_sum,
                "{}",
                engine.label
            );
            assert_eq!(
                engine.locate_checksum(&patterns),
                locate_sum,
                "{}",
                engine.label
            );
        }
    }
}
