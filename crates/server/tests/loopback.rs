//! Loopback acceptance tests of the serving pipeline: every byte a
//! client gets back over TCP must equal what a direct [`Executor`]
//! call would have produced — across concurrent clients, mixed-op
//! batches, continuous batching, backpressure, and every rejection
//! path (malformed, truncated, oversized frames).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use exma_engine::{EngineBuilder, QueryBatch, QueryRequest};
use exma_genome::{Base, Genome, GenomeProfile, SeededRng};
use exma_index::KStepFmIndex;
use exma_server::wire::{self, FrameHeader, Opcode, HEADER_LEN};
use exma_server::{Server, ServerConfig, ServerHandle};

/// A bound server running on its own thread, torn down explicitly.
struct TestServer {
    handle: ServerHandle,
    thread: thread::JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    fn start(index: Arc<KStepFmIndex>, builder: EngineBuilder, config: ServerConfig) -> TestServer {
        let server = Server::bind("127.0.0.1:0", index, builder, config).expect("bind loopback");
        let handle = server.handle().expect("local addr");
        let thread = thread::spawn(move || server.run());
        TestServer { handle, thread }
    }

    /// Stops the accept loop and joins; callers drop their clients
    /// first so the batcher can drain.
    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread").expect("serve");
    }
}

/// A blocking test client speaking one frame at a time.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(server: &TestServer) -> Client {
        Client {
            stream: TcpStream::connect(server.handle.addr()).expect("connect loopback"),
        }
    }

    fn send_query(&mut self, request_id: u64, batch: &QueryBatch) {
        let mut payload = Vec::new();
        wire::encode_query_batch(batch, &mut payload).expect("encodable batch");
        self.send_raw(&wire::frame(Opcode::Query, request_id, &payload));
    }

    fn send_stats(&mut self, request_id: u64) {
        self.send_raw(&wire::frame(Opcode::Stats, request_id, &[]));
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write frame");
    }

    /// Reads one frame; `None` on a server-side close.
    fn read_frame(&mut self) -> Option<(FrameHeader, Vec<u8>)> {
        let mut header_bytes = [0u8; HEADER_LEN];
        let mut filled = 0;
        while filled < HEADER_LEN {
            match self.stream.read(&mut header_bytes[filled..]) {
                Ok(0) => return None,
                Ok(n) => filled += n,
                Err(_) => return None,
            }
        }
        let header =
            wire::decode_header(&header_bytes, usize::MAX).expect("server frames well-formed");
        let mut payload = vec![0u8; header.payload_len as usize];
        self.stream.read_exact(&mut payload).expect("payload");
        Some((header, payload))
    }

    fn stats_snapshot(&mut self, request_id: u64) -> wire::StatsSnapshot {
        self.send_stats(request_id);
        let (header, payload) = self.read_frame().expect("stats reply");
        assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::StatsReply));
        assert_eq!(header.request_id, request_id);
        wire::decode_stats(&payload).expect("stats payload")
    }
}

fn toy_genome() -> Genome {
    Genome::synthesize(&GenomeProfile::toy(), 42)
}

/// A mixed-op batch in the property suites' style: counts, capped and
/// uncapped locates, intervals, hit and miss and empty patterns.
fn mixed_batch(genome: &Genome, total: usize, seed: u64) -> QueryBatch {
    let mut rng = SeededRng::new(seed);
    let mut batch = QueryBatch::new();
    for i in 0..total {
        let pattern: Vec<Base> = if i % 17 == 0 {
            Vec::new()
        } else {
            let len = rng.range(1, 30);
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                genome.seq().slice(start, len)
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        };
        match i % 4 {
            0 => batch.push(QueryRequest::Count, pattern),
            1 => batch.push(QueryRequest::locate(), pattern),
            2 => batch.push(QueryRequest::locate_capped(rng.range(0, 8) as u32), pattern),
            _ => batch.push(QueryRequest::Interval, pattern),
        }
    }
    batch
}

/// The byte-exact RESULTS payload a direct executor run produces.
fn expected_payload(builder: &EngineBuilder, index: &KStepFmIndex, batch: &QueryBatch) -> Vec<u8> {
    let engine = builder.attach(index).expect("attach oracle");
    let (results, _) = engine.run(batch);
    let mut payload = Vec::new();
    wire::encode_results_range(&results, 0, results.len(), &mut payload);
    payload
}

#[test]
fn concurrent_clients_get_byte_exact_executor_results() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let server = TestServer::start(Arc::clone(&index), builder, ServerConfig::default());

    thread::scope(|scope| {
        for client_id in 0..4u64 {
            let server = &server;
            let genome = &genome;
            let index = &index;
            scope.spawn(move || {
                let mut client = Client::connect(server);
                for round in 0..5u64 {
                    let seed = client_id * 100 + round;
                    let batch = mixed_batch(genome, 40, seed);
                    let request_id = (client_id << 32) | round;
                    client.send_query(request_id, &batch);
                    let (header, payload) = client.read_frame().expect("response");
                    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
                    assert_eq!(header.request_id, request_id);
                    assert_eq!(
                        payload,
                        expected_payload(&builder, index, &batch),
                        "client {client_id} round {round} diverged from direct execution"
                    );
                }
            });
        }
    });

    // Everything the clients sent was admitted and executed; the
    // coalescing counters stay consistent with the run count.
    let mut probe = Client::connect(&server);
    let stats = probe.stats_snapshot(999);
    assert_eq!(stats.submissions_admitted, 20);
    assert_eq!(stats.queries_executed, 20 * 40);
    assert_eq!(stats.submissions_coalesced, 20);
    assert!(stats.batches_run >= 1 && stats.batches_run <= 20);
    assert_eq!(stats.submissions_busy, 0);
    assert_eq!(stats.queue_depth, 0);
    // The heap fields published at bind describe the served index
    // exactly: non-zero, and components summing to the total.
    assert!(stats.heap_total > 0);
    assert_eq!(
        stats.heap_total,
        stats.heap_k_occ_checkpoints
            + stats.heap_k_occ_deltas
            + stats.heap_k_occ_codes
            + stats.heap_one_step_occ
            + stats.heap_sa_samples
            + stats.heap_rank_bits
            + stats.heap_other
    );
    drop(probe);
    server.stop();
}

#[test]
fn malformed_payloads_answer_error_and_keep_the_connection() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(2);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let server = TestServer::start(Arc::clone(&index), builder, ServerConfig::default());
    let mut client = Client::connect(&server);

    // A pattern byte outside the 2-bit alphabet: typed rejection, id
    // echoed, stream still in sync.
    let mut bad = Vec::new();
    bad.extend_from_slice(&1u32.to_le_bytes()); // one query
    bad.push(0); // count
    bad.extend_from_slice(&2u32.to_le_bytes()); // two bases
    bad.extend_from_slice(&[1, 77]); // second is garbage
    client.send_raw(&wire::frame(Opcode::Query, 7, &bad));
    let (header, payload) = client.read_frame().expect("error frame");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Error));
    assert_eq!(header.request_id, 7);
    let message = String::from_utf8(payload).expect("utf-8 error message");
    assert!(message.contains("77"), "unhelpful error: {message}");

    // An unknown request kind: same contract.
    let mut bad_kind = Vec::new();
    bad_kind.extend_from_slice(&1u32.to_le_bytes());
    bad_kind.push(9);
    client.send_raw(&wire::frame(Opcode::Query, 8, &bad_kind));
    let (header, _) = client.read_frame().expect("error frame");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Error));
    assert_eq!(header.request_id, 8);

    // A response opcode sent as a request: rejected, connection lives.
    client.send_raw(&wire::frame(Opcode::Results, 9, &[]));
    let (header, _) = client.read_frame().expect("error frame");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Error));

    // The same connection still answers real queries byte-exactly.
    let batch = mixed_batch(&genome, 10, 5);
    client.send_query(10, &batch);
    let (header, payload) = client.read_frame().expect("results after errors");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(payload, expected_payload(&builder, &index, &batch));

    let stats = client.stats_snapshot(11);
    assert_eq!(stats.errors, 3);
    drop(client);
    server.stop();
}

#[test]
fn bad_magic_and_oversized_frames_close_the_connection() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(2);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let config = ServerConfig {
        max_frame_len: 256,
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);

    // Garbage magic: one ERROR frame, then EOF — the stream cannot be
    // re-synchronized, so the server hangs up.
    let mut client = Client::connect(&server);
    let mut frame = wire::frame(Opcode::Query, 1, &[0, 0, 0, 0]);
    frame[0] = 0xAA;
    client.send_raw(&frame);
    let (header, payload) = client.read_frame().expect("error frame");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Error));
    let message = String::from_utf8(payload).unwrap();
    assert!(message.contains("magic"), "{message}");
    assert!(
        client.read_frame().is_none(),
        "expected close after bad magic"
    );

    // A length prefix over the frame cap is refused before any payload
    // is read — no 4 GiB allocation on a hostile header.
    let mut client = Client::connect(&server);
    client.send_raw(&wire::encode_header(Opcode::Query, 2, 1 << 30));
    let (header, payload) = client.read_frame().expect("error frame");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Error));
    let message = String::from_utf8(payload).unwrap();
    assert!(message.contains("frame cap"), "{message}");
    assert!(
        client.read_frame().is_none(),
        "expected close after oversize"
    );

    // A truncated frame (header promises more than the peer sends)
    // must not wedge the server: the victim connection dies quietly
    // and fresh connections still work.
    let mut client = Client::connect(&server);
    client.send_raw(&wire::encode_header(Opcode::Query, 3, 100));
    client.send_raw(&[0u8; 10]); // then hang up mid-payload
    drop(client);

    let mut healthy = Client::connect(&server);
    let batch = mixed_batch(&genome, 8, 3);
    healthy.send_query(4, &batch);
    let (header, payload) = healthy.read_frame().expect("results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(payload, expected_payload(&builder, &index, &batch));
    drop(healthy);
    server.stop();
}

#[test]
fn full_admission_queue_answers_busy_not_buffering() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let config = ServerConfig {
        queue_depth: 1,
        linger: Duration::ZERO,
        // Uncapped empty-pattern locates resolve the entire text; 60
        // of them keep the batcher busy for long enough that the
        // burst below observably overflows the 1-slot queue.
        max_frame_len: 16 << 20,
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);
    let mut client = Client::connect(&server);

    let slow = QueryBatch::uniform(QueryRequest::locate(), vec![Vec::<Base>::new(); 60]);
    client.send_query(0, &slow);
    let quick = QueryBatch::new().count(genome.seq().slice(0, 8));
    for id in 1..=9u64 {
        client.send_query(id, &quick);
    }

    let mut outcomes: HashMap<u64, Opcode> = HashMap::new();
    while outcomes.len() < 10 {
        let (header, payload) = client.read_frame().expect("response for every request");
        let opcode = Opcode::from_byte(header.opcode).unwrap();
        if opcode == Opcode::Results && header.request_id == 0 {
            // The slow batch's answers are still oracle-exact.
            assert_eq!(payload, expected_payload(&builder, &index, &slow));
        }
        outcomes.insert(header.request_id, opcode);
    }
    let busy = outcomes.values().filter(|&&op| op == Opcode::Busy).count();
    let answered = outcomes
        .values()
        .filter(|&&op| op == Opcode::Results)
        .count();
    assert_eq!(busy + answered, 10);
    assert_eq!(outcomes[&0], Opcode::Results, "the slow batch was admitted");
    assert!(
        busy >= 1,
        "a 1-slot queue under a 10-request burst never filled"
    );

    let stats = client.stats_snapshot(100);
    assert_eq!(stats.submissions_busy, busy as u64);
    assert_eq!(stats.submissions_admitted, answered as u64);
    drop(client);
    server.stop();
}

#[test]
fn linger_window_coalesces_concurrent_submissions() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let config = ServerConfig {
        linger: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);

    thread::scope(|scope| {
        for client_id in 0..6u64 {
            let server = &server;
            let genome = &genome;
            let index = &index;
            scope.spawn(move || {
                let mut client = Client::connect(server);
                let batch = mixed_batch(genome, 10, client_id);
                client.send_query(client_id, &batch);
                let (header, payload) = client.read_frame().expect("response");
                assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
                assert_eq!(payload, expected_payload(&builder, index, &batch));
            });
        }
    });

    let mut probe = Client::connect(&server);
    let stats = probe.stats_snapshot(999);
    assert_eq!(stats.submissions_admitted, 6);
    // Six near-simultaneous one-batch clients against a 150 ms linger
    // window: the batcher must have merged at least once — that is
    // the continuous-batching contract this server exists for.
    assert!(
        stats.batches_run < 6,
        "no coalescing: {} submissions ran as {} batches",
        stats.submissions_admitted,
        stats.batches_run
    );
    assert!(stats.max_coalesced >= 2);
    drop(probe);
    server.stop();
}

#[test]
fn bidirectional_server_answers_search_both_byte_exactly() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4).bidirectional(true);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let server = TestServer::start(Arc::clone(&index), builder, ServerConfig::default());
    let mut client = Client::connect(&server);

    // SearchBoth interleaved with the plain operations: forward
    // windows, reverse-complement windows (a client that never
    // reverse-complements), palindromes, and a tight cap.
    let window = genome.seq().slice(100, 24);
    let reverse = genome.revcomp_window(300, 24);
    let palindrome = exma_genome::alphabet::parse_bases("ACGT").unwrap();
    let frequent = genome.seq().slice(0, 2);
    let batch = QueryBatch::new()
        .search_both(&window)
        .search_both(&reverse)
        .search_both(&palindrome)
        .search_both_capped(&frequent, 5)
        .count(&window)
        .locate_capped(&window, 8);
    client.send_query(21, &batch);
    let (header, payload) = client.read_frame().expect("results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(header.request_id, 21);
    assert_eq!(payload, expected_payload(&builder, &index, &batch));

    // The strand tags survive the wire: the forward window comes back
    // Forward at its origin, the reverse window Reverse at its origin.
    let outputs = wire::decode_results(&payload).unwrap();
    let decoded = |i: usize| -> Vec<(u32, exma_index::bidir::Strand)> {
        match &outputs[i] {
            wire::WireOutput::BothLocated { hits, .. } => hits
                .iter()
                .map(|&h| exma_index::bidir::decode_hit(h))
                .collect(),
            other => panic!("expected both-located, got {other:?}"),
        }
    };
    assert!(decoded(0).contains(&(100, exma_index::bidir::Strand::Forward)));
    assert!(decoded(1).contains(&(300, exma_index::bidir::Strand::Reverse)));
    assert!(decoded(2)
        .iter()
        .all(|&(_, s)| s == exma_index::bidir::Strand::Forward));
    match &outputs[3] {
        wire::WireOutput::BothLocated { hits, truncated } => {
            assert_eq!(hits.len(), 5);
            assert!(*truncated);
        }
        other => panic!("expected both-located, got {other:?}"),
    }

    // The stats snapshot publishes the served index's strandedness.
    let stats = client.stats_snapshot(22);
    assert_eq!(stats.bidir_enabled, 1);
    assert_eq!(stats.bidir_text_len, index.text_len() as u64);
    drop(client);
    server.stop();
}

#[test]
fn forward_only_server_refuses_search_both_and_keeps_the_connection() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let server = TestServer::start(Arc::clone(&index), builder, ServerConfig::default());
    let mut client = Client::connect(&server);

    // A kind-3 query against a forward-only index would return
    // deterministic nonsense — the server must refuse it at the
    // payload level instead, like a bad kind byte.
    let window = genome.seq().slice(100, 24);
    client.send_query(31, &QueryBatch::new().search_both(&window));
    let (header, payload) = client.read_frame().expect("error reply");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Error));
    assert_eq!(header.request_id, 31);
    let message = String::from_utf8(payload).expect("utf-8 error message");
    assert!(message.contains("bidirectional"), "{message}");

    // Payload-level rejection: the connection survives and plain
    // queries on it still answer byte-exactly.
    let batch = mixed_batch(&genome, 12, 7);
    client.send_query(32, &batch);
    let (header, payload) = client.read_frame().expect("results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(header.request_id, 32);
    assert_eq!(payload, expected_payload(&builder, &index, &batch));

    // The refusal is an error, not an executed query.
    let stats = client.stats_snapshot(33);
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.bidir_enabled, 0);
    drop(client);
    server.stop();
}

#[test]
fn max_hits_ceiling_caps_every_locate() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(2);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let config = ServerConfig {
        max_hits_ceiling: Some(3),
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);
    let mut client = Client::connect(&server);

    // An uncapped locate of a 1-base pattern has thousands of hits;
    // under the ceiling the server must answer as if the client had
    // asked for locate_capped(3) — deterministic truncation, not a
    // deadline-dependent prefix.
    let frequent = genome.seq().slice(0, 1);
    let sent = QueryBatch::new()
        .locate(&frequent)
        .locate_capped(&frequent, 2)
        .count(&frequent);
    let clamped = QueryBatch::new()
        .locate_capped(&frequent, 3)
        .locate_capped(&frequent, 2)
        .count(&frequent);
    client.send_query(1, &sent);
    let (header, payload) = client.read_frame().expect("results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(payload, expected_payload(&builder, &index, &clamped));

    let outputs = wire::decode_results(&payload).unwrap();
    match &outputs[0] {
        wire::WireOutput::Located {
            positions,
            truncated,
        } => {
            assert_eq!(positions.len(), 3);
            assert!(*truncated);
        }
        other => panic!("expected a located output, got {other:?}"),
    }
    drop(client);
    server.stop();
}
