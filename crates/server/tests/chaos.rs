//! Chaos loopback suite: the robustness acceptance tests of ISSUE 8.
//!
//! Every test here hurts the server on purpose — expired deadlines,
//! mid-drain submissions, torn headers, truncated payloads, stalled
//! reads, flipped bytes, unread response floods — and asserts the
//! contract that matters: expired work answers LATE without an engine
//! run, shutdown drains without deadlock, healthy clients stay
//! byte-verified against direct execution throughout, v1 frames keep
//! round-tripping, and `Server::run` returning means every thread the
//! server spawned has been joined (a leak would hang `stop()` and fail
//! the suite by timeout).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use exma_engine::{EngineBuilder, QueryBatch, QueryRequest};
use exma_genome::{Base, Genome, GenomeProfile, SeededRng};
use exma_index::KStepFmIndex;
use exma_server::wire::{self, FrameHeader, Opcode, HEADER_LEN};
use exma_server::{FaultPlan, Server, ServerConfig, ServerHandle};

/// A bound server on its own thread. `stop()` performs the graceful
/// drain and joins — it must complete even with clients still
/// connected, which is itself the no-deadlock assertion.
struct TestServer {
    handle: ServerHandle,
    thread: thread::JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    fn start(index: Arc<KStepFmIndex>, builder: EngineBuilder, config: ServerConfig) -> TestServer {
        let server = Server::bind("127.0.0.1:0", index, builder, config).expect("bind loopback");
        let handle = server.handle().expect("local addr");
        let thread = thread::spawn(move || server.run());
        TestServer { handle, thread }
    }

    fn stop(self) {
        self.handle.shutdown();
        self.thread.join().expect("server thread").expect("serve");
    }
}

/// A blocking test client speaking one frame at a time.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(server: &TestServer) -> Client {
        Client {
            stream: TcpStream::connect(server.handle.addr()).expect("connect loopback"),
        }
    }

    /// A v2 QUERY frame carrying `deadline_us` (0 = none).
    fn send_query(&mut self, request_id: u64, deadline_us: u32, batch: &QueryBatch) {
        let mut payload = Vec::new();
        wire::encode_query_batch(batch, &mut payload).expect("encodable batch");
        self.send_raw(&wire::query_frame(request_id, deadline_us, &payload));
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write frame");
    }

    /// Reads one frame; `None` on a server-side close.
    fn read_frame(&mut self) -> Option<(FrameHeader, Vec<u8>)> {
        let mut header_bytes = [0u8; HEADER_LEN];
        let mut filled = 0;
        while filled < HEADER_LEN {
            match self.stream.read(&mut header_bytes[filled..]) {
                Ok(0) => return None,
                Ok(n) => filled += n,
                Err(_) => return None,
            }
        }
        let header =
            wire::decode_header(&header_bytes, usize::MAX).expect("server frames well-formed");
        let mut payload = vec![0u8; header.payload_len as usize];
        self.stream.read_exact(&mut payload).ok()?;
        Some((header, payload))
    }

    fn stats_snapshot(&mut self, request_id: u64) -> wire::StatsSnapshot {
        self.send_raw(&wire::frame(Opcode::Stats, request_id, &[]));
        let (header, payload) = self.read_frame().expect("stats reply");
        assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::StatsReply));
        wire::decode_stats(&payload).expect("stats payload")
    }
}

fn toy_genome() -> Genome {
    Genome::synthesize(&GenomeProfile::toy(), 42)
}

/// A mixed-op batch in the property suites' style.
fn mixed_batch(genome: &Genome, total: usize, seed: u64) -> QueryBatch {
    let mut rng = SeededRng::new(seed);
    let mut batch = QueryBatch::new();
    for i in 0..total {
        let pattern: Vec<Base> = if i % 17 == 0 {
            Vec::new()
        } else {
            let len = rng.range(1, 30);
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                genome.seq().slice(start, len)
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        };
        match i % 4 {
            0 => batch.push(QueryRequest::Count, pattern),
            1 => batch.push(QueryRequest::locate(), pattern),
            2 => batch.push(QueryRequest::locate_capped(rng.range(0, 8) as u32), pattern),
            _ => batch.push(QueryRequest::Interval, pattern),
        }
    }
    batch
}

/// The byte-exact RESULTS payload a direct executor run produces.
fn expected_payload(builder: &EngineBuilder, index: &KStepFmIndex, batch: &QueryBatch) -> Vec<u8> {
    let engine = builder.attach(index).expect("attach oracle");
    let (results, _) = engine.run(batch);
    let mut payload = Vec::new();
    wire::encode_results_range(&results, 0, results.len(), &mut payload);
    payload
}

#[test]
fn expired_submissions_answer_late_without_an_engine_run() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    // A long linger guarantees a 1 ms budget expires inside the
    // coalescing window — the post-linger recheck must catch it.
    let config = ServerConfig {
        linger: Duration::from_millis(120),
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);
    let mut client = Client::connect(&server);

    let batch = mixed_batch(&genome, 12, 1);
    client.send_query(1, 1_000, &batch);
    let (header, payload) = client.read_frame().expect("late frame");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Late));
    assert_eq!(header.request_id, 1);
    let info = wire::decode_late(&payload).expect("late payload");
    assert_eq!(info.budget_us, 1_000);
    assert!(
        info.elapsed_us > info.budget_us,
        "LATE must report elapsed ({}) past budget ({})",
        info.elapsed_us,
        info.budget_us
    );

    // The expired submission must never have reached the engine.
    let stats = client.stats_snapshot(2);
    assert_eq!(stats.late_dropped, 1);
    assert_eq!(stats.batches_run, 0, "LATE work still ran the engine");
    assert_eq!(stats.queries_executed, 0);

    // A deadline-free query on the same connection still answers
    // byte-exactly — deadlines shed work, not connections.
    client.send_query(3, 0, &batch);
    let (header, payload) = client.read_frame().expect("results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(payload, expected_payload(&builder, &index, &batch));
    drop(client);
    server.stop();
}

#[test]
fn server_deadline_ceiling_applies_to_deadline_free_clients() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let config = ServerConfig {
        linger: Duration::from_millis(120),
        default_deadline: Some(Duration::from_millis(1)),
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);
    let mut client = Client::connect(&server);

    // The client asked for no deadline at all; the server's ceiling
    // still sheds it once the linger window outlives 1 ms.
    client.send_query(1, 0, &mixed_batch(&genome, 8, 2));
    let (header, payload) = client.read_frame().expect("late frame");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Late));
    let info = wire::decode_late(&payload).expect("late payload");
    assert_eq!(info.budget_us, 1_000);
    drop(client);
    server.stop();
}

#[test]
fn v1_frames_round_trip_and_get_v1_responses() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let server = TestServer::start(Arc::clone(&index), builder, ServerConfig::default());
    let mut client = Client::connect(&server);

    // A v1 QUERY frame: 16-byte header, payload immediately after —
    // no deadline extension. The response must come back as v1 too,
    // so a v1 client never sees bytes it cannot parse.
    let batch = mixed_batch(&genome, 10, 3);
    let mut payload = Vec::new();
    wire::encode_query_batch(&batch, &mut payload).expect("encodable batch");
    let mut frame = Vec::new();
    frame.extend_from_slice(&wire::encode_header_at(
        1,
        Opcode::Query,
        7,
        payload.len() as u32,
    ));
    frame.extend_from_slice(&payload);
    client.send_raw(&frame);

    let (header, payload) = client.read_frame().expect("results");
    assert_eq!(
        header.version, 1,
        "v1 request drew a v{} response",
        header.version
    );
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(header.request_id, 7);
    assert_eq!(payload, expected_payload(&builder, &index, &batch));
    drop(client);
    server.stop();
}

#[test]
fn shutdown_drains_in_flight_work_and_goaways_new_queries() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    // A long linger holds the admitted batch in flight while shutdown
    // lands, so the drain provably finishes queued work.
    let config = ServerConfig {
        linger: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);
    let mut client = Client::connect(&server);

    let batch = mixed_batch(&genome, 25, 4);
    client.send_query(1, 0, &batch);
    // Let the reader admit it before the drain flag flips.
    thread::sleep(Duration::from_millis(30));
    server.handle.shutdown();
    thread::sleep(Duration::from_millis(10));
    // Anything submitted after the drain began answers GOAWAY.
    client.send_query(2, 0, &batch);

    let mut saw_results = false;
    let mut saw_goaway = false;
    while let Some((header, payload)) = client.read_frame() {
        match Opcode::from_byte(header.opcode).expect("known opcode") {
            Opcode::Results => {
                assert_eq!(header.request_id, 1);
                assert_eq!(
                    payload,
                    expected_payload(&builder, &index, &batch),
                    "drained work diverged from direct execution"
                );
                saw_results = true;
            }
            Opcode::Goaway => {
                assert_eq!(header.request_id, 2);
                saw_goaway = true;
            }
            other => panic!("unexpected {other:?} during drain"),
        }
    }
    assert!(saw_results, "in-flight batch was dropped by shutdown");
    assert!(saw_goaway, "post-drain query was not told to go away");

    // The client is still connected: run() must return anyway. This
    // join hangs (and the test fails by timeout) if any server thread
    // leaks — the PR 6 retained-sender deadlock regression.
    let started = Instant::now();
    server.thread.join().expect("server thread").expect("serve");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain took implausibly long"
    );
}

#[test]
fn slow_readers_are_shed_and_disconnected_not_buffered() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let config = ServerConfig {
        linger: Duration::ZERO,
        // One-frame writer queue: a client that doesn't read overflows
        // it as soon as the socket's own buffer is full.
        writer_queue_depth: 1,
        max_frame_len: 16 << 20,
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);

    // Each submission draws one ~800 KB RESULTS frame (twenty uncapped
    // empty-pattern locates each resolve the whole 10 kb toy
    // reference); forty of them total ~32 MB — far past what the
    // kernel's socket buffers can absorb. The victim never reads: the
    // buffers fill, the writer blocks, the one-slot queue fills, and
    // the next route send sheds.
    let mut victim = Client::connect(&server);
    let heavy = QueryBatch::uniform(QueryRequest::locate(), vec![Vec::<Base>::new(); 20]);
    for id in 0..40u64 {
        victim.send_query(id, 0, &heavy);
    }

    // Healthy clients keep verifying byte-exactly while the victim rots.
    let mut healthy = Client::connect(&server);
    let batch = mixed_batch(&genome, 15, 5);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        healthy.send_query(100, 0, &batch);
        let (header, payload) = healthy.read_frame().expect("results");
        assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
        assert_eq!(payload, expected_payload(&builder, &index, &batch));
        if healthy.stats_snapshot(101).writer_shed >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "writer queue never overflowed: shed path untested"
        );
        thread::sleep(Duration::from_millis(25));
    }
    drop(victim); // unblocks the victim's writer thread immediately
    drop(healthy);
    server.stop();
}

#[test]
fn injected_faults_never_disturb_healthy_clients() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let config = ServerConfig {
        // Short idle timeout so stalled chaos connections are reaped
        // within the test's lifetime.
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);

    thread::scope(|scope| {
        // The control group: two healthy clients byte-verify every
        // response while the storm rages.
        for client_id in 0..2u64 {
            let server = &server;
            let genome = &genome;
            let index = &index;
            scope.spawn(move || {
                let mut client = Client::connect(server);
                for round in 0..12u64 {
                    let batch = mixed_batch(genome, 20, client_id * 100 + round);
                    let id = (client_id << 32) | round;
                    client.send_query(id, 0, &batch);
                    let (header, payload) = client.read_frame().expect("response");
                    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
                    assert_eq!(header.request_id, id);
                    assert_eq!(
                        payload,
                        expected_payload(&builder, index, &batch),
                        "healthy client {client_id} diverged during the fault storm"
                    );
                }
            });
        }

        // The storm: every frame sabotaged per a seeded plan, each on
        // its own sacrificial connection. Chaos clients assert nothing
        // about their own answers — only that the server outlives them.
        let server_ref = &server;
        let genome_ref = &genome;
        scope.spawn(move || {
            let mut plan = FaultPlan::new(1234, 1.0);
            let mut stalled = Vec::new();
            for i in 0..40u64 {
                let batch = mixed_batch(genome_ref, 6, 9000 + i);
                let mut payload = Vec::new();
                wire::encode_query_batch(&batch, &mut payload).expect("encodable");
                let frame = wire::query_frame(i, 0, &payload);
                let fault = plan.decide(frame.len());
                let mut chaos = Client::connect(server_ref);
                let _ = chaos.stream.write_all(&fault.wire_bytes(&frame));
                if fault.stalls() {
                    stalled.push(chaos); // park it for the reaper
                } else if !fault.disconnects() {
                    // Corrupt frames may draw ERROR, RESULTS to a
                    // different question, or a hangup; just drain one
                    // response bounded in time, never asserting.
                    let _ = chaos
                        .stream
                        .set_read_timeout(Some(Duration::from_millis(300)));
                    let _ = chaos.read_frame();
                }
                // Truncate faults drop the connection here.
            }
            // Outlive the idle timeout so every parked connection is
            // reaped by the server, not by this drop.
            thread::sleep(Duration::from_millis(500));
            for mut conn in stalled {
                // A reaped connection reads EOF, not an answer.
                let _ = conn
                    .stream
                    .set_read_timeout(Some(Duration::from_millis(300)));
                let mut byte = [0u8; 1];
                assert!(
                    matches!(conn.stream.read(&mut byte), Ok(0)) || {
                        // Allow a late RST instead of clean EOF.
                        matches!(conn.stream.read(&mut byte), Ok(0) | Err(_))
                    },
                    "stalled connection was never reaped"
                );
            }
        });
    });

    // The storm reaped stalls and the server is still fully coherent.
    let mut probe = Client::connect(&server);
    let stats = probe.stats_snapshot(999);
    assert!(
        stats.conns_reaped >= 1,
        "no stalled connection was reaped: {stats:?}"
    );
    let batch = mixed_batch(&genome, 10, 77);
    probe.send_query(1000, 0, &batch);
    let (header, payload) = probe.read_frame().expect("post-storm results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(payload, expected_payload(&builder, &index, &batch));
    drop(probe);
    // stop() joins every thread: a leaked connection thread from any
    // injected fault would hang the drain and fail the suite.
    server.stop();
}

#[test]
fn partial_writes_and_short_reads_hit_typed_wire_errors() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let config = ServerConfig {
        idle_timeout: Some(Duration::from_millis(250)),
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);

    // A header split across three TCP segments with pauses between
    // them must reassemble into a normal byte-exact response — the
    // poll-read path cannot mistake a slow segment for a torn frame.
    let mut client = Client::connect(&server);
    let batch = mixed_batch(&genome, 10, 6);
    let mut payload = Vec::new();
    wire::encode_query_batch(&batch, &mut payload).expect("encodable");
    let frame = wire::query_frame(5, 0, &payload);
    for chunk in [&frame[..4], &frame[4..9], &frame[9..]] {
        client.send_raw(chunk);
        client.stream.flush().expect("flush");
        thread::sleep(Duration::from_millis(40));
    }
    let (header, got) = client.read_frame().expect("reassembled results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(got, expected_payload(&builder, &index, &batch));
    drop(client);

    // payload_len larger than the stream ever delivers: the reader
    // waits, the idle timeout reaps, the client sees EOF — and the
    // reap is counted.
    let mut short = Client::connect(&server);
    short.send_raw(&wire::encode_header(Opcode::Stats, 8, 64));
    short.send_raw(&[0u8; 10]); // 54 promised bytes never arrive
    let mut byte = [0u8; 1];
    let _ = short.stream.set_read_timeout(Some(Duration::from_secs(5)));
    assert!(
        matches!(short.stream.read(&mut byte), Ok(0) | Err(_)),
        "short-read connection was answered instead of reaped"
    );
    drop(short);

    // A header truncated by a hangup (partial write then close) kills
    // only that connection.
    let mut torn = Client::connect(&server);
    torn.send_raw(&wire::encode_header(Opcode::Query, 9, 4)[..7]);
    drop(torn);

    let mut probe = Client::connect(&server);
    let stats = probe.stats_snapshot(999);
    assert!(stats.conns_reaped >= 1, "short read was not reaped");
    probe.send_query(10, 0, &batch);
    let (header, got) = probe.read_frame().expect("results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(got, expected_payload(&builder, &index, &batch));
    drop(probe);
    server.stop();
}

#[test]
fn busy_storm_answers_every_frame_and_recovers() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let config = ServerConfig {
        queue_depth: 1,
        linger: Duration::ZERO,
        max_frame_len: 16 << 20,
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);
    let mut client = Client::connect(&server);

    // A burst far past the 1-slot queue: every frame must draw either
    // RESULTS or BUSY — nothing dropped silently, no disconnect.
    let slow = QueryBatch::uniform(QueryRequest::locate(), vec![Vec::<Base>::new(); 40]);
    let quick = QueryBatch::new().count(genome.seq().slice(0, 8));
    client.send_query(0, 0, &slow);
    for id in 1..=20u64 {
        client.send_query(id, 0, &quick);
    }
    let mut answered = 0;
    let mut busy = 0;
    for _ in 0..21 {
        let (header, _) = client.read_frame().expect("an answer per frame");
        match Opcode::from_byte(header.opcode).expect("known opcode") {
            Opcode::Results => answered += 1,
            Opcode::Busy => busy += 1,
            other => panic!("unexpected {other:?} in a BUSY storm"),
        }
    }
    assert!(busy >= 1, "the storm never tripped backpressure");
    assert_eq!(answered + busy, 21);

    // After the storm the same connection serves normally.
    let batch = mixed_batch(&genome, 10, 8);
    client.send_query(100, 0, &batch);
    let (header, payload) = client.read_frame().expect("post-storm results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(payload, expected_payload(&builder, &index, &batch));
    drop(client);
    server.stop();
}

#[test]
fn stats_opcode_survives_the_fault_storm() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let config = ServerConfig {
        // Short idle timeout so stalled chaos connections are reaped
        // within the test's lifetime.
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    };
    let server = TestServer::start(Arc::clone(&index), builder, config);

    thread::scope(|scope| {
        // The control group: a healthy monitor polls STATS throughout
        // the storm. Every reply must decode, counters must stay
        // monotone, and the heap attribution published at bind must
        // keep summing exactly — a torn STATS frame on another
        // connection can never bleed into this one.
        let server_ref = &server;
        scope.spawn(move || {
            let mut monitor = Client::connect(server_ref);
            let mut last = monitor.stats_snapshot(0);
            for round in 1..=12u64 {
                thread::sleep(Duration::from_millis(25));
                let stats = monitor.stats_snapshot(round);
                assert!(
                    stats.connections >= last.connections
                        && stats.errors >= last.errors
                        && stats.conns_reaped >= last.conns_reaped,
                    "counters went backwards during the storm: {last:?} -> {stats:?}"
                );
                assert_eq!(
                    stats.heap_total,
                    stats.heap_k_occ_checkpoints
                        + stats.heap_k_occ_deltas
                        + stats.heap_k_occ_codes
                        + stats.heap_one_step_occ
                        + stats.heap_sa_samples
                        + stats.heap_rank_bits
                        + stats.heap_other,
                    "heap attribution stopped summing mid-storm"
                );
                // The snapshot counters are process-startup facts set
                // by the binary; an in-process bind reports zero.
                assert_eq!(stats.snapshot_loaded, 0);
                assert_eq!(stats.snapshot_rejected, 0);
                last = stats;
            }
        });

        // The storm: STATS frames sabotaged per a seeded plan — torn
        // headers, truncated frames, flipped bytes, stalls — each on a
        // sacrificial connection that asserts nothing about its own
        // answer.
        scope.spawn(move || {
            let mut plan = FaultPlan::new(4321, 1.0);
            let mut stalled = Vec::new();
            for i in 0..40u64 {
                let frame = wire::frame(Opcode::Stats, i, &[]);
                let fault = plan.decide(frame.len());
                let mut chaos = Client::connect(server_ref);
                let _ = chaos.stream.write_all(&fault.wire_bytes(&frame));
                if fault.stalls() {
                    stalled.push(chaos); // park it for the reaper
                } else if !fault.disconnects() {
                    let _ = chaos
                        .stream
                        .set_read_timeout(Some(Duration::from_millis(300)));
                    let _ = chaos.read_frame();
                }
            }
            // A STATS frame towing an unexpected payload still answers
            // (the payload is ignored), rather than wedging the reader.
            let mut junk = Client::connect(server_ref);
            junk.send_raw(&wire::frame(Opcode::Stats, 999, b"junk payload"));
            let (header, payload) = junk.read_frame().expect("stats reply to junk");
            assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::StatsReply));
            wire::decode_stats(&payload).expect("decodable under storm");
            // Outlive the idle timeout so parked connections are
            // reaped by the server, not by this drop.
            thread::sleep(Duration::from_millis(500));
            drop(stalled);
        });
    });

    // Post-storm coherence: STATS still serves, and so do queries,
    // byte-verified.
    let mut probe = Client::connect(&server);
    let stats = probe.stats_snapshot(5000);
    assert!(stats.connections >= 40, "storm connections unaccounted");
    let batch = mixed_batch(&genome, 10, 91);
    probe.send_query(5001, 0, &batch);
    let (header, payload) = probe.read_frame().expect("post-storm results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(payload, expected_payload(&builder, &index, &batch));
    drop(probe);
    server.stop();
}

#[test]
fn concurrent_shutdowns_are_idempotent_and_join_cleanly() {
    let genome = toy_genome();
    let builder = EngineBuilder::new().k(2);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&index),
        builder,
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let handle_a = server.handle().expect("handle");
    let handle_b = server.handle().expect("handle");
    let addr = handle_a.addr();
    let server_thread = thread::spawn(move || server.run());

    // Traffic before the race, so the drain has a live connection and
    // verified in-flight state to finish.
    let mut client = Client {
        stream: TcpStream::connect(addr).expect("connect loopback"),
    };
    let batch = mixed_batch(&genome, 20, 17);
    client.send_query(1, 0, &batch);
    let (header, payload) = client.read_frame().expect("pre-drain results");
    assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
    assert_eq!(payload, expected_payload(&builder, &index, &batch));

    // The race: two handles shut down at the same instant. Both calls
    // must return (no deadlock, no panic) and the drain must happen
    // exactly once — `run()` returning Ok is the join-cleanly claim.
    let barrier = std::sync::Barrier::new(2);
    thread::scope(|scope| {
        for handle in [&handle_a, &handle_b] {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                handle.shutdown();
            });
        }
    });
    server_thread
        .join()
        .expect("server thread")
        .expect("drain exits clean");

    // Late shutdowns after the drain completed are no-ops, mirroring a
    // second SIGTERM landing on an already-draining process.
    handle_a.shutdown();
    handle_b.shutdown();
}
