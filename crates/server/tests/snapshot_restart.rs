//! Process-level warm-restart acceptance: a real `exma-server` binary
//! writing and reloading its `--snapshot-path` snapshot.
//!
//! The claims under test are the ISSUE 9 acceptance criteria: a warm
//! restart demonstrably skips the rebuild (the readiness line reports a
//! warm load whose time beats the cold build time), warm answers are
//! byte-identical to the cold server's, a corrupted snapshot is
//! rejected typed on stderr and falls back to a rebuild that still
//! serves verified results, the STATS counters report
//! `snapshot_loaded`/`snapshot_rejected` truthfully, and SIGTERM —
//! even racing a second SIGTERM — drains to exit code 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use exma_engine::{EngineBuilder, QueryBatch, QueryRequest};
use exma_genome::{Base, Genome, GenomeProfile, SeededRng};
use exma_server::wire::{self, FrameHeader, Opcode, HEADER_LEN};

const SIGTERM: i32 = 15;

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

fn sigterm(child: &Child) {
    let rc = unsafe { kill(child.id() as i32, SIGTERM) };
    assert_eq!(rc, 0, "kill(SIGTERM) failed");
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "exma_restart_{}_{}_{tag}.exma",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    path
}

/// A running `exma-server` process with its parsed readiness line.
struct ServerProcess {
    child: Child,
    addr: String,
    /// The parenthesized readiness suffix: `cold start, index built in
    /// 12.3 ms` or `warm start, snapshot loaded in 4.5 ms`.
    startup: String,
    stderr: mpsc::Receiver<String>,
}

impl ServerProcess {
    /// Spawns the release/debug test binary with `extra` CLI arguments
    /// on an ephemeral port and waits for its readiness line.
    fn start(extra: &[&str]) -> ServerProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_exma-server"))
            .args(["--profile", "toy", "--len", "120000", "--port", "0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn exma-server");

        // Drain stderr continuously so the child never blocks on a full
        // pipe; lines are collected for post-exit assertions.
        let stderr_pipe = child.stderr.take().expect("stderr piped");
        let (stderr_tx, stderr) = mpsc::channel();
        thread::spawn(move || {
            for line in BufReader::new(stderr_pipe).lines().map_while(Result::ok) {
                let _ = stderr_tx.send(line);
            }
        });

        // The readiness line arrives once the index is built or loaded;
        // a bounded wait turns a wedged startup into a test failure
        // instead of a suite hang.
        let stdout = child.stdout.take().expect("stdout piped");
        let (ready_tx, ready_rx) = mpsc::channel();
        thread::spawn(move || {
            for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                let _ = ready_tx.send(line);
            }
        });
        let line = ready_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("readiness line before timeout");
        let rest = line
            .strip_prefix("exma-server listening on ")
            .unwrap_or_else(|| panic!("unexpected readiness line {line:?}"));
        let (addr, suffix) = rest.split_once(" (").expect("startup suffix");
        let startup = suffix.strip_suffix(')').expect("closing paren").to_string();
        ServerProcess {
            child,
            addr: addr.to_string(),
            startup,
            stderr,
        }
    }

    /// SIGTERMs the process and asserts the drain: exit code 0 and the
    /// `drained; exiting` farewell on stderr. Returns all stderr lines.
    fn terminate(mut self) -> Vec<String> {
        sigterm(&self.child);
        let status = self.child.wait().expect("wait for server");
        assert!(status.success(), "drain exited {status:?}");
        let lines: Vec<String> = self.stderr.iter().collect();
        assert!(
            lines.iter().any(|l| l == "drained; exiting"),
            "no drain farewell in {lines:?}"
        );
        lines
    }
}

/// The startup suffix's timing: the trailing `NNN.N ms` float.
fn startup_ms(startup: &str) -> f64 {
    startup
        .strip_suffix(" ms")
        .and_then(|s| s.rsplit(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable startup suffix {startup:?}"))
}

/// A blocking one-frame-at-a-time client, as in the loopback suites.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        Client {
            stream: TcpStream::connect(addr).expect("connect to server process"),
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write frame");
    }

    fn read_frame(&mut self) -> (FrameHeader, Vec<u8>) {
        let mut header_bytes = [0u8; HEADER_LEN];
        self.stream
            .read_exact(&mut header_bytes)
            .expect("frame header");
        let header =
            wire::decode_header(&header_bytes, usize::MAX).expect("server frames well-formed");
        let mut payload = vec![0u8; header.payload_len as usize];
        self.stream.read_exact(&mut payload).expect("frame payload");
        (header, payload)
    }

    /// Runs `batch` and returns the raw RESULTS payload bytes.
    fn results_payload(&mut self, request_id: u64, batch: &QueryBatch) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::encode_query_batch(batch, &mut payload).expect("encodable batch");
        self.send_raw(&wire::query_frame(request_id, 0, &payload));
        let (header, payload) = self.read_frame();
        assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Results));
        assert_eq!(header.request_id, request_id);
        payload
    }

    fn stats(&mut self, request_id: u64) -> wire::StatsSnapshot {
        self.send_raw(&wire::frame(Opcode::Stats, request_id, &[]));
        let (header, payload) = self.read_frame();
        assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::StatsReply));
        wire::decode_stats(&payload).expect("stats payload")
    }
}

/// The genome the spawned servers synthesize (`--profile toy --len
/// 120000`, default seed), for building oracle batches and indexes.
fn server_genome() -> Genome {
    let mut profile = GenomeProfile::toy();
    profile.len = 120_000;
    Genome::synthesize(&profile, 42)
}

/// A mixed-op batch in the loopback suites' style.
fn mixed_batch(genome: &Genome, total: usize, seed: u64) -> QueryBatch {
    let mut rng = SeededRng::new(seed);
    let mut batch = QueryBatch::new();
    for i in 0..total {
        let pattern: Vec<Base> = if i % 17 == 0 {
            Vec::new()
        } else {
            let len = rng.range(1, 30);
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                genome.seq().slice(start, len)
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        };
        match i % 4 {
            0 => batch.push(QueryRequest::Count, pattern),
            1 => batch.push(QueryRequest::locate(), pattern),
            2 => batch.push(QueryRequest::locate_capped(rng.range(0, 8) as u32), pattern),
            _ => batch.push(QueryRequest::Interval, pattern),
        }
    }
    batch
}

#[test]
fn warm_restart_skips_the_rebuild_and_serves_identical_bytes() {
    let snapshot = temp_path("warm");
    let snapshot_arg = snapshot.to_str().expect("utf-8 temp path");
    let genome = server_genome();
    let batches: Vec<QueryBatch> = (0..4).map(|i| mixed_batch(&genome, 25, 300 + i)).collect();

    // Cold run: no snapshot exists yet, so the server builds, writes
    // the snapshot, and reports a cold start.
    let cold = ServerProcess::start(&["--snapshot-path", snapshot_arg]);
    assert!(
        cold.startup.starts_with("cold start, index built in "),
        "expected a cold start, got {:?}",
        cold.startup
    );
    let build_ms = startup_ms(&cold.startup);
    let mut client = Client::connect(&cold.addr);
    let cold_payloads: Vec<Vec<u8>> = batches
        .iter()
        .enumerate()
        .map(|(i, b)| client.results_payload(i as u64, b))
        .collect();
    let stats = client.stats(50);
    assert_eq!(stats.snapshot_loaded, 0, "cold start claimed a load");
    assert_eq!(stats.snapshot_rejected, 0);
    let cold_heap = stats.heap_total;
    drop(client);
    cold.terminate();
    assert!(snapshot.exists(), "cold run wrote no snapshot");

    // Warm run: the snapshot verifies, the rebuild is skipped, and the
    // readiness line proves it — warm load faster than the cold build.
    let warm = ServerProcess::start(&["--snapshot-path", snapshot_arg]);
    assert!(
        warm.startup.starts_with("warm start, snapshot loaded in "),
        "expected a warm start, got {:?}",
        warm.startup
    );
    let load_ms = startup_ms(&warm.startup);
    assert!(
        load_ms < build_ms,
        "warm load ({load_ms} ms) did not beat the cold build ({build_ms} ms)"
    );

    // Byte-identical service, and STATS heap fields reflecting the
    // loaded index (not a placeholder), with snapshot_loaded == 1.
    let mut client = Client::connect(&warm.addr);
    for (i, batch) in batches.iter().enumerate() {
        assert_eq!(
            client.results_payload(100 + i as u64, batch),
            cold_payloads[i],
            "warm batch #{i} diverged from the cold server"
        );
    }
    let stats = client.stats(150);
    assert_eq!(stats.snapshot_loaded, 1, "warm start not counted");
    assert_eq!(stats.snapshot_rejected, 0);
    assert_eq!(
        stats.heap_total, cold_heap,
        "warm heap attribution differs from the cold build's"
    );
    assert_eq!(
        stats.heap_total,
        stats.heap_k_occ_checkpoints
            + stats.heap_k_occ_deltas
            + stats.heap_k_occ_codes
            + stats.heap_one_step_occ
            + stats.heap_sa_samples
            + stats.heap_rank_bits
            + stats.heap_other,
        "warm heap fields are placeholders, not an attribution"
    );
    drop(client);
    warm.terminate();
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn corrupted_snapshot_is_rejected_and_the_rebuild_still_serves() {
    // Write a valid snapshot with exactly the server's recipe, then
    // flip one payload byte.
    let snapshot = temp_path("corrupt");
    let snapshot_arg = snapshot.to_str().expect("utf-8 temp path");
    let genome = server_genome();
    let builder = EngineBuilder::new().k(4);
    let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
    builder
        .snapshot_to(&index, &snapshot)
        .expect("seed snapshot");
    let pristine = std::fs::read(&snapshot).expect("read snapshot");
    let mut corrupt = pristine.clone();
    corrupt[pristine.len() / 2] ^= 0x20;
    std::fs::write(&snapshot, &corrupt).expect("corrupt snapshot");

    // The server must reject it typed on stderr, fall back to a cold
    // rebuild, and keep serving byte-verified answers.
    let server = ServerProcess::start(&["--snapshot-path", snapshot_arg]);
    assert!(
        server.startup.starts_with("cold start"),
        "corrupted snapshot warm-started: {:?}",
        server.startup
    );
    let mut client = Client::connect(&server.addr);
    let batch = mixed_batch(&genome, 30, 77);
    let payload = client.results_payload(1, &batch);
    let engine = builder.attach(&index).expect("attach oracle");
    let (results, _) = engine.run(&batch);
    let mut expected = Vec::new();
    wire::encode_results_range(&results, 0, results.len(), &mut expected);
    assert_eq!(payload, expected, "fallback rebuild served wrong bytes");
    let stats = client.stats(2);
    assert_eq!(stats.snapshot_rejected, 1, "rejection not counted");
    assert_eq!(stats.snapshot_loaded, 0);
    drop(client);
    let stderr = server.terminate();
    assert!(
        stderr
            .iter()
            .any(|l| l.starts_with("snapshot rejected: checksum mismatch")),
        "no typed rejection on stderr: {stderr:?}"
    );

    // The fallback refreshed the snapshot crash-safely: the file is
    // valid again and equal to the pristine image.
    assert_eq!(
        std::fs::read(&snapshot).expect("refreshed snapshot"),
        pristine,
        "rebuild did not rewrite a valid snapshot"
    );
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn racing_sigterms_still_drain_to_exit_zero() {
    // Two SIGTERMs land back to back — the second racing the drain the
    // first started. The drain must stay idempotent: exit 0, farewell
    // printed once, no hang for `wait` to trip on.
    let server = ServerProcess::start(&[]);
    let mut client = Client::connect(&server.addr);
    let genome = server_genome();
    let batch = mixed_batch(&genome, 20, 5);
    client.results_payload(1, &batch);
    sigterm(&server.child);
    sigterm(&server.child);
    drop(client);
    let stderr = server.terminate();
    assert_eq!(
        stderr.iter().filter(|l| *l == "drained; exiting").count(),
        1,
        "drain ran more than once: {stderr:?}"
    );
}
