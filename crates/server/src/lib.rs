//! # exma-server
//!
//! The network front-end of the EXMA reproduction: a dependency-free
//! binary protocol over TCP ([`wire`]) feeding the batched query
//! engine through a continuous-batching admission queue ([`batcher`]).
//!
//! The serving pipeline is decode → admit → execute → encode:
//! connection reader threads decode QUERY frames into
//! [`exma_engine::QueryBatch`]es and admit them to one bounded queue
//! ([`conn`]); a single batcher thread drains the queue, merges
//! whatever has accumulated into one batch, runs the lockstep engine
//! once, and routes each submission's slice of the pooled results back
//! to its connection ([`batcher`]). Small client submissions thereby
//! execute at engine-friendly batch sizes — the lockstep scheduler's
//! locality wins need hundreds of in-flight queries, and no single
//! network client supplies that — while a full queue answers BUSY
//! instead of buffering unboundedly.
//!
//! The pipeline is deadline-aware and drains cleanly: protocol-v2
//! QUERY frames carry a latency budget the batcher enforces (expired
//! submissions answer LATE, never an engine run), writer queues are
//! bounded (overflow sheds and disconnects, never OOMs), idle
//! connections are reaped, and [`ServerHandle::shutdown`] performs a
//! graceful drain — stop accepting, GOAWAY new queries, finish
//! everything queued, join every thread.
//!
//! ```no_run
//! use std::sync::Arc;
//! use exma_engine::EngineBuilder;
//! use exma_genome::{Genome, GenomeProfile};
//! use exma_server::{Server, ServerConfig};
//!
//! let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
//! let builder = EngineBuilder::new().k(4);
//! let index = Arc::new(builder.build_index(&genome.text_with_sentinel()).unwrap());
//! let server = Server::bind("127.0.0.1:0", index, builder, ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr().unwrap());
//! server.run().unwrap();
//! ```

pub mod batcher;
pub mod conn;
pub mod fault;
pub mod wire;

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use exma_engine::EngineBuilder;
use exma_index::KStepFmIndex;

pub use batcher::{BatcherConfig, ServerStats, Submission};
pub use conn::{ConnConfig, ConnShared, ReplyHandle};
pub use fault::{Fault, FaultPlan};
pub use wire::{Opcode, StatsSnapshot, WireError, WireOutput};

/// Every serving knob in one place, fixed at [`Server::bind`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Admission-queue capacity in submissions; a full queue answers
    /// BUSY (the backpressure bound).
    pub queue_depth: usize,
    /// The batcher's coalescing window after a batch's first
    /// submission arrives.
    pub linger: Duration,
    /// Stop coalescing a batch at this many queries.
    pub max_batch_queries: usize,
    /// Largest accepted frame payload, in bytes.
    pub max_frame_len: usize,
    /// Largest accepted per-frame query count.
    pub max_queries_per_frame: usize,
    /// Hit-cap ceiling clamped onto every locate (the resolution
    /// budget; `None` honors client caps verbatim).
    pub max_hits_ceiling: Option<u32>,
    /// Per-connection bounded writer-queue capacity, in frames;
    /// overflow sheds the frame and disconnects the slow reader.
    pub writer_queue_depth: usize,
    /// Reap a connection after this much read silence (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Server-side deadline ceiling on every submission; the effective
    /// budget is the tighter of this and the client's `deadline_us`
    /// (`None` = only client deadlines apply).
    pub default_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_depth: 1024,
            linger: Duration::from_micros(200),
            max_batch_queries: 4096,
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
            max_queries_per_frame: 4096,
            max_hits_ceiling: None,
            writer_queue_depth: 256,
            idle_timeout: Some(Duration::from_secs(60)),
            default_deadline: None,
        }
    }
}

/// A bound, not-yet-running server: the listener, the index, and the
/// engine recipe that will answer queries.
pub struct Server {
    listener: TcpListener,
    index: Arc<KStepFmIndex>,
    builder: EngineBuilder,
    config: ServerConfig,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    shared: ConnShared,
}

/// A remote control for a running [`Server`]: lets tests and signal
/// handlers stop the accept loop from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    shared: ConnShared,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Begins a graceful drain: connections answer new QUERYs with
    /// GOAWAY immediately, the accept loop is flagged down and woken
    /// with a throwaway connection, and [`Server::run`] returns once
    /// in-flight batches drain and every connection thread is joined.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag between accepts.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds `addr` and validates that `builder` can attach to
    /// `index` — a mismatched recipe fails here, not in the batcher
    /// thread after the first client connects.
    pub fn bind(
        addr: impl ToSocketAddrs,
        index: Arc<KStepFmIndex>,
        builder: EngineBuilder,
        config: ServerConfig,
    ) -> io::Result<Server> {
        builder
            .attach(&index)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(addr)?;
        let stats = Arc::new(ServerStats::default());
        // The served index is fixed for the server's lifetime, so its
        // heap attribution and strandedness are published once and
        // snapshots just read them.
        stats.record_heap(&index.heap_breakdown());
        stats.record_strandedness(index.is_bidirectional(), index.text_len());
        Ok(Server {
            listener,
            index,
            builder,
            config,
            stats,
            shutdown: Arc::new(AtomicBool::new(false)),
            shared: ConnShared::default(),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle; clone freely across threads.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
            stats: Arc::clone(&self.stats),
            shared: self.shared.clone(),
        })
    }

    /// Serves until [`ServerHandle::shutdown`]: spawns the batcher
    /// thread, then accepts connections, two threads each. On shutdown
    /// it drains — the batcher finishes everything already queued
    /// (answering GOAWAY to stragglers), then every connection thread
    /// is force-closed and joined, so returning means no thread of
    /// this server is still running.
    pub fn run(self) -> io::Result<()> {
        let (submit, queue) = mpsc::sync_channel::<Submission>(self.config.queue_depth);
        let batcher_config = BatcherConfig {
            linger: self.config.linger,
            max_batch_queries: self.config.max_batch_queries,
        };
        let conn_config = ConnConfig {
            max_frame_len: self.config.max_frame_len,
            max_queries_per_frame: self.config.max_queries_per_frame,
            max_hits_ceiling: self.config.max_hits_ceiling,
            writer_queue_depth: self.config.writer_queue_depth,
            idle_timeout: self.config.idle_timeout,
            default_deadline: self.config.default_deadline,
            bidirectional: self.builder.is_bidirectional(),
        };

        let batcher = {
            let index = Arc::clone(&self.index);
            let builder = self.builder;
            let stats = Arc::clone(&self.stats);
            let draining = Arc::clone(&self.shared.draining);
            thread::spawn(move || {
                let exec = builder.attach(&index).expect("recipe validated at bind");
                batcher::run_batcher(exec.as_ref(), &queue, batcher_config, &stats, &draining);
            })
        };

        // Every live connection: a socket clone (to force-close its
        // blocked reader at drain time) and the reader thread's handle
        // (joined at drain time — no thread outlives `run`).
        let mut conns: Vec<(Option<TcpStream>, thread::JoinHandle<()>)> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            // Reap registry entries whose threads already finished so
            // connection churn doesn't grow the registry unboundedly.
            let mut i = 0;
            while i < conns.len() {
                if conns[i].1.is_finished() {
                    let (_, done) = conns.swap_remove(i);
                    let _ = done.join();
                } else {
                    i += 1;
                }
            }
            self.stats.connections.fetch_add(1, Ordering::Relaxed);
            let peer = stream.try_clone().ok();
            let submit = submit.clone();
            let stats = Arc::clone(&self.stats);
            let shared = self.shared.clone();
            let handle = thread::spawn(move || {
                conn::handle_conn(stream, submit, stats, conn_config, shared)
            });
            conns.push((peer, handle));
        }

        // Graceful drain, in order: stop admitting (readers GOAWAY new
        // QUERYs), let the batcher finish everything already queued,
        // then force-close the readers and join every connection
        // thread. The batcher polls rather than blocking on recv, so
        // connections still holding queue senders cannot deadlock it —
        // the PR 6 retained-sender deadlock, designed out.
        self.shared.draining.store(true, Ordering::SeqCst);
        drop(submit);
        batcher
            .join()
            .map_err(|_| io::Error::other("batcher thread panicked"))?;
        self.shared.force_close.store(true, Ordering::SeqCst);
        for (peer, handle) in conns {
            if let Some(peer) = peer {
                // Unstick a reader blocked mid-read; its writer still
                // flushes queued responses before closing.
                let _ = peer.shutdown(Shutdown::Read);
            }
            let _ = handle.join();
        }
        Ok(())
    }
}
