//! The EXMA wire format: length-prefixed binary frames over TCP.
//!
//! The workspace builds fully offline, so the protocol is hand-rolled
//! over `std::net` — no serde, no protobuf. Every frame is a fixed
//! 16-byte header followed by `payload_len` payload bytes, all integers
//! little-endian:
//!
//! ```text
//! offset  size  field
//!      0     1  magic        (0xE5)
//!      1     1  version      (1 or 2)
//!      2     1  opcode       (request 0x01-0x02, response 0x81-0x86)
//!      3     1  reserved     (0 on send, ignored on receive)
//!      4     8  request_id   (echoed verbatim on every response)
//!     12     4  payload_len  (bytes following the header + extension)
//! ```
//!
//! **Protocol v2** activates the header's reserved region on QUERY
//! frames only: a version-2 QUERY header is followed by a 4-byte
//! extension carrying `deadline_us` (`u32`, `0` = no deadline) before
//! the payload proper. `payload_len` does *not* include the extension.
//! The deadline is the client's end-to-end latency budget in
//! microseconds, measured by the server from the instant the frame
//! finished arriving: a submission whose budget has already elapsed
//! when the batcher would execute it is answered with a typed LATE
//! frame (payload: `u32 elapsed_us`, `u32 budget_us`) instead of
//! burning an engine run. Version-1 frames carry no extension and no
//! deadline; servers accept both versions and echo each request's
//! version on its responses, so a v1 client never sees a v2 frame.
//!
//! A QUERY payload is a [`QueryBatch`]: `u32` query count, then per
//! query a `u8` operation (`0` count, `1` locate, `2` interval,
//! `3` search-both), for locates and search-both a `u32` hit cap
//! (`0xFFFF_FFFF` = uncapped), then a `u32` pattern length and one byte
//! per base (2-bit codes `0..=3`). A RESULTS payload mirrors
//! [`QueryResults`]: `u32` query count, then per query a `u8` tag
//! (`0` count: `u32`; `1` interval: `u32` lo, `u32` hi; `2` located:
//! `u8` truncated flag, `u32` position count, that many `u32`
//! positions; `3` both-located: the located layout, each `u32` an
//! [`exma_index::bidir::encode_hit`] strand-hit —
//! `(position << 1) | strand`, `1` = reverse). The search-both kind is
//! a *payload-kind extension*, not a protocol version: the header
//! version stays 2, and clients that never send kind 3 see
//! byte-identical traffic to before. Positions arrive sorted ascending
//! (strand-hits by `(position, strand)`), so a
//! client can byte-compare a response against a locally encoded oracle
//! run — which is exactly how the loopback tests and the load
//! generator verify the server. GOAWAY frames (empty payload) answer
//! QUERYs that arrive while the server is draining for shutdown: the
//! request was *not* executed and the client should reconnect
//! elsewhere (or later).
//!
//! Decoding never panics: every malformed input surfaces as a typed
//! [`WireError`], mirroring the engine's [`exma_engine::EngineError`]
//! discipline — a bad frame becomes an ERROR response, not a dead
//! worker thread.

use std::fmt;

use exma_engine::{QueryBatch, QueryOutput, QueryRequest, QueryResults};
use exma_genome::Base;

/// First byte of every frame.
pub const MAGIC: u8 = 0xE5;
/// Newest protocol version this build speaks (and the default for
/// frames it originates).
pub const VERSION: u8 = 2;
/// Oldest protocol version this build still accepts. v1 frames carry
/// no deadline extension and are answered with v1 responses.
pub const MIN_VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Size of the deadline extension following a v2 QUERY header.
pub const QUERY_EXT_LEN: usize = 4;
/// Default cap on `payload_len`; anything larger is rejected before
/// the payload is read, so a hostile length prefix cannot OOM the
/// server.
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;
/// Wire encoding of "no hit cap" on a locate request.
pub const UNCAPPED_WIRE: u32 = u32::MAX;

/// Frame opcodes. Requests keep the high bit clear, responses set it.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Client → server: execute the enclosed [`QueryBatch`].
    Query = 0x01,
    /// Client → server: snapshot the server's cumulative counters.
    Stats = 0x02,
    /// Server → client: the batch's encoded [`QueryResults`].
    Results = 0x81,
    /// Server → client: the admission queue was full; retry later.
    /// Carries no payload — the request was *not* executed.
    Busy = 0x82,
    /// Server → client: the request could not be decoded or executed.
    /// Payload is a UTF-8 message.
    Error = 0x83,
    /// Server → client: an encoded [`StatsSnapshot`].
    StatsReply = 0x84,
    /// Server → client: the submission's deadline elapsed before the
    /// batcher could execute it. Payload is an encoded [`LateInfo`];
    /// the request was *not* executed.
    Late = 0x85,
    /// Server → client: the server is draining for shutdown and admits
    /// no new work. Carries no payload — the request was *not*
    /// executed, and no further requests on this connection will be.
    Goaway = 0x86,
}

impl Opcode {
    /// Decodes a header's opcode byte.
    pub fn from_byte(byte: u8) -> Result<Opcode, WireError> {
        match byte {
            0x01 => Ok(Opcode::Query),
            0x02 => Ok(Opcode::Stats),
            0x81 => Ok(Opcode::Results),
            0x82 => Ok(Opcode::Busy),
            0x83 => Ok(Opcode::Error),
            0x84 => Ok(Opcode::StatsReply),
            0x85 => Ok(Opcode::Late),
            0x86 => Ok(Opcode::Goaway),
            other => Err(WireError::BadOpcode { opcode: other }),
        }
    }
}

/// Why a frame or payload failed to decode.
///
/// `#[non_exhaustive]` like [`exma_engine::EngineError`]: protocol
/// evolution adds failure shapes, and out-of-crate matches must keep a
/// wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The first header byte was not [`MAGIC`] — the peer is not
    /// speaking this protocol (or the stream lost sync).
    BadMagic {
        /// The byte received.
        byte: u8,
    },
    /// The peer speaks a protocol version this build does not.
    BadVersion {
        /// The version received.
        version: u8,
    },
    /// An opcode byte outside the defined set.
    BadOpcode {
        /// The byte received.
        opcode: u8,
    },
    /// `payload_len` exceeded the configured frame cap.
    Oversized {
        /// The announced payload length.
        len: u32,
        /// The configured cap.
        max: usize,
    },
    /// The payload ended before a field it announced.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes left in the payload.
        got: usize,
    },
    /// The payload continued past its last announced field.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// A batch announced more queries than the server admits per frame.
    TooManyQueries {
        /// The announced count.
        queries: u32,
        /// The configured per-frame cap.
        max: usize,
    },
    /// An operation byte outside `0..=3` in a QUERY payload.
    BadRequestKind {
        /// The byte received.
        kind: u8,
    },
    /// A pattern byte outside the 2-bit base codes `0..=3`.
    BadBase {
        /// The byte received.
        byte: u8,
    },
    /// A [`QueryRequest`] shape this protocol version cannot encode —
    /// the wildcard arm the engine's `#[non_exhaustive]` request enum
    /// demands.
    UnsupportedRequest,
    /// A both-strand query (kind 3) reached a server whose index only
    /// covers the forward strand. Answering it would return
    /// deterministic nonsense — the coordinate mapping classifies
    /// against a half boundary a forward-only index does not have —
    /// so the server refuses at the payload level and keeps the
    /// connection.
    NotBidirectional,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WireError::BadMagic { byte } => {
                write!(f, "bad magic byte {byte:#04x}, expected {MAGIC:#04x}")
            }
            WireError::BadVersion { version } => {
                write!(
                    f,
                    "unsupported protocol version {version}, this build speaks {MIN_VERSION}..={VERSION}"
                )
            }
            WireError::BadOpcode { opcode } => write!(f, "unknown opcode {opcode:#04x}"),
            WireError::Oversized { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte frame cap")
            }
            WireError::Truncated { needed, got } => {
                write!(
                    f,
                    "payload truncated: next field needs {needed} bytes, {got} left"
                )
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} bytes left over after the payload's last field")
            }
            WireError::TooManyQueries { queries, max } => {
                write!(
                    f,
                    "batch of {queries} queries exceeds the {max}-query frame cap"
                )
            }
            WireError::BadRequestKind { kind } => {
                write!(f, "unknown request kind {kind}, expected 0..=3")
            }
            WireError::BadBase { byte } => {
                write!(f, "pattern byte {byte} is not a 2-bit base code")
            }
            WireError::UnsupportedRequest => {
                write!(
                    f,
                    "request shape not encodable at protocol version {VERSION}"
                )
            }
            WireError::NotBidirectional => {
                write!(
                    f,
                    "both-strand query (kind 3) needs a bidirectional server; \
                     this index covers the forward strand only"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded frame header. The opcode stays a raw byte so a receiver
/// can skip the payload of an unknown opcode (its length is still
/// trustworthy) and answer with an ERROR frame instead of losing
/// stream sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The negotiated protocol version (`MIN_VERSION..=VERSION`);
    /// responses echo it so old clients never see new framing.
    pub version: u8,
    /// The raw opcode byte; validate with [`Opcode::from_byte`].
    pub opcode: u8,
    /// Client-chosen id, echoed on the matching response.
    pub request_id: u64,
    /// Payload bytes following the header (and extension, if any).
    pub payload_len: u32,
}

impl FrameHeader {
    /// `true` iff a [`QUERY_EXT_LEN`]-byte deadline extension follows
    /// this header before the payload — v2 QUERY frames only.
    pub fn has_deadline_ext(&self) -> bool {
        self.version >= 2 && self.opcode == Opcode::Query as u8
    }
}

/// Serializes a header at the current [`VERSION`] into `HEADER_LEN`
/// bytes. The caller of a v2 QUERY frame must append the deadline
/// extension itself (or use [`query_frame`], which does).
pub fn encode_header(opcode: Opcode, request_id: u64, payload_len: u32) -> [u8; HEADER_LEN] {
    encode_header_at(VERSION, opcode, request_id, payload_len)
}

/// Serializes a header at an explicit protocol version.
pub fn encode_header_at(
    version: u8,
    opcode: Opcode,
    request_id: u64,
    payload_len: u32,
) -> [u8; HEADER_LEN] {
    let mut bytes = [0u8; HEADER_LEN];
    bytes[0] = MAGIC;
    bytes[1] = version;
    bytes[2] = opcode as u8;
    bytes[4..12].copy_from_slice(&request_id.to_le_bytes());
    bytes[12..16].copy_from_slice(&payload_len.to_le_bytes());
    bytes
}

/// Deserializes and validates a header (magic, version range, frame
/// cap).
pub fn decode_header(
    bytes: &[u8; HEADER_LEN],
    max_frame_len: usize,
) -> Result<FrameHeader, WireError> {
    if bytes[0] != MAGIC {
        return Err(WireError::BadMagic { byte: bytes[0] });
    }
    if !(MIN_VERSION..=VERSION).contains(&bytes[1]) {
        return Err(WireError::BadVersion { version: bytes[1] });
    }
    let payload_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if payload_len as usize > max_frame_len {
        return Err(WireError::Oversized {
            len: payload_len,
            max: max_frame_len,
        });
    }
    Ok(FrameHeader {
        version: bytes[1],
        opcode: bytes[2],
        request_id: u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes")),
        payload_len,
    })
}

/// A whole frame at an explicit version — header, extension when the
/// version and opcode demand one (deadline 0), and payload — ready for
/// a single `write_all`.
pub fn frame_at(version: u8, opcode: Opcode, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let ext = if version >= 2 && opcode == Opcode::Query {
        QUERY_EXT_LEN
    } else {
        0
    };
    let mut out = Vec::with_capacity(HEADER_LEN + ext + payload.len());
    out.extend_from_slice(&encode_header_at(
        version,
        opcode,
        request_id,
        payload.len() as u32,
    ));
    out.resize(out.len() + ext, 0);
    out.extend_from_slice(payload);
    out
}

/// A whole frame at the current [`VERSION`]. QUERY frames get a
/// zeroed (no-deadline) extension; use [`query_frame`] to set one.
pub fn frame(opcode: Opcode, request_id: u64, payload: &[u8]) -> Vec<u8> {
    frame_at(VERSION, opcode, request_id, payload)
}

/// A v2 QUERY frame carrying `deadline_us` (`0` = no deadline) in the
/// header's extension bytes.
pub fn query_frame(request_id: u64, deadline_us: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + QUERY_EXT_LEN + payload.len());
    out.extend_from_slice(&encode_header_at(
        VERSION,
        Opcode::Query,
        request_id,
        payload.len() as u32,
    ));
    out.extend_from_slice(&deadline_us.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The LATE response payload: how far past its budget a submission was
/// when the batcher triaged it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LateInfo {
    /// Microseconds between the frame's arrival and the triage that
    /// dropped it (saturating).
    pub elapsed_us: u32,
    /// The effective budget that was exceeded: the client's
    /// `deadline_us` clamped to the server's `--default-deadline-us`
    /// ceiling, whichever is tighter.
    pub budget_us: u32,
}

/// Appends a LATE payload to `buf`.
pub fn encode_late(info: LateInfo, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&info.elapsed_us.to_le_bytes());
    buf.extend_from_slice(&info.budget_us.to_le_bytes());
}

/// Decodes a LATE payload.
pub fn decode_late(payload: &[u8]) -> Result<LateInfo, WireError> {
    let mut cursor = Cursor::new(payload);
    let info = LateInfo {
        elapsed_us: cursor.u32()?,
        budget_us: cursor.u32()?,
    };
    cursor.finish()?;
    Ok(info)
}

/// Little-endian payload reader that turns every overrun into a typed
/// [`WireError::Truncated`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let got = self.bytes.len() - self.pos;
        if got < n {
            return Err(WireError::Truncated { needed: n, got });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn finish(self) -> Result<(), WireError> {
        let extra = self.bytes.len() - self.pos;
        if extra > 0 {
            return Err(WireError::TrailingBytes { extra });
        }
        Ok(())
    }
}

/// Request-kind bytes of a QUERY payload.
const KIND_COUNT: u8 = 0;
const KIND_LOCATE: u8 = 1;
const KIND_INTERVAL: u8 = 2;
const KIND_SEARCH_BOTH: u8 = 3;

/// Result-tag bytes of a RESULTS payload.
const TAG_COUNT: u8 = 0;
const TAG_INTERVAL: u8 = 1;
const TAG_LOCATED: u8 = 2;
const TAG_BOTH_LOCATED: u8 = 3;

/// Appends a QUERY payload encoding `batch` to `buf`.
///
/// # Errors
///
/// [`WireError::UnsupportedRequest`] for request shapes newer than
/// this protocol version.
pub fn encode_query_batch(batch: &QueryBatch, buf: &mut Vec<u8>) -> Result<(), WireError> {
    buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for i in 0..batch.len() {
        match batch.request(i) {
            QueryRequest::Count => buf.push(KIND_COUNT),
            QueryRequest::Locate { max_hits } => {
                buf.push(KIND_LOCATE);
                buf.extend_from_slice(&max_hits.unwrap_or(UNCAPPED_WIRE).to_le_bytes());
            }
            QueryRequest::Interval => buf.push(KIND_INTERVAL),
            QueryRequest::SearchBoth { max_hits } => {
                buf.push(KIND_SEARCH_BOTH);
                buf.extend_from_slice(&max_hits.unwrap_or(UNCAPPED_WIRE).to_le_bytes());
            }
            _ => return Err(WireError::UnsupportedRequest),
        }
        let pattern = batch.pattern(i);
        buf.extend_from_slice(&(pattern.len() as u32).to_le_bytes());
        buf.extend(pattern.iter().map(|b| b.code()));
    }
    Ok(())
}

/// Decodes a QUERY payload into a [`QueryBatch`].
///
/// `max_queries` bounds the per-frame batch size (checked before any
/// allocation sized by the announced count), and `max_hits_ceiling`
/// clamps every locate's hit cap — the server's resolution-budget
/// knob: a deadline-conscious deployment caps how much resolver work
/// any one query can demand, and uncapped locates inherit the ceiling.
pub fn decode_query_batch(
    payload: &[u8],
    max_queries: usize,
    max_hits_ceiling: Option<u32>,
) -> Result<QueryBatch, WireError> {
    let mut cursor = Cursor::new(payload);
    let n = cursor.u32()?;
    if n as usize > max_queries {
        return Err(WireError::TooManyQueries {
            queries: n,
            max: max_queries,
        });
    }
    let mut batch = QueryBatch::new();
    let mut pattern = Vec::new();
    for _ in 0..n {
        let request = match cursor.u8()? {
            KIND_COUNT => QueryRequest::Count,
            KIND_LOCATE => {
                let cap = cursor.u32()?;
                let requested = (cap != UNCAPPED_WIRE).then_some(cap);
                let clamped = match (requested, max_hits_ceiling) {
                    (Some(c), Some(ceiling)) => Some(c.min(ceiling)),
                    (Some(c), None) => Some(c),
                    (None, ceiling) => ceiling,
                };
                QueryRequest::Locate { max_hits: clamped }
            }
            KIND_INTERVAL => QueryRequest::Interval,
            KIND_SEARCH_BOTH => {
                // Strand-agnostic hits cost the same resolver budget as
                // locates, so the ceiling clamps them identically.
                let cap = cursor.u32()?;
                let requested = (cap != UNCAPPED_WIRE).then_some(cap);
                let clamped = match (requested, max_hits_ceiling) {
                    (Some(c), Some(ceiling)) => Some(c.min(ceiling)),
                    (Some(c), None) => Some(c),
                    (None, ceiling) => ceiling,
                };
                QueryRequest::SearchBoth { max_hits: clamped }
            }
            kind => return Err(WireError::BadRequestKind { kind }),
        };
        let len = cursor.u32()? as usize;
        pattern.clear();
        for &byte in cursor.take(len)? {
            if byte > 3 {
                return Err(WireError::BadBase { byte });
            }
            pattern.push(Base::from_code(byte));
        }
        batch.push(request, &pattern);
    }
    cursor.finish()?;
    Ok(batch)
}

/// Appends a RESULTS payload for queries `lo..hi` of pooled `results`
/// to `buf` — the split half of continuous batching: the batcher
/// encodes each client's slice of the merged run straight out of the
/// shared pool, no per-client result copies.
pub fn encode_results_range(results: &QueryResults, lo: usize, hi: usize, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&((hi - lo) as u32).to_le_bytes());
    for i in lo..hi {
        match results.output(i) {
            QueryOutput::Count(n) => {
                buf.push(TAG_COUNT);
                buf.extend_from_slice(&n.to_le_bytes());
            }
            QueryOutput::Interval { lo: start, hi: end } => {
                buf.push(TAG_INTERVAL);
                buf.extend_from_slice(&start.to_le_bytes());
                buf.extend_from_slice(&end.to_le_bytes());
            }
            QueryOutput::Located { truncated } => {
                buf.push(TAG_LOCATED);
                buf.push(u8::from(truncated));
                let positions = results.positions(i);
                buf.extend_from_slice(&(positions.len() as u32).to_le_bytes());
                for &p in positions {
                    buf.extend_from_slice(&p.to_le_bytes());
                }
            }
            QueryOutput::BothLocated { truncated } => {
                buf.push(TAG_BOTH_LOCATED);
                buf.push(u8::from(truncated));
                let hits = results.positions(i);
                buf.extend_from_slice(&(hits.len() as u32).to_le_bytes());
                for &h in hits {
                    buf.extend_from_slice(&h.to_le_bytes());
                }
            }
        }
    }
}

/// One client-visible answer of a decoded RESULTS payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOutput {
    /// A count query's occurrence count.
    Count(u32),
    /// An interval query's suffix-array interval.
    Interval {
        /// First row.
        lo: u32,
        /// One past the last row.
        hi: u32,
    },
    /// A locate query's positions (sorted ascending) and whether a hit
    /// cap truncated them.
    Located {
        /// The kept positions.
        positions: Vec<u32>,
        /// `true` iff `max_hits` cut the list short.
        truncated: bool,
    },
    /// A search-both query's encoded strand-hits
    /// (`(position << 1) | strand`, sorted by `(position, strand)`) and
    /// whether a hit cap truncated them. Decode each with
    /// [`exma_index::bidir::decode_hit`].
    BothLocated {
        /// The kept encoded strand-hits.
        hits: Vec<u32>,
        /// `true` iff `max_hits` cut the list short.
        truncated: bool,
    },
}

/// Decodes a RESULTS payload.
pub fn decode_results(payload: &[u8]) -> Result<Vec<WireOutput>, WireError> {
    let mut cursor = Cursor::new(payload);
    let n = cursor.u32()?;
    let mut outputs = Vec::new();
    for _ in 0..n {
        outputs.push(match cursor.u8()? {
            TAG_COUNT => WireOutput::Count(cursor.u32()?),
            TAG_INTERVAL => WireOutput::Interval {
                lo: cursor.u32()?,
                hi: cursor.u32()?,
            },
            TAG_LOCATED => {
                let truncated = cursor.u8()? != 0;
                let count = cursor.u32()? as usize;
                let mut positions = Vec::with_capacity(count.min(payload.len() / 4));
                for _ in 0..count {
                    positions.push(cursor.u32()?);
                }
                WireOutput::Located {
                    positions,
                    truncated,
                }
            }
            TAG_BOTH_LOCATED => {
                let truncated = cursor.u8()? != 0;
                let count = cursor.u32()? as usize;
                let mut hits = Vec::with_capacity(count.min(payload.len() / 4));
                for _ in 0..count {
                    hits.push(cursor.u32()?);
                }
                WireOutput::BothLocated { hits, truncated }
            }
            kind => return Err(WireError::BadRequestKind { kind }),
        });
    }
    cursor.finish()?;
    Ok(outputs)
}

/// A point-in-time copy of the server's cumulative counters, as
/// carried by a STATS_REPLY payload. Clients sample twice and diff —
/// the load generator derives its coalescing metrics from exactly
/// such deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Connections accepted since startup.
    pub connections: u64,
    /// QUERY submissions admitted to the batching queue.
    pub submissions_admitted: u64,
    /// QUERY submissions bounced with BUSY (queue full).
    pub submissions_busy: u64,
    /// Frames rejected with ERROR (malformed payloads included).
    pub errors: u64,
    /// Merged engine runs the batcher executed.
    pub batches_run: u64,
    /// Client submissions coalesced across all merged runs
    /// (`/ batches_run` = the mean coalescing factor).
    pub submissions_coalesced: u64,
    /// Most submissions ever merged into one engine run.
    pub max_coalesced: u64,
    /// Queries executed across all merged runs.
    pub queries_executed: u64,
    /// Located positions returned across all merged runs.
    pub positions_returned: u64,
    /// Lockstep search rounds across all merged runs.
    pub search_rounds: u64,
    /// Lockstep resolver rounds across all merged runs.
    pub resolve_rounds: u64,
    /// Submissions sitting in the admission queue right now.
    pub queue_depth: u64,
    /// Total heap bytes of the served index (set once at startup; the
    /// seven fields below are its exact per-component attribution and
    /// always sum to this total).
    pub heap_total: u64,
    /// k-mer checkpoint rows (superblock rows under a two-level
    /// layout, every absolute row under the flat one).
    pub heap_k_occ_checkpoints: u64,
    /// Narrow per-block k-mer delta rows (zero under the flat layout).
    pub heap_k_occ_deltas: u64,
    /// Per-row k-mer code lanes and totals.
    pub heap_k_occ_codes: u64,
    /// The 1-step occurrence table, checkpoints and symbols.
    pub heap_one_step_occ: u64,
    /// Sampled suffix-array positions.
    pub heap_sa_samples: u64,
    /// The sampled-row rank bitvector.
    pub heap_rank_bits: u64,
    /// Everything else (k-mer C-array, marker exception list).
    pub heap_other: u64,
    /// Submissions dropped with a LATE response: their deadline
    /// elapsed before the batcher could execute them.
    pub late_dropped: u64,
    /// Response frames shed because a connection's bounded writer
    /// queue overflowed (the connection is disconnected alongside).
    pub writer_shed: u64,
    /// Connections reaped by the read/idle timeout.
    pub conns_reaped: u64,
    /// QUERY submissions answered GOAWAY during shutdown drain.
    pub goaway_sent: u64,
    /// 1 when this process warm-started from a verified snapshot
    /// (the index was loaded, not rebuilt).
    pub snapshot_loaded: u64,
    /// Snapshot files rejected at startup by the verified loader
    /// (corruption, truncation, stale version, layout mismatch), each
    /// followed by a cold rebuild.
    pub snapshot_rejected: u64,
    /// 1 when the served index is bidirectional (doubled-text,
    /// strand-agnostic search enabled), 0 for forward-only.
    pub bidir_enabled: u64,
    /// Length in symbols of the text the index actually holds —
    /// `2n + 1` for a bidirectional index over an `n`-base reference,
    /// the reference's sentinel-terminated length otherwise. Paired
    /// with `bidir_enabled` so a client can report the doubled-text
    /// cost without knowing the genome.
    pub bidir_text_len: u64,
}

impl StatsSnapshot {
    /// The snapshot's fields in wire order. New counters append at the
    /// end precisely because the count-prefixed encoding lets older
    /// clients keep reading the prefix they know — the heap fields
    /// (PR 7), the robustness counters (PR 8) and the strandedness
    /// pair (this PR) all used that latitude.
    fn fields(&self) -> [u64; 28] {
        [
            self.connections,
            self.submissions_admitted,
            self.submissions_busy,
            self.errors,
            self.batches_run,
            self.submissions_coalesced,
            self.max_coalesced,
            self.queries_executed,
            self.positions_returned,
            self.search_rounds,
            self.resolve_rounds,
            self.queue_depth,
            self.heap_total,
            self.heap_k_occ_checkpoints,
            self.heap_k_occ_deltas,
            self.heap_k_occ_codes,
            self.heap_one_step_occ,
            self.heap_sa_samples,
            self.heap_rank_bits,
            self.heap_other,
            self.late_dropped,
            self.writer_shed,
            self.conns_reaped,
            self.goaway_sent,
            self.snapshot_loaded,
            self.snapshot_rejected,
            self.bidir_enabled,
            self.bidir_text_len,
        ]
    }
}

/// Appends a STATS_REPLY payload to `buf`: a `u32` field count, then
/// that many `u64` counters. The explicit count lets a newer server
/// append counters without breaking older clients, which read the
/// prefix they know.
pub fn encode_stats(stats: &StatsSnapshot, buf: &mut Vec<u8>) {
    let fields = stats.fields();
    buf.extend_from_slice(&(fields.len() as u32).to_le_bytes());
    for field in fields {
        buf.extend_from_slice(&field.to_le_bytes());
    }
}

/// Decodes a STATS_REPLY payload, tolerating counters appended by
/// newer servers.
pub fn decode_stats(payload: &[u8]) -> Result<StatsSnapshot, WireError> {
    let mut cursor = Cursor::new(payload);
    let announced = cursor.u32()? as usize;
    let mut fields = [0u64; 28];
    if announced < fields.len() {
        return Err(WireError::Truncated {
            needed: fields.len() * 8,
            got: announced * 8,
        });
    }
    for field in &mut fields {
        *field = u64::from_le_bytes(cursor.take(8)?.try_into().expect("8 bytes"));
    }
    for _ in fields.len()..announced {
        cursor.take(8)?;
    }
    cursor.finish()?;
    let [connections, submissions_admitted, submissions_busy, errors, batches_run, submissions_coalesced, max_coalesced, queries_executed, positions_returned, search_rounds, resolve_rounds, queue_depth, heap_total, heap_k_occ_checkpoints, heap_k_occ_deltas, heap_k_occ_codes, heap_one_step_occ, heap_sa_samples, heap_rank_bits, heap_other, late_dropped, writer_shed, conns_reaped, goaway_sent, snapshot_loaded, snapshot_rejected, bidir_enabled, bidir_text_len] =
        fields;
    Ok(StatsSnapshot {
        connections,
        submissions_admitted,
        submissions_busy,
        errors,
        batches_run,
        submissions_coalesced,
        max_coalesced,
        queries_executed,
        positions_returned,
        search_rounds,
        resolve_rounds,
        queue_depth,
        heap_total,
        heap_k_occ_checkpoints,
        heap_k_occ_deltas,
        heap_k_occ_codes,
        heap_one_step_occ,
        heap_sa_samples,
        heap_rank_bits,
        heap_other,
        late_dropped,
        writer_shed,
        conns_reaped,
        goaway_sent,
        snapshot_loaded,
        snapshot_rejected,
        bidir_enabled,
        bidir_text_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::alphabet::parse_bases;

    fn sample_batch() -> QueryBatch {
        let base = |s: &str| parse_bases(s).unwrap();
        QueryBatch::new()
            .count(base("ACGT"))
            .locate(base("GG"))
            .locate_capped(base("T"), 7)
            .interval(base(""))
    }

    fn sample_both_batch() -> QueryBatch {
        let base = |s: &str| parse_bases(s).unwrap();
        QueryBatch::new()
            .search_both(base("CATA"))
            .search_both_capped(base("A"), 7)
            .locate(base("GA"))
            .count(base("TAG"))
    }

    #[test]
    fn search_both_requests_round_trip_and_clamp_like_locates() {
        let batch = sample_both_batch();
        let mut payload = Vec::new();
        encode_query_batch(&batch, &mut payload).unwrap();
        assert_eq!(decode_query_batch(&payload, 4096, None).unwrap(), batch);

        let clamped = decode_query_batch(&payload, 4096, Some(5)).unwrap();
        assert_eq!(clamped.request(0), QueryRequest::search_both_capped(5));
        assert_eq!(clamped.request(1), QueryRequest::search_both_capped(5));
        let loose = decode_query_batch(&payload, 4096, Some(1000)).unwrap();
        assert_eq!(loose.request(0), QueryRequest::search_both_capped(1000));
        assert_eq!(loose.request(1), QueryRequest::search_both_capped(7));
    }

    #[test]
    fn search_both_results_round_trip_with_strand_bits() {
        use exma_engine::EngineBuilder;
        use exma_genome::genome::text_from_str;
        use exma_index::bidir::{decode_hit, Strand};

        let text = text_from_str("CATAGACATAGA").unwrap();
        let builder = EngineBuilder::new().k(2).bidirectional(true);
        let index = builder.build_index(&text).unwrap();
        let engine = builder.attach(&index).unwrap();
        let batch = sample_both_batch();
        let (results, _) = engine.run(&batch);

        let mut payload = Vec::new();
        encode_results_range(&results, 0, results.len(), &mut payload);
        let outputs = decode_results(&payload).unwrap();
        match &outputs[0] {
            WireOutput::BothLocated { hits, truncated } => {
                assert!(!truncated);
                assert_eq!(&hits[..], results.positions(0));
                // "CATA" occurs forward at 0 and 6; its revcomp "TATG"
                // does not occur — forward tags only here.
                let decoded: Vec<(u32, Strand)> = hits.iter().map(|&h| decode_hit(h)).collect();
                assert_eq!(decoded, vec![(0, Strand::Forward), (6, Strand::Forward)]);
            }
            other => panic!("expected BothLocated, got {other:?}"),
        }
        assert!(matches!(
            &outputs[1],
            WireOutput::BothLocated { hits, .. } if !hits.is_empty()
        ));
        // Plain requests on the same wire keep their plain tags.
        assert!(matches!(&outputs[2], WireOutput::Located { .. }));
        assert!(matches!(&outputs[3], WireOutput::Count(_)));
    }

    #[test]
    fn header_round_trips() {
        let bytes = encode_header(Opcode::Query, 0xDEAD_BEEF_0042, 96);
        let header = decode_header(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(header.version, VERSION);
        assert_eq!(header.opcode, Opcode::Query as u8);
        assert_eq!(Opcode::from_byte(header.opcode), Ok(Opcode::Query));
        assert_eq!(header.request_id, 0xDEAD_BEEF_0042);
        assert_eq!(header.payload_len, 96);
        assert!(header.has_deadline_ext());
    }

    #[test]
    fn v1_headers_decode_without_a_deadline_extension() {
        let bytes = encode_header_at(1, Opcode::Query, 7, 12);
        let header = decode_header(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(header.version, 1);
        assert!(!header.has_deadline_ext());
        // Responses never carry the extension, at either version.
        let bytes = encode_header(Opcode::Results, 7, 12);
        let header = decode_header(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert!(!header.has_deadline_ext());
    }

    #[test]
    fn query_frame_places_the_deadline_in_the_extension_bytes() {
        let built = query_frame(9, 1500, b"pp");
        assert_eq!(built.len(), HEADER_LEN + QUERY_EXT_LEN + 2);
        let header = decode_header(
            built[..HEADER_LEN].try_into().unwrap(),
            DEFAULT_MAX_FRAME_LEN,
        )
        .unwrap();
        assert!(header.has_deadline_ext());
        assert_eq!(header.payload_len, 2, "extension is not payload");
        let ext: [u8; QUERY_EXT_LEN] = built[HEADER_LEN..HEADER_LEN + QUERY_EXT_LEN]
            .try_into()
            .unwrap();
        assert_eq!(u32::from_le_bytes(ext), 1500);
        assert_eq!(&built[HEADER_LEN + QUERY_EXT_LEN..], b"pp");
        // The generic builder zeroes the extension (no deadline).
        assert_eq!(frame(Opcode::Query, 9, b"pp")[HEADER_LEN..][..4], [0; 4]);
        // v1 query frames carry no extension at all.
        assert_eq!(frame_at(1, Opcode::Query, 9, b"pp").len(), HEADER_LEN + 2);
    }

    #[test]
    fn late_info_round_trips_and_rejects_short_payloads() {
        let info = LateInfo {
            elapsed_us: 2_000_000,
            budget_us: 1_000,
        };
        let mut payload = Vec::new();
        encode_late(info, &mut payload);
        assert_eq!(decode_late(&payload).unwrap(), info);
        assert_eq!(
            decode_late(&payload[..5]),
            Err(WireError::Truncated { needed: 4, got: 1 })
        );
        payload.push(0);
        assert_eq!(
            decode_late(&payload),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn header_rejects_magic_version_and_oversize() {
        let good = encode_header(Opcode::Query, 1, 64);
        let mut bad = good;
        bad[0] = 0x00;
        assert_eq!(
            decode_header(&bad, DEFAULT_MAX_FRAME_LEN),
            Err(WireError::BadMagic { byte: 0 })
        );
        let mut bad = good;
        bad[1] = 9;
        assert_eq!(
            decode_header(&bad, DEFAULT_MAX_FRAME_LEN),
            Err(WireError::BadVersion { version: 9 })
        );
        let mut bad = good;
        bad[1] = 0;
        assert_eq!(
            decode_header(&bad, DEFAULT_MAX_FRAME_LEN),
            Err(WireError::BadVersion { version: 0 })
        );
        assert_eq!(
            decode_header(&good, 10),
            Err(WireError::Oversized { len: 64, max: 10 })
        );
        // Unknown opcodes survive header decode (the receiver must be
        // able to skip the payload) but fail opcode validation.
        let mut unknown = good;
        unknown[2] = 0x7F;
        let header = decode_header(&unknown, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(
            Opcode::from_byte(header.opcode),
            Err(WireError::BadOpcode { opcode: 0x7F })
        );
    }

    #[test]
    fn query_batch_round_trips() {
        let batch = sample_batch();
        let mut payload = Vec::new();
        encode_query_batch(&batch, &mut payload).unwrap();
        let decoded = decode_query_batch(&payload, 4096, None).unwrap();
        assert_eq!(decoded, batch);
    }

    #[test]
    fn decode_clamps_locate_caps_to_the_ceiling() {
        let mut payload = Vec::new();
        encode_query_batch(&sample_batch(), &mut payload).unwrap();
        let decoded = decode_query_batch(&payload, 4096, Some(5)).unwrap();
        // Uncapped locates inherit the ceiling; tighter caps survive.
        assert_eq!(decoded.request(1), QueryRequest::locate_capped(5));
        assert_eq!(decoded.request(2), QueryRequest::locate_capped(5));
        let loose = decode_query_batch(&payload, 4096, Some(1000)).unwrap();
        assert_eq!(loose.request(2), QueryRequest::locate_capped(7));
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let mut payload = Vec::new();
        encode_query_batch(&sample_batch(), &mut payload).unwrap();

        assert_eq!(
            decode_query_batch(&payload, 2, None),
            Err(WireError::TooManyQueries { queries: 4, max: 2 })
        );
        // Dropping the final byte cuts the last query's length field.
        assert_eq!(
            decode_query_batch(&payload[..payload.len() - 1], 4096, None),
            Err(WireError::Truncated { needed: 4, got: 3 })
        );
        let mut trailing = payload.clone();
        trailing.push(0);
        assert_eq!(
            decode_query_batch(&trailing, 4096, None),
            Err(WireError::TrailingBytes { extra: 1 })
        );
        let mut bad_kind = payload.clone();
        bad_kind[4] = 9; // first query's kind byte
        assert_eq!(
            decode_query_batch(&bad_kind, 4096, None),
            Err(WireError::BadRequestKind { kind: 9 })
        );
        let mut bad_base = payload.clone();
        bad_base[9] = 200; // first base of the first pattern
        assert_eq!(
            decode_query_batch(&bad_base, 4096, None),
            Err(WireError::BadBase { byte: 200 })
        );
        // A count that promises more queries than the bytes deliver.
        let mut short = Vec::new();
        short.extend_from_slice(&100u32.to_le_bytes());
        short.push(KIND_COUNT);
        assert!(matches!(
            decode_query_batch(&short, 4096, None),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn results_round_trip_through_the_pool() {
        use exma_engine::EngineBuilder;
        use exma_genome::genome::text_from_str;

        let text = text_from_str("CATAGACATAGA").unwrap();
        let builder = EngineBuilder::new().k(2);
        let index = builder.build_index(&text).unwrap();
        let engine = builder.attach(&index).unwrap();
        let batch = sample_batch();
        let (results, _) = engine.run(&batch);

        let mut full = Vec::new();
        encode_results_range(&results, 0, results.len(), &mut full);
        let outputs = decode_results(&full).unwrap();
        assert_eq!(outputs.len(), results.len());
        for (i, output) in outputs.iter().enumerate() {
            match output {
                WireOutput::Count(n) => assert_eq!(*n as usize, results.count(i)),
                WireOutput::Interval { lo, hi } => {
                    assert_eq!(results.interval(i), Some(*lo as usize..*hi as usize))
                }
                WireOutput::Located { positions, .. }
                | WireOutput::BothLocated {
                    hits: positions, ..
                } => {
                    assert_eq!(&positions[..], results.positions(i))
                }
            }
        }

        // Range encoding splits the pool exactly where the offsets say.
        let mut head = Vec::new();
        let mut tail = Vec::new();
        encode_results_range(&results, 0, 2, &mut head);
        encode_results_range(&results, 2, results.len(), &mut tail);
        assert_eq!(decode_results(&head).unwrap(), outputs[..2].to_vec());
        assert_eq!(decode_results(&tail).unwrap(), outputs[2..].to_vec());
    }

    #[test]
    fn stats_round_trip_and_tolerate_future_fields() {
        let stats = StatsSnapshot {
            connections: 3,
            submissions_admitted: 100,
            submissions_busy: 7,
            errors: 1,
            batches_run: 20,
            submissions_coalesced: 100,
            max_coalesced: 12,
            queries_executed: 800,
            positions_returned: 5000,
            search_rounds: 90,
            resolve_rounds: 40,
            queue_depth: 2,
            heap_total: 36,
            heap_k_occ_checkpoints: 8,
            heap_k_occ_deltas: 4,
            heap_k_occ_codes: 9,
            heap_one_step_occ: 6,
            heap_sa_samples: 5,
            heap_rank_bits: 3,
            heap_other: 1,
            late_dropped: 11,
            writer_shed: 2,
            conns_reaped: 4,
            goaway_sent: 6,
            snapshot_loaded: 1,
            snapshot_rejected: 2,
            bidir_enabled: 1,
            bidir_text_len: 20_001,
        };
        let mut payload = Vec::new();
        encode_stats(&stats, &mut payload);
        assert_eq!(decode_stats(&payload).unwrap(), stats);

        // A newer server appending a 29th counter still decodes.
        let mut extended = payload.clone();
        extended[0..4].copy_from_slice(&29u32.to_le_bytes());
        extended.extend_from_slice(&999u64.to_le_bytes());
        assert_eq!(decode_stats(&extended).unwrap(), stats);
        assert!(decode_stats(&payload[..8]).is_err());
    }

    #[test]
    fn frame_concatenates_header_and_payload() {
        let built = frame(Opcode::Error, 42, b"boom");
        assert_eq!(built.len(), HEADER_LEN + 4);
        let header = decode_header(
            built[..HEADER_LEN].try_into().unwrap(),
            DEFAULT_MAX_FRAME_LEN,
        )
        .unwrap();
        assert_eq!(header.request_id, 42);
        assert_eq!(&built[HEADER_LEN..], b"boom");
    }
}
