//! Per-connection frame handling: read → decode → admit, plus a
//! dedicated writer thread.
//!
//! Each accepted connection gets two threads. The *reader* owns the
//! request half: it reads frames, decodes QUERY payloads, and pushes
//! [`Submission`]s into the shared admission queue with `try_send` —
//! a full queue answers BUSY immediately instead of blocking the
//! socket (the explicit-backpressure half of continuous batching).
//! The *writer* owns the response half: it drains an unbounded channel
//! of pre-encoded frames and writes them to the socket, so the batcher
//! thread never blocks on a slow client's TCP window.
//!
//! Because responses are produced by two parties (the reader answers
//! BUSY/ERROR/STATS_REPLY itself; the batcher produces RESULTS),
//! responses are *not* globally ordered: a BUSY for a later request
//! can overtake the RESULTS of an earlier one. Every response echoes
//! its request id, so clients match by id, never by arrival order.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;

use crate::batcher::{ServerStats, Submission};
use crate::wire::{self, Opcode, WireError, HEADER_LEN};

/// Per-connection decode limits, fixed at server start.
#[derive(Debug, Clone, Copy)]
pub struct ConnConfig {
    /// Largest accepted `payload_len`.
    pub max_frame_len: usize,
    /// Largest accepted per-frame query count.
    pub max_queries_per_frame: usize,
    /// Hit-cap ceiling clamped onto every locate request (`None` =
    /// honor client caps verbatim, uncapped stays uncapped).
    pub max_hits_ceiling: Option<u32>,
}

impl Default for ConnConfig {
    fn default() -> ConnConfig {
        ConnConfig {
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
            max_queries_per_frame: 4096,
            max_hits_ceiling: None,
        }
    }
}

/// Services one connection until the peer hangs up or a framing error
/// makes the stream untrustworthy. Runs on the connection's reader
/// thread; spawns (and joins) the paired writer thread.
pub fn handle_conn(
    stream: TcpStream,
    submit: SyncSender<Submission>,
    stats: Arc<ServerStats>,
    config: ConnConfig,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let writer = thread::spawn(move || {
        let mut stream = write_half;
        for frame in reply_rx {
            if stream.write_all(&frame).is_err() {
                break;
            }
        }
        // Reader already saw EOF or gave up; mirror the close.
        let _ = stream.shutdown(Shutdown::Both);
    });

    read_loop(stream, &submit, &stats, config, &reply_tx);

    // Closing our reply sender (and dropping any Submission clones is
    // the batcher's business) ends the writer once in-flight RESULTS
    // frames drain.
    drop(reply_tx);
    let _ = writer.join();
}

/// The reader loop proper; returns when the connection is done.
fn read_loop(
    mut stream: TcpStream,
    submit: &SyncSender<Submission>,
    stats: &ServerStats,
    config: ConnConfig,
    reply_tx: &mpsc::Sender<Vec<u8>>,
) {
    let mut header_bytes = [0u8; HEADER_LEN];
    let mut payload = Vec::new();
    loop {
        match read_exact_or_eof(&mut stream, &mut header_bytes) {
            Ok(true) => {}
            // Clean EOF between frames, or a mid-header cut: either
            // way the peer is gone and there is no one to answer.
            Ok(false) | Err(_) => return,
        }
        let header = match wire::decode_header(&header_bytes, config.max_frame_len) {
            Ok(header) => header,
            Err(e) => {
                // Bad magic/version/length: the stream can no longer
                // be framed. Answer once and hang up.
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(error_frame(0, &e));
                return;
            }
        };
        payload.resize(header.payload_len as usize, 0);
        if stream.read_exact(&mut payload).is_err() {
            return; // truncated frame: peer died mid-payload
        }

        // From here the frame boundary is sound, so protocol errors
        // are answerable without losing sync.
        let opcode = match Opcode::from_byte(header.opcode) {
            Ok(opcode) => opcode,
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(error_frame(header.request_id, &e));
                continue;
            }
        };
        match opcode {
            Opcode::Query => {
                let batch = match wire::decode_query_batch(
                    &payload,
                    config.max_queries_per_frame,
                    config.max_hits_ceiling,
                ) {
                    Ok(batch) => batch,
                    Err(e) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        let _ = reply_tx.send(error_frame(header.request_id, &e));
                        continue;
                    }
                };
                // Count the queued submission before try_send: the
                // batcher may drain (and decrement) it immediately.
                stats.queue_depth.fetch_add(1, Ordering::Relaxed);
                match submit.try_send(Submission {
                    request_id: header.request_id,
                    batch,
                    reply: reply_tx.clone(),
                }) {
                    Ok(()) => {
                        stats.submissions_admitted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(_)) => {
                        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        stats.submissions_busy.fetch_add(1, Ordering::Relaxed);
                        let _ = reply_tx.send(wire::frame(Opcode::Busy, header.request_id, &[]));
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        // Batcher is gone: the server is shutting down.
                        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
            Opcode::Stats => {
                payload.clear();
                wire::encode_stats(&stats.snapshot(), &mut payload);
                let _ = reply_tx.send(wire::frame(Opcode::StatsReply, header.request_id, &payload));
            }
            // A client sending response opcodes is confused; tell it so.
            _ => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(error_frame(
                    header.request_id,
                    &WireError::BadOpcode {
                        opcode: header.opcode,
                    },
                ));
            }
        }
    }
}

/// An ERROR frame carrying the error's display string.
fn error_frame(request_id: u64, error: &WireError) -> Vec<u8> {
    wire::frame(Opcode::Error, request_id, error.to_string().as_bytes())
}

/// `read_exact` that distinguishes clean EOF at a frame boundary
/// (`Ok(false)`) from data and from mid-read failures.
fn read_exact_or_eof(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}
