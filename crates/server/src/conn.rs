//! Per-connection frame handling: read → decode → admit, plus a
//! dedicated writer thread.
//!
//! Each accepted connection gets two threads. The *reader* owns the
//! request half: it reads frames, decodes QUERY payloads, stamps their
//! arrival time and effective deadline budget, and pushes
//! [`Submission`]s into the shared admission queue with `try_send` —
//! a full queue answers BUSY immediately instead of blocking the
//! socket (the explicit-backpressure half of continuous batching).
//! The *writer* owns the response half: it drains a **bounded** channel
//! of pre-encoded frames and writes them to the socket, so the batcher
//! thread never blocks on a slow client's TCP window. When the writer
//! queue overflows — a client reading slower than it asks — the frame
//! is counted as shed and the connection is torn down: a slow reader
//! costs one bounded buffer, never unbounded memory.
//!
//! Reads poll on a short timeout so the reader can notice three things
//! a blocking read would hide: the connection went dead (writer shed
//! or write failure), the server began force-closing after a drain,
//! or the peer has been silent past the idle timeout — stalled and
//! half-dead connections are *reaped*, not kept forever.
//!
//! Because responses are produced by two parties (the reader answers
//! BUSY/ERROR/GOAWAY/STATS_REPLY itself; the batcher produces RESULTS
//! and LATE), responses are *not* globally ordered: a BUSY for a later
//! request can overtake the RESULTS of an earlier one. Every response
//! echoes its request id — and its request's protocol *version*, so a
//! v1 client only ever sees v1 frames — and clients match by id, never
//! by arrival order.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::batcher::{ServerStats, Submission};
use crate::wire::{self, Opcode, WireError, HEADER_LEN, QUERY_EXT_LEN};

/// How often blocked reads and the idle writer wake to check control
/// flags (dead, force-close, idle deadline).
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How long one `write_all` may stall on a clogged client socket
/// before the writer declares the connection dead. Without this, a
/// peer that stops draining its receive window pins the writer thread
/// in `write_all` forever and shutdown can never join it.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Per-connection decode limits and robustness knobs, fixed at server
/// start.
#[derive(Debug, Clone, Copy)]
pub struct ConnConfig {
    /// Largest accepted `payload_len`.
    pub max_frame_len: usize,
    /// Largest accepted per-frame query count.
    pub max_queries_per_frame: usize,
    /// Hit-cap ceiling clamped onto every locate request (`None` =
    /// honor client caps verbatim, uncapped stays uncapped).
    pub max_hits_ceiling: Option<u32>,
    /// Bounded writer-queue capacity in frames. Overflow sheds the
    /// frame and disconnects the client.
    pub writer_queue_depth: usize,
    /// Reap the connection after this much read inactivity (`None` =
    /// never; a stalled mid-frame peer then lives until it hangs up).
    pub idle_timeout: Option<Duration>,
    /// Server-side deadline ceiling applied to every submission: the
    /// effective budget is the tighter of this and the client's
    /// `deadline_us` (`None` = only client deadlines apply).
    pub default_deadline: Option<Duration>,
    /// Whether the served index is bidirectional. When `false`, a
    /// both-strand query (kind 3) answers a payload-level ERROR and
    /// keeps the connection — a forward-only index would return
    /// deterministic nonsense for it.
    pub bidirectional: bool,
}

impl Default for ConnConfig {
    fn default() -> ConnConfig {
        ConnConfig {
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
            max_queries_per_frame: 4096,
            max_hits_ceiling: None,
            writer_queue_depth: 256,
            idle_timeout: Some(Duration::from_secs(60)),
            default_deadline: None,
            bidirectional: false,
        }
    }
}

/// Server-wide lifecycle flags every connection watches.
#[derive(Clone, Default)]
pub struct ConnShared {
    /// Set by shutdown: new QUERYs answer GOAWAY, in-flight batches
    /// still drain.
    pub draining: Arc<AtomicBool>,
    /// Set after the batcher drained: readers exit at their next poll
    /// so the server can join every connection thread.
    pub force_close: Arc<AtomicBool>,
}

/// The batcher-facing half of a connection's writer queue: a bounded
/// `try_send` that converts overflow into a counted shed plus a dead
/// connection, never into blocking or unbounded buffering.
#[derive(Clone)]
pub struct ReplyHandle {
    tx: SyncSender<Vec<u8>>,
    dead: Arc<AtomicBool>,
}

impl ReplyHandle {
    /// Enqueues one pre-encoded frame. On overflow the frame is
    /// dropped, the shed is counted, and the connection is flagged
    /// dead — its writer shuts the socket at its next poll. Sends to
    /// an already-dead or hung-up connection are ignored: the work is
    /// done, the client just stopped listening.
    pub fn send(&self, frame: Vec<u8>, stats: &ServerStats) {
        if self.is_dead() {
            return;
        }
        match self.tx.try_send(frame) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.dead.store(true, Ordering::Relaxed);
                stats.writer_shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// `true` once the connection shed a frame or its socket failed;
    /// the batcher skips executing submissions whose reply can no
    /// longer be delivered.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }
}

/// Services one connection until the peer hangs up, a framing error
/// makes the stream untrustworthy, the idle timeout reaps it, or the
/// server force-closes. Runs on the connection's reader thread; spawns
/// (and joins) the paired writer thread.
pub fn handle_conn(
    stream: TcpStream,
    submit: SyncSender<Submission>,
    stats: Arc<ServerStats>,
    config: ConnConfig,
    shared: ConnShared,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel::<Vec<u8>>(config.writer_queue_depth.max(1));
    let dead = Arc::new(AtomicBool::new(false));
    let reply = ReplyHandle {
        tx: reply_tx,
        dead: Arc::clone(&dead),
    };

    let writer_dead = Arc::clone(&dead);
    let writer = thread::spawn(move || {
        let mut stream = write_half;
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        loop {
            match reply_rx.recv_timeout(POLL_INTERVAL) {
                Ok(frame) => {
                    if writer_dead.load(Ordering::Relaxed) || stream.write_all(&frame).is_err() {
                        writer_dead.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                // A dead connection stops flushing immediately; a live
                // one keeps waiting for the batcher's route senders.
                Err(RecvTimeoutError::Timeout) => {
                    if writer_dead.load(Ordering::Relaxed) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Reader saw EOF/gave up, or this half declared the conn dead;
        // mirror the close so the other half wakes too.
        let _ = stream.shutdown(Shutdown::Both);
    });

    read_loop(stream, &submit, &stats, config, &shared, &reply);

    // Closing our reply sender (and dropping any Submission clones is
    // the batcher's business) ends the writer once in-flight RESULTS
    // frames drain.
    drop(reply);
    let _ = writer.join();
}

/// Why a poll-read ended without filling its buffer.
enum ReadEnd {
    /// Zero bytes at a frame boundary: the peer closed cleanly.
    CleanEof,
    /// The peer was silent past the idle timeout (mid-frame counts).
    Idle,
    /// The connection was flagged dead or the server is force-closing.
    Stopped,
    /// An I/O error or a mid-frame EOF.
    Gone,
}

/// `read_exact` on a poll-timeout socket: fills `buf` or reports why
/// it could not, checking the control flags and the idle deadline at
/// every timeout tick. Clean EOF is only clean at `filled == 0` with
/// `at_boundary` — anywhere else a close is a torn frame.
fn poll_read_exact(
    stream: &mut TcpStream,
    buf: &mut [u8],
    at_boundary: bool,
    last_activity: &mut Instant,
    config: &ConnConfig,
    dead: &AtomicBool,
    shared: &ConnShared,
) -> Result<(), ReadEnd> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && at_boundary => return Err(ReadEnd::CleanEof),
            Ok(0) => return Err(ReadEnd::Gone),
            Ok(n) => {
                filled += n;
                *last_activity = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if dead.load(Ordering::Relaxed) || shared.force_close.load(Ordering::Relaxed) {
                    return Err(ReadEnd::Stopped);
                }
                if let Some(idle) = config.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        return Err(ReadEnd::Idle);
                    }
                }
            }
            Err(_) => return Err(ReadEnd::Gone),
        }
    }
    Ok(())
}

/// The reader loop proper; returns when the connection is done.
fn read_loop(
    mut stream: TcpStream,
    submit: &SyncSender<Submission>,
    stats: &ServerStats,
    config: ConnConfig,
    shared: &ConnShared,
    reply: &ReplyHandle,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let dead = Arc::clone(&reply.dead);
    let mut last_activity = Instant::now();
    let mut header_bytes = [0u8; HEADER_LEN];
    let mut payload = Vec::new();
    loop {
        // A read helper call per frame section: header, then the v2
        // QUERY deadline extension, then the payload. Idle reaping is
        // only counted once, wherever the stall happened.
        let mut read = |buf: &mut [u8], at_boundary: bool, last_activity: &mut Instant| {
            poll_read_exact(
                &mut stream,
                buf,
                at_boundary,
                last_activity,
                &config,
                &dead,
                shared,
            )
        };
        match read(&mut header_bytes, true, &mut last_activity) {
            Ok(()) => {}
            Err(ReadEnd::Idle) => {
                stats.conns_reaped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // Clean EOF between frames, a mid-header cut, or a
            // force-close: either way this connection is done.
            Err(_) => return,
        }
        let header = match wire::decode_header(&header_bytes, config.max_frame_len) {
            Ok(header) => header,
            Err(e) => {
                // Bad magic/version/length: the stream can no longer
                // be framed. Answer once (at the floor version every
                // client parses — the header's own version byte is
                // untrustworthy here) and hang up.
                stats.errors.fetch_add(1, Ordering::Relaxed);
                reply.send(error_frame(wire::MIN_VERSION, 0, &e), stats);
                return;
            }
        };
        let deadline_us = if header.has_deadline_ext() {
            let mut ext = [0u8; QUERY_EXT_LEN];
            match read(&mut ext, false, &mut last_activity) {
                Ok(()) => u32::from_le_bytes(ext),
                Err(ReadEnd::Idle) => {
                    stats.conns_reaped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(_) => return,
            }
        } else {
            0
        };
        payload.resize(header.payload_len as usize, 0);
        match read(&mut payload, false, &mut last_activity) {
            Ok(()) => {}
            Err(ReadEnd::Idle) => {
                // A peer that announced a payload longer than it ever
                // sends stalls here; the idle timeout reaps it.
                stats.conns_reaped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => return, // truncated frame: peer died mid-payload
        }
        // The submission's clock starts the instant its frame finished
        // arriving; the batcher measures the deadline from here.
        let arrival = Instant::now();

        // From here the frame boundary is sound, so protocol errors
        // are answerable without losing sync.
        let opcode = match Opcode::from_byte(header.opcode) {
            Ok(opcode) => opcode,
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                reply.send(error_frame(header.version, header.request_id, &e), stats);
                continue;
            }
        };
        match opcode {
            Opcode::Query => {
                if shared.draining.load(Ordering::Relaxed) {
                    stats.goaway_sent.fetch_add(1, Ordering::Relaxed);
                    reply.send(
                        wire::frame_at(header.version, Opcode::Goaway, header.request_id, &[]),
                        stats,
                    );
                    continue;
                }
                let batch = match wire::decode_query_batch(
                    &payload,
                    config.max_queries_per_frame,
                    config.max_hits_ceiling,
                ) {
                    Ok(batch) => batch,
                    Err(e) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        reply.send(error_frame(header.version, header.request_id, &e), stats);
                        continue;
                    }
                };
                if !config.bidirectional
                    && batch
                        .requests()
                        .iter()
                        .any(|r| matches!(r, exma_engine::QueryRequest::SearchBoth { .. }))
                {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    reply.send(
                        error_frame(
                            header.version,
                            header.request_id,
                            &WireError::NotBidirectional,
                        ),
                        stats,
                    );
                    continue;
                }
                // Count the queued submission before try_send: the
                // batcher may drain (and decrement) it immediately.
                stats.queue_depth.fetch_add(1, Ordering::Relaxed);
                match submit.try_send(Submission {
                    request_id: header.request_id,
                    version: header.version,
                    batch,
                    arrival,
                    budget: effective_budget(deadline_us, config.default_deadline),
                    reply: reply.clone(),
                }) {
                    Ok(()) => {
                        stats.submissions_admitted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(_)) => {
                        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        stats.submissions_busy.fetch_add(1, Ordering::Relaxed);
                        reply.send(
                            wire::frame_at(header.version, Opcode::Busy, header.request_id, &[]),
                            stats,
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        // The batcher already drained and exited: the
                        // server is past the point of admitting work.
                        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        stats.goaway_sent.fetch_add(1, Ordering::Relaxed);
                        reply.send(
                            wire::frame_at(header.version, Opcode::Goaway, header.request_id, &[]),
                            stats,
                        );
                    }
                }
            }
            Opcode::Stats => {
                let mut buf = Vec::new();
                wire::encode_stats(&stats.snapshot(), &mut buf);
                reply.send(
                    wire::frame_at(header.version, Opcode::StatsReply, header.request_id, &buf),
                    stats,
                );
            }
            // A client sending response opcodes is confused; tell it so.
            _ => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                reply.send(
                    error_frame(
                        header.version,
                        header.request_id,
                        &WireError::BadOpcode {
                            opcode: header.opcode,
                        },
                    ),
                    stats,
                );
            }
        }
        if reply.is_dead() {
            // The writer queue overflowed (or the socket failed) while
            // answering: stop reading so the teardown completes.
            return;
        }
    }
}

/// The effective deadline budget of a submission: the tighter of the
/// client's wire deadline (`0` = none) and the server's ceiling.
fn effective_budget(deadline_us: u32, default_deadline: Option<Duration>) -> Option<Duration> {
    let client = (deadline_us != 0).then(|| Duration::from_micros(u64::from(deadline_us)));
    match (client, default_deadline) {
        (Some(c), Some(d)) => Some(c.min(d)),
        (c, d) => c.or(d),
    }
}

/// An ERROR frame carrying the error's display string.
fn error_frame(version: u8, request_id: u64, error: &WireError) -> Vec<u8> {
    wire::frame_at(
        version,
        Opcode::Error,
        request_id,
        error.to_string().as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_budget_takes_the_tighter_bound() {
        let ms = |n| Duration::from_millis(n);
        assert_eq!(effective_budget(0, None), None);
        assert_eq!(effective_budget(5_000, None), Some(ms(5)));
        assert_eq!(effective_budget(0, Some(ms(7))), Some(ms(7)));
        assert_eq!(effective_budget(5_000, Some(ms(7))), Some(ms(5)));
        assert_eq!(effective_budget(9_000, Some(ms(7))), Some(ms(7)));
    }
}
