//! Deterministic fault injection for chaos testing the wire protocol.
//!
//! A [`FaultPlan`] is a seeded stream of sabotage decisions: given the
//! length of a frame a client is about to send, it picks what actually
//! goes on the wire — the frame intact, a torn prefix followed by a
//! hangup, a silently stalled prefix, or the frame with one byte
//! flipped. Both the chaos loopback suite and `exma-loadgen --chaos`
//! drive their misbehaving connections from this one module, so a
//! failure reproduces from its seed alone.
//!
//! The faults deliberately map one-to-one onto the failure modes the
//! server must survive: [`Fault::Truncate`] inside the header is a
//! torn header, past it a truncated payload; [`Fault::Stall`] parks a
//! half-sent frame until the idle reaper fires; [`Fault::Corrupt`]
//! exercises the decode-error paths (and, when it lands in the magic
//! byte, the unframeable-stream hangup). What every fault has in
//! common: the server must answer or drop *that* connection without
//! panicking, leaking its threads, or disturbing any other client.

use exma_genome::SeededRng;

use crate::wire::HEADER_LEN;

/// What a chaos client does to one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Put the frame on the wire untouched.
    Deliver,
    /// Send only the first `keep` bytes, then hang up. `keep` inside
    /// the header tears the header; past it, the payload (the header's
    /// `payload_len` then promises bytes that never come).
    Truncate { keep: usize },
    /// Send the first `keep` bytes, then go silent with the socket
    /// open — the stalled-read case only an idle timeout resolves.
    Stall { keep: usize },
    /// XOR one byte at `offset` with `mask`, deliver the whole frame.
    Corrupt { offset: usize, mask: u8 },
}

impl Fault {
    /// The bytes this fault actually puts on the wire for `frame`.
    pub fn wire_bytes(&self, frame: &[u8]) -> Vec<u8> {
        match *self {
            Fault::Deliver => frame.to_vec(),
            Fault::Truncate { keep } | Fault::Stall { keep } => {
                frame[..keep.min(frame.len())].to_vec()
            }
            Fault::Corrupt { offset, mask } => {
                let mut bytes = frame.to_vec();
                if let Some(byte) = bytes.get_mut(offset) {
                    *byte ^= mask;
                }
                bytes
            }
        }
    }

    /// Whether the client hangs up right after writing.
    pub fn disconnects(&self) -> bool {
        matches!(self, Fault::Truncate { .. })
    }

    /// Whether the client parks the connection open-but-silent.
    pub fn stalls(&self) -> bool {
        matches!(self, Fault::Stall { .. })
    }

    /// Whether a byte-verified RESULTS frame can still be expected.
    /// Only an untouched frame qualifies: a corrupted one may draw
    /// ERROR, BUSY, or a perfectly framed answer to a *different*
    /// question.
    pub fn expects_results(&self) -> bool {
        matches!(self, Fault::Deliver)
    }
}

/// A seeded stream of [`Fault`] decisions. Identical `(seed, rate)`
/// pairs replay the identical sabotage sequence.
#[derive(Debug)]
pub struct FaultPlan {
    rng: SeededRng,
    rate: f64,
}

impl FaultPlan {
    /// `rate` is the probability (clamped to `[0, 1]`) that any given
    /// frame is sabotaged rather than delivered.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            // Domain-separate from every other consumer of the seed so
            // chaos decisions don't correlate with workload synthesis.
            rng: SeededRng::new(seed ^ 0xFA17_FA17_FA17_FA17),
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// The fault for the next frame of `frame_len` bytes (header
    /// included). Frames too short to meaningfully sabotage are
    /// delivered.
    pub fn decide(&mut self, frame_len: usize) -> Fault {
        if frame_len < 2 || !self.rng.chance(self.rate) {
            return Fault::Deliver;
        }
        match self.rng.below(4) {
            // Torn header: the cut lands strictly inside the header.
            0 => Fault::Truncate {
                keep: self.rng.range(1, HEADER_LEN.min(frame_len)),
            },
            // Truncated payload (degrades to a torn header for
            // header-only frames): the cut lands before the end.
            1 => Fault::Truncate {
                keep: self.rng.range(1, frame_len),
            },
            2 => Fault::Stall {
                keep: self.rng.range(1, frame_len),
            },
            _ => Fault::Corrupt {
                offset: self.rng.range(0, frame_len),
                mask: 1 << self.rng.below(8),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_always_delivers() {
        let mut plan = FaultPlan::new(7, 0.0);
        for len in [2, 16, 1000] {
            assert_eq!(plan.decide(len), Fault::Deliver);
        }
    }

    #[test]
    fn full_rate_never_delivers_and_stays_in_bounds() {
        let mut plan = FaultPlan::new(7, 1.0);
        for _ in 0..500 {
            let len = 16 + 40;
            match plan.decide(len) {
                Fault::Deliver => panic!("rate 1.0 delivered a frame"),
                Fault::Truncate { keep } | Fault::Stall { keep } => {
                    assert!((1..len).contains(&keep));
                }
                Fault::Corrupt { offset, mask } => {
                    assert!(offset < len);
                    assert!(mask != 0);
                }
            }
        }
    }

    #[test]
    fn plans_replay_deterministically() {
        let mut a = FaultPlan::new(42, 0.5);
        let mut b = FaultPlan::new(42, 0.5);
        for _ in 0..200 {
            assert_eq!(a.decide(64), b.decide(64));
        }
    }

    #[test]
    fn wire_bytes_apply_the_fault() {
        let frame: Vec<u8> = (0..32).collect();
        assert_eq!(Fault::Deliver.wire_bytes(&frame), frame);
        assert_eq!(Fault::Truncate { keep: 5 }.wire_bytes(&frame), &frame[..5]);
        assert_eq!(Fault::Stall { keep: 40 }.wire_bytes(&frame), frame);
        let corrupted = Fault::Corrupt {
            offset: 3,
            mask: 0x80,
        }
        .wire_bytes(&frame);
        assert_eq!(corrupted[3], frame[3] ^ 0x80);
        assert_eq!(corrupted[..3], frame[..3]);
        assert_eq!(corrupted[4..], frame[4..]);
    }

    #[test]
    fn fault_predicates_partition_behaviors() {
        assert!(Fault::Deliver.expects_results());
        for fault in [
            Fault::Truncate { keep: 3 },
            Fault::Stall { keep: 3 },
            Fault::Corrupt { offset: 0, mask: 1 },
        ] {
            assert!(!fault.expects_results());
        }
        assert!(Fault::Truncate { keep: 3 }.disconnects());
        assert!(Fault::Stall { keep: 3 }.stalls());
        assert!(!Fault::Corrupt { offset: 0, mask: 1 }.disconnects());
    }
}
