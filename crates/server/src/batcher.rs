//! The continuous-batching admission queue.
//!
//! The engine's whole design bets on batch size: lockstep rounds only
//! amortize occurrence-table locality when many queries advance
//! together (PR 2's sweep measured the knee around a few hundred
//! queries). A network client, though, submits whatever its own
//! request stream carries — often a handful of queries per frame. The
//! batcher closes that gap the way LLM serving systems do: every
//! connection pushes its decoded submissions into one bounded queue,
//! and a single batcher thread drains whatever has accumulated, merges
//! it into one [`QueryBatch`], runs the engine once, and splits the
//! pooled results back out by each submission's query range. Clients
//! that arrive while a batch is running wait in the queue and form the
//! next batch — admission never stalls on execution until the queue
//! itself fills, at which point the connection answers BUSY
//! (backpressure with an explicit signal, not an unbounded buffer).
//!
//! A `linger` window (Kafka's `linger.ms`, by another name) lets the
//! batcher wait briefly after the first submission so concurrent
//! clients coalesce even when the engine is faster than the arrival
//! process; `linger = 0` degrades gracefully to drain-what's-there.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use exma_engine::{Executor, QueryArena, QueryBatch};

use crate::wire::{self, Opcode, StatsSnapshot};

/// One decoded QUERY frame, queued for the batcher.
pub struct Submission {
    /// The client's request id, echoed on the RESULTS frame.
    pub request_id: u64,
    /// The decoded batch (caps already clamped to the server ceiling).
    pub batch: QueryBatch,
    /// The connection's writer channel; the batcher sends the encoded
    /// RESULTS frame here. A send to a hung-up connection is ignored —
    /// the work is already done, the client just stopped listening.
    pub reply: Sender<Vec<u8>>,
}

/// Batcher knobs, fixed at server start.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// How long to keep coalescing after the first submission of a
    /// batch arrives. Zero drains only what is already queued.
    pub linger: Duration,
    /// Stop coalescing once the merged batch reaches this many
    /// queries (bounds per-batch latency and arena growth).
    pub max_batch_queries: usize,
}

impl Default for BatcherConfig {
    fn default() -> BatcherConfig {
        BatcherConfig {
            linger: Duration::from_micros(200),
            max_batch_queries: 4096,
        }
    }
}

/// Cumulative server counters, shared across connection threads and
/// the batcher. Relaxed ordering throughout: these are monitoring
/// counters, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Submissions admitted to the queue.
    pub submissions_admitted: AtomicU64,
    /// Submissions bounced with BUSY.
    pub submissions_busy: AtomicU64,
    /// Frames answered with ERROR.
    pub errors: AtomicU64,
    /// Merged engine runs executed.
    pub batches_run: AtomicU64,
    /// Submissions coalesced across all runs.
    pub submissions_coalesced: AtomicU64,
    /// Most submissions merged into one run.
    pub max_coalesced: AtomicU64,
    /// Queries executed across all runs.
    pub queries_executed: AtomicU64,
    /// Located positions returned across all runs.
    pub positions_returned: AtomicU64,
    /// Lockstep search rounds across all runs.
    pub search_rounds: AtomicU64,
    /// Resolver rounds across all runs.
    pub resolve_rounds: AtomicU64,
    /// Submissions currently queued (admitted, not yet drained).
    pub queue_depth: AtomicU64,
    /// Total heap bytes of the served index, set once at bind.
    pub heap_total: AtomicU64,
    /// k-mer checkpoint rows of the served index.
    pub heap_k_occ_checkpoints: AtomicU64,
    /// Per-block k-mer delta rows of the served index.
    pub heap_k_occ_deltas: AtomicU64,
    /// k-mer code lanes and totals of the served index.
    pub heap_k_occ_codes: AtomicU64,
    /// The served index's 1-step occurrence table.
    pub heap_one_step_occ: AtomicU64,
    /// The served index's sampled suffix-array positions.
    pub heap_sa_samples: AtomicU64,
    /// The served index's sampled-row rank bitvector.
    pub heap_rank_bits: AtomicU64,
    /// Remaining served-index bytes (C-array, marker exceptions).
    pub heap_other: AtomicU64,
}

impl ServerStats {
    /// Publishes the served index's heap attribution — called once at
    /// [`crate::Server::bind`]; the fields are static thereafter.
    pub fn record_heap(&self, heap: &exma_engine::HeapBreakdown) {
        self.heap_total
            .store(heap.total() as u64, Ordering::Relaxed);
        self.heap_k_occ_checkpoints
            .store(heap.k_occ_checkpoints as u64, Ordering::Relaxed);
        self.heap_k_occ_deltas
            .store(heap.k_occ_deltas as u64, Ordering::Relaxed);
        self.heap_k_occ_codes
            .store(heap.k_occ_codes as u64, Ordering::Relaxed);
        self.heap_one_step_occ
            .store(heap.one_step_occ as u64, Ordering::Relaxed);
        self.heap_sa_samples
            .store(heap.sa_samples as u64, Ordering::Relaxed);
        self.heap_rank_bits
            .store(heap.rank_bits as u64, Ordering::Relaxed);
        self.heap_other.store(heap.other as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy, as sent in a STATS_REPLY frame.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            submissions_admitted: self.submissions_admitted.load(Ordering::Relaxed),
            submissions_busy: self.submissions_busy.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches_run: self.batches_run.load(Ordering::Relaxed),
            submissions_coalesced: self.submissions_coalesced.load(Ordering::Relaxed),
            max_coalesced: self.max_coalesced.load(Ordering::Relaxed),
            queries_executed: self.queries_executed.load(Ordering::Relaxed),
            positions_returned: self.positions_returned.load(Ordering::Relaxed),
            search_rounds: self.search_rounds.load(Ordering::Relaxed),
            resolve_rounds: self.resolve_rounds.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            heap_total: self.heap_total.load(Ordering::Relaxed),
            heap_k_occ_checkpoints: self.heap_k_occ_checkpoints.load(Ordering::Relaxed),
            heap_k_occ_deltas: self.heap_k_occ_deltas.load(Ordering::Relaxed),
            heap_k_occ_codes: self.heap_k_occ_codes.load(Ordering::Relaxed),
            heap_one_step_occ: self.heap_one_step_occ.load(Ordering::Relaxed),
            heap_sa_samples: self.heap_sa_samples.load(Ordering::Relaxed),
            heap_rank_bits: self.heap_rank_bits.load(Ordering::Relaxed),
            heap_other: self.heap_other.load(Ordering::Relaxed),
        }
    }

    fn note_coalesced(&self, submissions: usize) {
        self.submissions_coalesced
            .fetch_add(submissions as u64, Ordering::Relaxed);
        self.max_coalesced
            .fetch_max(submissions as u64, Ordering::Relaxed);
    }
}

/// The batcher loop: drain → merge → run → split, until every sender
/// hangs up. Runs on its own thread with exclusive use of `exec`; one
/// [`QueryArena`] lives for the whole loop, so steady-state batches
/// execute allocation-free just like an embedded caller's would.
pub fn run_batcher(
    exec: &dyn Executor,
    queue: &Receiver<Submission>,
    config: BatcherConfig,
    stats: &ServerStats,
) {
    let mut merged = QueryBatch::new();
    let mut arena = QueryArena::new();
    // Per-submission routing: (request_id, end offset in `merged`, reply).
    let mut routes: Vec<(u64, usize, Sender<Vec<u8>>)> = Vec::new();
    let mut payload = Vec::new();
    let mut disconnected = false;

    while !disconnected {
        // Block for the batch's first submission; no arrivals, no work.
        let first = match queue.recv() {
            Ok(submission) => submission,
            Err(_) => return,
        };
        merged.clear();
        let mut admit = |s: Submission, merged: &mut QueryBatch| {
            stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            merged.extend_from(&s.batch);
            routes.push((s.request_id, merged.len(), s.reply));
        };
        admit(first, &mut merged);

        // Coalesce: whatever is queued, plus anything that arrives
        // within the linger window, up to the batch-size cap.
        let deadline = Instant::now() + config.linger;
        while merged.len() < config.max_batch_queries {
            let wait = deadline.saturating_duration_since(Instant::now());
            match queue.recv_timeout(wait) {
                Ok(submission) => admit(submission, &mut merged),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    // Run what we already merged, then exit.
                    disconnected = true;
                    break;
                }
            }
        }

        stats.batches_run.fetch_add(1, Ordering::Relaxed);
        stats.note_coalesced(routes.len());
        stats
            .queries_executed
            .fetch_add(merged.len() as u64, Ordering::Relaxed);

        // One engine run for the whole coalesced batch.
        let batch_stats = exec.run_into(&merged, &mut arena);
        let results = arena.results();
        stats
            .positions_returned
            .fetch_add(results.total_positions() as u64, Ordering::Relaxed);
        stats
            .search_rounds
            .fetch_add(batch_stats.rounds as u64, Ordering::Relaxed);
        stats
            .resolve_rounds
            .fetch_add(batch_stats.resolve_rounds as u64, Ordering::Relaxed);

        // Split the pooled results back out, one RESULTS frame per
        // submission, in admission order. Draining (not iterating)
        // drops each reply sender as its frame goes out — a retained
        // sender would keep the connection's writer thread alive, and
        // with it the connection's queue sender, deadlocking shutdown.
        let mut start = 0;
        for (request_id, end, reply) in routes.drain(..) {
            payload.clear();
            wire::encode_results_range(results, start, end, &mut payload);
            let _ = reply.send(wire::frame(Opcode::Results, request_id, &payload));
            start = end;
        }
    }
}
