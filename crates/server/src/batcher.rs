//! The continuous-batching admission queue.
//!
//! The engine's whole design bets on batch size: lockstep rounds only
//! amortize occurrence-table locality when many queries advance
//! together (PR 2's sweep measured the knee around a few hundred
//! queries). A network client, though, submits whatever its own
//! request stream carries — often a handful of queries per frame. The
//! batcher closes that gap the way LLM serving systems do: every
//! connection pushes its decoded submissions into one bounded queue,
//! and a single batcher thread drains whatever has accumulated, merges
//! it into one [`QueryBatch`], runs the engine once, and splits the
//! pooled results back out by each submission's query range. Clients
//! that arrive while a batch is running wait in the queue and form the
//! next batch — admission never stalls on execution until the queue
//! itself fills, at which point the connection answers BUSY
//! (backpressure with an explicit signal, not an unbounded buffer).
//!
//! A `linger` window (Kafka's `linger.ms`, by another name) lets the
//! batcher wait briefly after the first submission so concurrent
//! clients coalesce even when the engine is faster than the arrival
//! process; `linger = 0` degrades gracefully to drain-what's-there.
//!
//! Deadlines are enforced *here*, not at admission: a submission's
//! budget is checked when the batcher pulls it off the queue and
//! re-checked after the linger window, because queueing and lingering
//! are exactly where a request's budget silently drains away. An
//! expired submission answers a typed LATE frame (elapsed vs budget)
//! and never reaches the engine — load shedding that saves the whole
//! engine run a dead client would otherwise burn. Submissions whose
//! connection died (writer overflow, socket failure) are skipped the
//! same way: no reply can be delivered, so no work is done.
//!
//! On shutdown the batcher *drains*: it keeps executing whatever is
//! already queued, then exits once the queue is empty, answering any
//! last-instant stragglers with GOAWAY. It polls rather than blocks,
//! so it never deadlocks on connections that still hold queue senders
//! — the PR 6 retained-sender deadlock, designed out.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

use exma_engine::{Executor, QueryArena, QueryBatch};

use crate::conn::ReplyHandle;
use crate::wire::{self, LateInfo, Opcode, StatsSnapshot};

/// How often the idle batcher wakes to check the draining flag.
const DRAIN_POLL: Duration = Duration::from_millis(10);

/// One decoded QUERY frame, queued for the batcher.
pub struct Submission {
    /// The client's request id, echoed on the response frame.
    pub request_id: u64,
    /// The request's protocol version; the response echoes it.
    pub version: u8,
    /// The decoded batch (caps already clamped to the server ceiling).
    pub batch: QueryBatch,
    /// When the frame finished arriving — the deadline clock's zero.
    pub arrival: Instant,
    /// The effective latency budget (client deadline clamped to the
    /// server ceiling); `None` never expires.
    pub budget: Option<Duration>,
    /// The connection's bounded writer queue; the batcher sends the
    /// encoded RESULTS (or LATE) frame here.
    pub reply: ReplyHandle,
}

impl Submission {
    /// `Some(elapsed, budget)` iff the submission's budget has already
    /// elapsed — the typed payload of the LATE frame it gets instead
    /// of an engine run.
    fn expired(&self) -> Option<LateInfo> {
        let budget = self.budget?;
        let elapsed = self.arrival.elapsed();
        (elapsed > budget).then(|| LateInfo {
            elapsed_us: saturating_us(elapsed),
            budget_us: saturating_us(budget),
        })
    }
}

/// A duration in whole microseconds, saturating at `u32::MAX`.
fn saturating_us(d: Duration) -> u32 {
    d.as_micros().min(u128::from(u32::MAX)) as u32
}

/// Batcher knobs, fixed at server start.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// How long to keep coalescing after the first submission of a
    /// batch arrives. Zero drains only what is already queued.
    pub linger: Duration,
    /// Stop coalescing once the merged batch reaches this many
    /// queries (bounds per-batch latency and arena growth).
    pub max_batch_queries: usize,
}

impl Default for BatcherConfig {
    fn default() -> BatcherConfig {
        BatcherConfig {
            linger: Duration::from_micros(200),
            max_batch_queries: 4096,
        }
    }
}

/// Cumulative server counters, shared across connection threads and
/// the batcher. Relaxed ordering throughout: these are monitoring
/// counters, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Submissions admitted to the queue.
    pub submissions_admitted: AtomicU64,
    /// Submissions bounced with BUSY.
    pub submissions_busy: AtomicU64,
    /// Frames answered with ERROR.
    pub errors: AtomicU64,
    /// Merged engine runs executed.
    pub batches_run: AtomicU64,
    /// Submissions coalesced across all runs.
    pub submissions_coalesced: AtomicU64,
    /// Most submissions merged into one run.
    pub max_coalesced: AtomicU64,
    /// Queries executed across all runs.
    pub queries_executed: AtomicU64,
    /// Located positions returned across all runs.
    pub positions_returned: AtomicU64,
    /// Lockstep search rounds across all runs.
    pub search_rounds: AtomicU64,
    /// Resolver rounds across all runs.
    pub resolve_rounds: AtomicU64,
    /// Submissions currently queued (admitted, not yet drained).
    pub queue_depth: AtomicU64,
    /// Total heap bytes of the served index, set once at bind.
    pub heap_total: AtomicU64,
    /// k-mer checkpoint rows of the served index.
    pub heap_k_occ_checkpoints: AtomicU64,
    /// Per-block k-mer delta rows of the served index.
    pub heap_k_occ_deltas: AtomicU64,
    /// k-mer code lanes and totals of the served index.
    pub heap_k_occ_codes: AtomicU64,
    /// The served index's 1-step occurrence table.
    pub heap_one_step_occ: AtomicU64,
    /// The served index's sampled suffix-array positions.
    pub heap_sa_samples: AtomicU64,
    /// The served index's sampled-row rank bitvector.
    pub heap_rank_bits: AtomicU64,
    /// Remaining served-index bytes (C-array, marker exceptions).
    pub heap_other: AtomicU64,
    /// Submissions answered LATE: deadline elapsed before execution.
    pub late_dropped: AtomicU64,
    /// Response frames shed on a full bounded writer queue (each shed
    /// also disconnects its connection).
    pub writer_shed: AtomicU64,
    /// Connections reaped by the read/idle timeout.
    pub conns_reaped: AtomicU64,
    /// QUERYs answered GOAWAY while draining for shutdown.
    pub goaway_sent: AtomicU64,
    /// 1 when this process warm-started from a verified snapshot; set
    /// once at startup alongside the heap fields.
    pub snapshot_loaded: AtomicU64,
    /// Snapshot files rejected by the verified loader at startup, each
    /// followed by a cold rebuild; set once at startup.
    pub snapshot_rejected: AtomicU64,
    /// 1 when the served index is bidirectional (strand-agnostic
    /// search); set once at startup.
    pub bidir_enabled: AtomicU64,
    /// Symbol length of the indexed text (doubled for a bidirectional
    /// index); set once at startup.
    pub bidir_text_len: AtomicU64,
}

impl ServerStats {
    /// Publishes the served index's heap attribution — called once at
    /// [`crate::Server::bind`]; the fields are static thereafter.
    pub fn record_heap(&self, heap: &exma_engine::HeapBreakdown) {
        self.heap_total
            .store(heap.total() as u64, Ordering::Relaxed);
        self.heap_k_occ_checkpoints
            .store(heap.k_occ_checkpoints as u64, Ordering::Relaxed);
        self.heap_k_occ_deltas
            .store(heap.k_occ_deltas as u64, Ordering::Relaxed);
        self.heap_k_occ_codes
            .store(heap.k_occ_codes as u64, Ordering::Relaxed);
        self.heap_one_step_occ
            .store(heap.one_step_occ as u64, Ordering::Relaxed);
        self.heap_sa_samples
            .store(heap.sa_samples as u64, Ordering::Relaxed);
        self.heap_rank_bits
            .store(heap.rank_bits as u64, Ordering::Relaxed);
        self.heap_other.store(heap.other as u64, Ordering::Relaxed);
    }

    /// Publishes the served index's strandedness — called once at
    /// [`crate::Server::bind`] alongside [`ServerStats::record_heap`].
    pub fn record_strandedness(&self, bidirectional: bool, text_len: usize) {
        self.bidir_enabled
            .store(u64::from(bidirectional), Ordering::Relaxed);
        self.bidir_text_len
            .store(text_len as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy, as sent in a STATS_REPLY frame.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            submissions_admitted: self.submissions_admitted.load(Ordering::Relaxed),
            submissions_busy: self.submissions_busy.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches_run: self.batches_run.load(Ordering::Relaxed),
            submissions_coalesced: self.submissions_coalesced.load(Ordering::Relaxed),
            max_coalesced: self.max_coalesced.load(Ordering::Relaxed),
            queries_executed: self.queries_executed.load(Ordering::Relaxed),
            positions_returned: self.positions_returned.load(Ordering::Relaxed),
            search_rounds: self.search_rounds.load(Ordering::Relaxed),
            resolve_rounds: self.resolve_rounds.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            heap_total: self.heap_total.load(Ordering::Relaxed),
            heap_k_occ_checkpoints: self.heap_k_occ_checkpoints.load(Ordering::Relaxed),
            heap_k_occ_deltas: self.heap_k_occ_deltas.load(Ordering::Relaxed),
            heap_k_occ_codes: self.heap_k_occ_codes.load(Ordering::Relaxed),
            heap_one_step_occ: self.heap_one_step_occ.load(Ordering::Relaxed),
            heap_sa_samples: self.heap_sa_samples.load(Ordering::Relaxed),
            heap_rank_bits: self.heap_rank_bits.load(Ordering::Relaxed),
            heap_other: self.heap_other.load(Ordering::Relaxed),
            late_dropped: self.late_dropped.load(Ordering::Relaxed),
            writer_shed: self.writer_shed.load(Ordering::Relaxed),
            conns_reaped: self.conns_reaped.load(Ordering::Relaxed),
            goaway_sent: self.goaway_sent.load(Ordering::Relaxed),
            snapshot_loaded: self.snapshot_loaded.load(Ordering::Relaxed),
            snapshot_rejected: self.snapshot_rejected.load(Ordering::Relaxed),
            bidir_enabled: self.bidir_enabled.load(Ordering::Relaxed),
            bidir_text_len: self.bidir_text_len.load(Ordering::Relaxed),
        }
    }

    fn note_coalesced(&self, submissions: usize) {
        self.submissions_coalesced
            .fetch_add(submissions as u64, Ordering::Relaxed);
        self.max_coalesced
            .fetch_max(submissions as u64, Ordering::Relaxed);
    }
}

/// Pulls one submission's worth of bookkeeping: decrements the queue
/// depth, answers LATE if the budget already elapsed (deadline check
/// *before* linger), and returns the submission only if it is still
/// worth batching.
fn triage(sub: Submission, stats: &ServerStats) -> Option<Submission> {
    stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
    if let Some(info) = sub.expired() {
        send_late(&sub, info, stats);
        return None;
    }
    if sub.reply.is_dead() {
        // The client's connection is already torn down: nothing could
        // deliver the answer, so don't compute one.
        return None;
    }
    Some(sub)
}

fn send_late(sub: &Submission, info: LateInfo, stats: &ServerStats) {
    stats.late_dropped.fetch_add(1, Ordering::Relaxed);
    let mut payload = Vec::with_capacity(8);
    wire::encode_late(info, &mut payload);
    sub.reply.send(
        wire::frame_at(sub.version, Opcode::Late, sub.request_id, &payload),
        stats,
    );
}

/// The batcher loop: drain → triage → merge → run → split, until every
/// sender hangs up or `draining` is observed with an empty queue. Runs
/// on its own thread with exclusive use of `exec`; one [`QueryArena`]
/// lives for the whole loop, so steady-state batches execute
/// allocation-free just like an embedded caller's would.
pub fn run_batcher(
    exec: &dyn Executor,
    queue: &Receiver<Submission>,
    config: BatcherConfig,
    stats: &ServerStats,
    draining: &AtomicBool,
) {
    let mut merged = QueryBatch::new();
    let mut arena = QueryArena::new();
    let mut pending: Vec<Submission> = Vec::new();
    // Per-submission routing: (request_id, version, end offset in
    // `merged`, reply).
    let mut routes: Vec<(u64, u8, usize, ReplyHandle)> = Vec::new();
    let mut payload = Vec::new();
    let mut disconnected = false;

    'serve: while !disconnected {
        // Poll for the batch's first live submission. Polling (rather
        // than blocking on recv) is what lets a drain finish while
        // connections still hold queue senders.
        let first = loop {
            match queue.recv_timeout(DRAIN_POLL) {
                Ok(sub) => {
                    if let Some(sub) = triage(sub, stats) {
                        break sub;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if draining.load(Ordering::Relaxed) {
                        break 'serve;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break 'serve,
            }
        };
        pending.clear();
        let mut total_queries = first.batch.len();
        pending.push(first);

        // Coalesce: whatever is queued, plus anything that arrives
        // within the linger window, up to the batch-size cap.
        let deadline = Instant::now() + config.linger;
        while total_queries < config.max_batch_queries {
            let wait = deadline.saturating_duration_since(Instant::now());
            match queue.recv_timeout(wait) {
                Ok(sub) => {
                    if let Some(sub) = triage(sub, stats) {
                        total_queries += sub.batch.len();
                        pending.push(sub);
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    // Run what we already merged, then exit.
                    disconnected = true;
                    break;
                }
            }
        }

        // Deadline re-check *after* linger: the window itself consumes
        // budget, and a submission that expired waiting answers LATE
        // instead of dragging the whole batch through the engine.
        merged.clear();
        routes.clear();
        for sub in pending.drain(..) {
            if let Some(info) = sub.expired() {
                send_late(&sub, info, stats);
                continue;
            }
            if sub.reply.is_dead() {
                continue;
            }
            merged.extend_from(&sub.batch);
            routes.push((sub.request_id, sub.version, merged.len(), sub.reply));
        }
        if merged.is_empty() {
            continue; // everything expired or died; no engine run
        }

        stats.batches_run.fetch_add(1, Ordering::Relaxed);
        stats.note_coalesced(routes.len());
        stats
            .queries_executed
            .fetch_add(merged.len() as u64, Ordering::Relaxed);

        // One engine run for the whole coalesced batch.
        let batch_stats = exec.run_into(&merged, &mut arena);
        let results = arena.results();
        stats
            .positions_returned
            .fetch_add(results.total_positions() as u64, Ordering::Relaxed);
        stats
            .search_rounds
            .fetch_add(batch_stats.rounds as u64, Ordering::Relaxed);
        stats
            .resolve_rounds
            .fetch_add(batch_stats.resolve_rounds as u64, Ordering::Relaxed);

        // Split the pooled results back out, one RESULTS frame per
        // submission, in admission order. Draining (not iterating)
        // drops each reply sender as its frame goes out — a retained
        // sender would keep the connection's writer thread alive, and
        // with it the connection's queue sender, deadlocking shutdown.
        let mut start = 0;
        for (request_id, version, end, reply) in routes.drain(..) {
            payload.clear();
            wire::encode_results_range(results, start, end, &mut payload);
            reply.send(
                wire::frame_at(version, Opcode::Results, request_id, &payload),
                stats,
            );
            start = end;
        }
    }

    // Final sweep: submissions that slipped in between the last poll
    // and this exit get a typed GOAWAY, not silence.
    while let Ok(sub) = queue.try_recv() {
        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        stats.goaway_sent.fetch_add(1, Ordering::Relaxed);
        sub.reply.send(
            wire::frame_at(sub.version, Opcode::Goaway, sub.request_id, &[]),
            stats,
        );
    }
}
