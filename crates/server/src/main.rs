//! `exma-server`: synthesize a reference, build the k-step index, and
//! serve the EXMA wire protocol.
//!
//! The server announces its bound address on stdout
//! (`exma-server listening on HOST:PORT (cold|warm start, ...)`) once
//! the index is ready, so a script can wait for readiness by reading
//! one line; the suffix reports whether the index was rebuilt (cold)
//! or loaded from a verified `--snapshot-path` snapshot (warm), and
//! how long that took. Clients that want to verify responses rebuild
//! the identical reference from the same `--profile`/`--len`/`--seed`
//! (synthesis is deterministic) — which is exactly what
//! `exma-loadgen --verify` does.
//!
//! SIGTERM and SIGINT trigger a graceful drain: the server stops
//! accepting, answers new QUERYs with GOAWAY, finishes the batches
//! already queued, joins every thread, and exits 0 — `kill -TERM`
//! followed by `wait` is a clean shutdown, not a crash.
//!
//! ```text
//! cargo run --release -p exma-server -- --profile toy --port 7878
//! cargo run --release -p exma-server -- --profile human_rel --k 4 --linger-us 500
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use exma_engine::EngineBuilder;
use exma_genome::{Genome, GenomeProfile};
use exma_index::KStepFmIndex;
use exma_server::{Server, ServerConfig, ServerHandle};

const USAGE: &str = "\
exma-server: serve EXMA QueryBatches over TCP with continuous batching

USAGE:
    cargo run --release -p exma-server [-- OPTIONS]

OPTIONS:
    --profile NAME        reference profile: toy, human_rel, picea_rel,
                          pinus_rel (default: toy)
    --len N               override the profile's length in bases
    --seed N              synthesis seed (default: 42)
    --k N                 step width of the index (default: 4)
    --bidirectional       index both strands (doubled text) so clients
                          can send strand-agnostic search-both queries
    --threads N           sharded-engine worker threads (default: 1)
    --host HOST           bind address (default: 127.0.0.1)
    --port N              bind port, 0 = ephemeral (default: 7878)
    --queue-depth N       admission-queue capacity (default: 1024)
    --linger-us N         coalescing window in microseconds (default: 200)
    --max-batch N         per-run query cap for the batcher (default: 4096)
    --max-frame-len N     largest accepted frame payload (default: 1 MiB)
    --max-hits-ceiling N  clamp every locate's hit cap to N (default: none)
    --default-deadline-us N
                          server-side deadline ceiling on every query,
                          in microseconds; 0 = none (default: 0)
    --idle-timeout-ms N   reap connections silent for N ms; 0 = never
                          (default: 60000)
    --writer-queue N      per-connection writer-queue depth in frames;
                          overflow disconnects the slow reader
                          (default: 256)
    --snapshot-path FILE  persisted-index snapshot: load it if it
                          verifies (warm start, skipping the rebuild);
                          otherwise rebuild and write it crash-safely
                          (default: none — always rebuild)
    --help                print this help
";

struct Args {
    profile: String,
    len: Option<usize>,
    seed: u64,
    k: usize,
    bidirectional: bool,
    threads: usize,
    host: String,
    port: u16,
    snapshot_path: Option<PathBuf>,
    config: ServerConfig,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut args = Args {
        profile: "toy".to_string(),
        len: None,
        seed: 42,
        k: 4,
        bidirectional: false,
        threads: 1,
        host: "127.0.0.1".to_string(),
        port: 7878,
        snapshot_path: None,
        config: ServerConfig::default(),
    };
    let mut argv = argv.peekable();
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} requires a value"));
        match arg.as_str() {
            "--profile" => args.profile = value("--profile")?,
            "--len" => args.len = Some(parse_num(&value("--len")?)?),
            "--seed" => args.seed = parse_num(&value("--seed")?)?,
            "--k" => args.k = parse_num(&value("--k")?)?,
            "--bidirectional" => args.bidirectional = true,
            "--threads" => args.threads = parse_num(&value("--threads")?)?,
            "--host" => args.host = value("--host")?,
            "--port" => args.port = parse_num(&value("--port")?)?,
            "--queue-depth" => args.config.queue_depth = parse_num(&value("--queue-depth")?)?,
            "--linger-us" => {
                args.config.linger = Duration::from_micros(parse_num(&value("--linger-us")?)?)
            }
            "--max-batch" => args.config.max_batch_queries = parse_num(&value("--max-batch")?)?,
            "--max-frame-len" => args.config.max_frame_len = parse_num(&value("--max-frame-len")?)?,
            "--max-hits-ceiling" => {
                args.config.max_hits_ceiling = Some(parse_num(&value("--max-hits-ceiling")?)?)
            }
            "--default-deadline-us" => {
                let us: u64 = parse_num(&value("--default-deadline-us")?)?;
                args.config.default_deadline = (us != 0).then(|| Duration::from_micros(us));
            }
            "--idle-timeout-ms" => {
                let ms: u64 = parse_num(&value("--idle-timeout-ms")?)?;
                args.config.idle_timeout = (ms != 0).then(|| Duration::from_millis(ms));
            }
            "--writer-queue" => {
                args.config.writer_queue_depth = parse_num(&value("--writer-queue")?)?
            }
            "--snapshot-path" => {
                args.snapshot_path = Some(PathBuf::from(value("--snapshot-path")?))
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Some(args))
}

fn parse_num<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("bad number '{raw}'"))
}

/// Set by the signal handler; the watcher thread turns it into a
/// graceful drain. A handler may only do async-signal-safe work, and a
/// relaxed atomic store is exactly that.
static TERMINATE: AtomicBool = AtomicBool::new(false);

extern "C" fn on_terminate(_signum: i32) {
    TERMINATE.store(true, Ordering::Relaxed);
}

/// Installs SIGTERM/SIGINT handlers and a watcher thread that calls
/// [`ServerHandle::shutdown`] when either fires. Uses `signal(2)`
/// directly — std already links libc, and one extern declaration beats
/// a dependency this workspace otherwise does without.
#[cfg(unix)]
fn drain_on_signals(handle: ServerHandle) {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_terminate);
        signal(SIGINT, on_terminate);
    }
    thread::spawn(move || loop {
        if TERMINATE.load(Ordering::Relaxed) {
            eprintln!("signal received: draining...");
            handle.shutdown();
            return;
        }
        thread::sleep(Duration::from_millis(50));
    });
}

#[cfg(not(unix))]
fn drain_on_signals(_handle: ServerHandle) {}

/// Resolves a profile name, applying the `--len` override.
fn profile_for(name: &str, len: Option<usize>) -> Result<GenomeProfile, String> {
    let mut profile = match name {
        "toy" => GenomeProfile::toy(),
        "human_rel" => GenomeProfile::human_rel(),
        "picea_rel" => GenomeProfile::picea_rel(),
        "pinus_rel" => GenomeProfile::pinus_rel(),
        other => return Err(format!("unknown profile '{other}'")),
    };
    if let Some(len) = len {
        if len == 0 {
            return Err("--len must be positive".to_string());
        }
        profile.len = len;
    }
    Ok(profile)
}

fn run(args: &Args) -> ExitCode {
    let profile = match profile_for(&args.profile, args.len) {
        Ok(profile) => profile,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let builder = EngineBuilder::new()
        .k(args.k)
        .threads(args.threads)
        .bidirectional(args.bidirectional);

    eprintln!(
        "synthesizing {} ({} bp, seed {})...",
        profile.name, profile.len, args.seed
    );
    let genome = Genome::synthesize(&profile, args.seed);
    let text = genome.text_with_sentinel();

    // Warm path: a verified snapshot skips the index rebuild entirely.
    // Any rejection — corruption, truncation, stale version, layout or
    // reference mismatch — falls back to a cold build, which then
    // refreshes the snapshot crash-safely.
    let mut snapshot_loaded = 0u64;
    let mut snapshot_rejected = 0u64;
    let load_start = Instant::now();
    let mut warm: Option<KStepFmIndex> = None;
    // A bidirectional recipe indexes the doubled text: 2n + 1 symbols
    // for an n-base reference (the snapshot's recipe flag already gates
    // strandedness; this check catches a different reference length).
    let expected_text_len = if args.bidirectional {
        2 * (text.len() - 1) + 1
    } else {
        text.len()
    };
    if let Some(path) = args.snapshot_path.as_deref().filter(|p| p.exists()) {
        match builder.attach_from_snapshot(path) {
            Ok(index) if index.text_len() != expected_text_len => {
                eprintln!(
                    "snapshot rejected: indexes {} symbols but the synthesized reference needs {}; rebuilding",
                    index.text_len(),
                    expected_text_len
                );
                snapshot_rejected = 1;
            }
            Ok(index) => warm = Some(index),
            Err(e) => {
                eprintln!("snapshot rejected: {e}; rebuilding");
                snapshot_rejected = 1;
            }
        }
    }

    let (index, startup) = match warm {
        Some(index) => {
            let load_ms = load_start.elapsed().as_secs_f64() * 1e3;
            snapshot_loaded = 1;
            eprintln!(
                "loaded k={} index snapshot in {load_ms:.1} ms ({:.1} MiB), engine {}",
                args.k,
                index.heap_bytes() as f64 / (1024.0 * 1024.0),
                builder.descriptor(),
            );
            (
                Arc::new(index),
                format!("(warm start, snapshot loaded in {load_ms:.1} ms)"),
            )
        }
        None => {
            let build_start = Instant::now();
            let index = match builder.build_index(&text) {
                Ok(index) => index,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "built k={} index in {build_ms:.1} ms ({:.1} MiB), engine {}",
                args.k,
                index.heap_bytes() as f64 / (1024.0 * 1024.0),
                builder.descriptor(),
            );
            if let Some(path) = args.snapshot_path.as_deref() {
                // Best-effort: a failed write must not stop serving.
                match builder.snapshot_to(&index, path) {
                    Ok(()) => eprintln!("wrote index snapshot to {}", path.display()),
                    Err(e) => eprintln!("warning: cannot write snapshot: {e}"),
                }
            }
            (
                Arc::new(index),
                format!("(cold start, index built in {build_ms:.1} ms)"),
            )
        }
    };

    let server = match Server::bind((args.host.as_str(), args.port), index, builder, args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot serve on {}:{}: {e}", args.host, args.port);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // The readiness line scripts wait for — keep its prefix stable.
        // The parenthesized suffix reports cold vs warm startup and how
        // long the build or verified load took.
        Ok(addr) => println!("exma-server listening on {addr} {startup}"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.handle() {
        Ok(handle) => {
            let stats = handle.stats();
            stats
                .snapshot_loaded
                .store(snapshot_loaded, Ordering::Relaxed);
            stats
                .snapshot_rejected
                .store(snapshot_rejected, Ordering::Relaxed);
            drain_on_signals(handle);
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("drained; exiting");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(Some(args)) => run(&args),
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_default_and_parse() {
        let args = parse_args(Vec::<String>::new().into_iter())
            .unwrap()
            .unwrap();
        assert_eq!(args.profile, "toy");
        assert_eq!(args.port, 7878);
        assert!(!args.bidirectional);
        assert_eq!(args.config.queue_depth, 1024);

        let argv = [
            "--profile",
            "human_rel",
            "--len",
            "50000",
            "--seed",
            "7",
            "--k",
            "2",
            "--bidirectional",
            "--port",
            "0",
            "--queue-depth",
            "4",
            "--linger-us",
            "500",
            "--max-hits-ceiling",
            "32",
            "--default-deadline-us",
            "2500",
            "--idle-timeout-ms",
            "0",
            "--writer-queue",
            "8",
            "--snapshot-path",
            "/tmp/exma_index.snap",
        ];
        let args = parse_args(argv.iter().map(|s| s.to_string()))
            .unwrap()
            .unwrap();
        assert_eq!(args.profile, "human_rel");
        assert_eq!(args.len, Some(50_000));
        assert_eq!(args.seed, 7);
        assert_eq!(args.k, 2);
        assert!(args.bidirectional);
        assert_eq!(args.port, 0);
        assert_eq!(args.config.queue_depth, 4);
        assert_eq!(args.config.linger, Duration::from_micros(500));
        assert_eq!(args.config.max_hits_ceiling, Some(32));
        assert_eq!(
            args.config.default_deadline,
            Some(Duration::from_micros(2500))
        );
        assert_eq!(args.config.idle_timeout, None);
        assert_eq!(args.config.writer_queue_depth, 8);
        assert_eq!(
            args.snapshot_path.as_deref(),
            Some(std::path::Path::new("/tmp/exma_index.snap"))
        );
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse_args(["--frobnicate".to_string()].into_iter()).is_err());
        assert!(parse_args(["--seed".to_string(), "x".to_string()].into_iter()).is_err());
        assert!(parse_args(["--len".to_string()].into_iter()).is_err());
        assert!(parse_args(["--snapshot-path".to_string()].into_iter()).is_err());
        assert!(parse_args(["--help".to_string()].into_iter())
            .unwrap()
            .is_none());
        assert!(profile_for("nope", None).is_err());
        assert!(profile_for("toy", Some(0)).is_err());
        assert_eq!(profile_for("toy", Some(123)).unwrap().len, 123);
    }
}
