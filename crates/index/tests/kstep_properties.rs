//! Acceptance property of the k-step index: for k ∈ {1, 2, 4},
//! `KStepFmIndex` must answer `count()` and `locate()` byte-identically to
//! the 1-step `FmIndex` and the naive oracle on hundreds of random
//! patterns — crucially including lengths with `len % k != 0` (the
//! mixed k-step/1-step tail path), lengths below k (pure tail), empty
//! patterns and absent patterns.

use exma_genome::{Base, Genome, GenomeProfile, SeededRng};
use exma_index::{naive, FmIndex, KStepBuildConfig, KStepFmIndex};

fn toy_genome() -> Genome {
    Genome::synthesize(&GenomeProfile::toy(), 42)
}

/// Patterns mixing guaranteed hits (sampled from the reference) with
/// uniform-random strings that mostly do not occur. Lengths are drawn from
/// `1..40`, so every residue class mod 2 and mod 4 is exercised, plus a
/// sprinkle of empty patterns.
fn pattern_mix(genome: &Genome, total: usize, seed: u64) -> Vec<Vec<Base>> {
    let mut rng = SeededRng::new(seed);
    (0..total)
        .map(|i| {
            if i % 97 == 0 {
                return Vec::new(); // the empty pattern matches every row
            }
            let len = rng.range(1, 40);
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                genome.seq().slice(start, len)
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        })
        .collect()
}

#[test]
fn kstep_agrees_with_one_step_and_naive_on_600_patterns() {
    let genome = toy_genome();
    let one = FmIndex::from_genome(&genome);
    let patterns = pattern_mix(&genome, 600, 23);

    for k in [1usize, 2, 4] {
        let kstep = KStepFmIndex::from_genome(&genome, k);
        let mut tails = 0usize;
        let mut zero_hits = 0usize;
        for (i, pattern) in patterns.iter().enumerate() {
            let expect = one.count(pattern);
            assert_eq!(kstep.count(pattern), expect, "k={k}, pattern #{i}");
            assert_eq!(
                kstep.locate(pattern),
                one.locate(pattern),
                "k={k}, pattern #{i}"
            );
            tails += usize::from(!pattern.is_empty() && pattern.len() % k != 0);
            zero_hits += usize::from(expect == 0);
        }
        // The mix must actually exercise the tail path and the no-hit path.
        if k > 1 {
            assert!(tails >= 150, "k={k}: only {tails} tail-length patterns");
        }
        assert!(zero_hits >= 100, "k={k}: only {zero_hits} absent patterns");
    }
}

#[test]
fn kstep_locate_agrees_with_naive_scan() {
    let genome = toy_genome();
    let patterns = pattern_mix(&genome, 200, 29);
    for k in [2usize, 4] {
        let kstep = KStepFmIndex::from_genome(&genome, k);
        for (i, pattern) in patterns.iter().enumerate() {
            assert_eq!(
                kstep.locate(pattern),
                naive::occurrences(genome.seq(), pattern),
                "k={k}, pattern #{i}"
            );
        }
    }
}

#[test]
fn sampling_rates_do_not_change_kstep_answers() {
    let genome = Genome::synthesize(
        &GenomeProfile {
            len: 2_000,
            ..GenomeProfile::toy()
        },
        3,
    );
    let text = genome.text_with_sentinel();
    let one = FmIndex::from_text(&text);
    let patterns = pattern_mix(&genome, 100, 31);
    for k in [2usize, 4] {
        for (occ_rate, k_occ_rate) in [(1, 1), (3, 5), (64, 256), (5_000, 5_000)] {
            let kstep = KStepFmIndex::from_text_with_config(
                &text,
                KStepBuildConfig {
                    k,
                    occ_sample_rate: occ_rate,
                    sa_sample_rate: 17,
                    k_occ_sample_rate: k_occ_rate,
                    // Keep the superblock span provable at coarse spacings.
                    superblock_rate: (65_535 / occ_rate).clamp(1, 16),
                    ..KStepBuildConfig::for_k(k)
                },
            )
            .unwrap();
            for pattern in &patterns {
                assert_eq!(
                    kstep.count(pattern),
                    one.count(pattern),
                    "k={k}, rates ({occ_rate}, {k_occ_rate})"
                );
                assert_eq!(
                    kstep.locate(pattern),
                    one.locate(pattern),
                    "k={k}, rates ({occ_rate}, {k_occ_rate})"
                );
            }
        }
    }
}

#[test]
fn locate_into_matches_locate_across_k() {
    let genome = toy_genome();
    let mut buf = Vec::new();
    for k in [1usize, 2, 4] {
        let kstep = KStepFmIndex::from_genome(&genome, k);
        for pattern in pattern_mix(&genome, 60, 37) {
            kstep.locate_into(&pattern, &mut buf);
            assert_eq!(buf, kstep.locate(&pattern), "k={k}");
        }
    }
}

#[test]
fn human_rel_scale_kstep_answers_queries() {
    // A 300 kbp build catches scaling bugs (checkpoint indexing, u16 code
    // overflow) that a 10 kbp toy cannot.
    let genome = Genome::synthesize(
        &GenomeProfile {
            len: 300_000,
            ..GenomeProfile::human_rel()
        },
        5,
    );
    let one = FmIndex::from_genome(&genome);
    let k4 = KStepFmIndex::from_genome(&genome, 4);
    for (i, pattern) in pattern_mix(&genome, 60, 41).iter().enumerate() {
        assert_eq!(k4.count(pattern), one.count(pattern), "pattern #{i}");
        assert_eq!(k4.locate(pattern), one.locate(pattern), "pattern #{i}");
    }
}
