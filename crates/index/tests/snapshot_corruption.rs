//! Seeded corruption sweep over the snapshot loader.
//!
//! The robustness contract of `exma_index::snapshot`: a corrupted file
//! can never panic the loader and never yields an index — every
//! mutation is caught as a typed [`SnapshotError`], after which a
//! rebuild from the text (the server's fallback path) serves results
//! identical to a brute-force oracle. The sweep drives well over 200
//! seeded mutations — single-bit flips, truncations at arbitrary
//! offsets, torn tmp-style prefixes, and stale-version headers — over
//! valid snapshot images.

use exma_genome::{Base, Genome, GenomeProfile, SeededRng};
use exma_index::{decode_snapshot, encode_snapshot, naive, KStepFmIndex, SnapshotError};

fn toy_genome(seed: u64) -> Genome {
    let mut profile = GenomeProfile::toy();
    profile.len = 2500;
    Genome::synthesize(&profile, seed)
}

/// One corruption to apply to a pristine snapshot image.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Flip one bit anywhere in the file.
    BitFlip { offset: usize, bit: u8 },
    /// Cut the file at an arbitrary offset — an interrupted copy.
    Truncate { keep: usize },
    /// A torn write: the prefix landed, the tail reads as zeros. This
    /// is what a non-atomic writer could leave; the atomic
    /// tmp+rename protocol never exposes it at the real path, but the
    /// loader must still reject it if it ever appears.
    Torn { prefix: usize },
    /// A snapshot from a future (or garbled) format revision.
    StaleVersion { version: u32 },
}

impl Mutation {
    fn draw(rng: &mut SeededRng, len: usize) -> Mutation {
        match rng.below(4) {
            0 => Mutation::BitFlip {
                offset: rng.below(len as u64) as usize,
                bit: rng.below(8) as u8,
            },
            1 => Mutation::Truncate {
                keep: rng.below(len as u64) as usize,
            },
            2 => Mutation::Torn {
                prefix: rng.below(len as u64) as usize,
            },
            _ => Mutation::StaleVersion {
                version: 2 + rng.below(1000) as u32,
            },
        }
    }

    /// Applies the mutation; `None` when it would be a no-op (e.g. a
    /// torn write whose zero tail matches the original bytes).
    fn apply(self, pristine: &[u8]) -> Option<Vec<u8>> {
        let mut bytes = pristine.to_vec();
        match self {
            Mutation::BitFlip { offset, bit } => bytes[offset] ^= 1 << bit,
            Mutation::Truncate { keep } => bytes.truncate(keep),
            Mutation::Torn { prefix } => {
                for b in &mut bytes[prefix..] {
                    *b = 0;
                }
            }
            Mutation::StaleVersion { version } => {
                bytes[8..12].copy_from_slice(&version.to_le_bytes());
            }
        }
        if bytes == pristine {
            return None;
        }
        Some(bytes)
    }
}

/// A handful of reference patterns whose counts the fallback index must
/// reproduce against a brute-force scan of the genome.
fn oracle_patterns(genome: &Genome, rng: &mut SeededRng) -> Vec<Vec<Base>> {
    let mut patterns = Vec::new();
    for _ in 0..4 {
        let len = rng.range(4, 16);
        let start = rng.below((genome.len() - len) as u64) as usize;
        patterns.push(genome.seq().slice(start, len));
    }
    patterns
}

#[test]
fn corruption_sweep_never_panics_and_never_yields_an_index() {
    let genome = toy_genome(11);
    let text = genome.text_with_sentinel();
    let mut rng = SeededRng::new(0x534E_4150 ^ 9);

    // Two images with different recipes so flips also hit two-level
    // checkpoint geometry; mutations alternate between them.
    let index_default = KStepFmIndex::from_text(&text, 4);
    let index_k2 = KStepFmIndex::from_text(&text, 2);
    let images = [encode_snapshot(&index_default), encode_snapshot(&index_k2)];
    let patterns = oracle_patterns(&genome, &mut rng);

    let mut rejected = 0usize;
    let mut cases = 0usize;
    while cases < 240 {
        let pristine = &images[cases % 2];
        let mutation = Mutation::draw(&mut rng, pristine.len());
        let Some(corrupt) = mutation.apply(pristine) else {
            continue;
        };
        cases += 1;

        // The loader must return a typed error — any Ok here means a
        // corrupted file produced an index, the one outcome the
        // verification pipeline exists to make impossible.
        let err = match decode_snapshot(&corrupt, None) {
            Err(e) => e,
            Ok(_) => panic!("{mutation:?} yielded an index"),
        };
        match err {
            SnapshotError::BadMagic
            | SnapshotError::VersionMismatch { .. }
            | SnapshotError::ChecksumMismatch { .. }
            | SnapshotError::Truncated { .. }
            | SnapshotError::LayoutMismatch { .. }
            | SnapshotError::Malformed { .. } => {}
            other => panic!("{mutation:?} produced non-corruption error {other:?}"),
        }
        rejected += 1;

        // The error Display path must also hold for every variant.
        assert!(!err.to_string().is_empty());
    }
    assert_eq!(rejected, cases);

    // The fallback the server takes after any rejection: rebuild from
    // the text and serve. Verify it against the brute-force oracle.
    let rebuilt = KStepFmIndex::from_text(&text, 4);
    for pattern in &patterns {
        assert_eq!(rebuilt.count(pattern), naive::count(genome.seq(), pattern));
        let mut positions = rebuilt.locate(pattern);
        positions.sort_unstable();
        assert_eq!(positions, naive::occurrences(genome.seq(), pattern));
    }
    assert_eq!(rebuilt, index_default);
}

#[test]
fn every_single_byte_flip_in_the_header_is_rejected() {
    // Exhaustive over the 48-byte header: whatever byte corruption
    // lands on — magic, version, recipe, text length, section count —
    // the load fails typed. This is the region where a silent
    // acceptance would be worst: a flipped recipe rebuilds a
    // *different* index that would serve wrong-geometry answers.
    let text = toy_genome(12).text_with_sentinel();
    let index = KStepFmIndex::from_text(&text, 3);
    let pristine = encode_snapshot(&index);
    for offset in 0..48 {
        for bit in 0..8 {
            let mut corrupt = pristine.clone();
            corrupt[offset] ^= 1 << bit;
            assert!(
                decode_snapshot(&corrupt, None).is_err(),
                "header byte {offset} bit {bit} accepted"
            );
        }
    }
}

#[test]
fn every_truncation_length_is_rejected() {
    // Exhaustive truncation sweep on a small image: every possible cut
    // point is a typed rejection, not a panic.
    let mut profile = GenomeProfile::toy();
    profile.len = 400;
    let text = Genome::synthesize(&profile, 13).text_with_sentinel();
    let index = KStepFmIndex::from_text(&text, 2);
    let pristine = encode_snapshot(&index);
    for keep in 0..pristine.len() {
        let err = decode_snapshot(&pristine[..keep], None).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::Malformed { .. }
            ),
            "keep {keep}: {err:?}"
        );
    }
    // And the pristine image still loads — the sweep did not depend on
    // a broken baseline.
    assert_eq!(decode_snapshot(&pristine, None).unwrap(), index);
}
