//! The acceptance property of PR 1: an `FmIndex` built from a synthetic
//! `GenomeProfile::toy()` genome must answer `count()` identically to a
//! naive substring scan for over a thousand random patterns — including
//! patterns with zero occurrences — and every `locate()` position must
//! verify against the reference text.

use exma_genome::{Base, ErrorProfile, Genome, GenomeProfile, SeededRng, ShortReadSimulator};
use exma_index::{naive, FmBuildConfig, FmIndex};

fn toy_genome() -> Genome {
    Genome::synthesize(&GenomeProfile::toy(), 42)
}

/// Patterns mixing guaranteed hits (sampled from the reference, which the
/// toy profile's repeat structure often makes multi-occurrence) with
/// uniform-random strings that mostly do not occur at all.
fn pattern_mix(genome: &Genome, total: usize, seed: u64) -> Vec<Vec<Base>> {
    let mut rng = SeededRng::new(seed);
    (0..total)
        .map(|i| {
            let len = rng.range(4, 40);
            if i % 2 == 0 {
                let start = rng.range(0, genome.len() - len + 1);
                genome.seq().slice(start, len)
            } else {
                (0..len).map(|_| rng.base()).collect()
            }
        })
        .collect()
}

#[test]
fn count_agrees_with_naive_scan_on_1k_patterns() {
    let genome = toy_genome();
    let fm = FmIndex::from_genome(&genome);
    let patterns = pattern_mix(&genome, 1200, 7);

    let mut zero_hits = 0usize;
    let mut multi_hits = 0usize;
    for (i, pattern) in patterns.iter().enumerate() {
        let expect = naive::count(genome.seq(), pattern);
        assert_eq!(fm.count(pattern), expect, "pattern #{i}");
        zero_hits += usize::from(expect == 0);
        multi_hits += usize::from(expect > 1);
    }
    // The mix must actually exercise both extremes, or the test is weaker
    // than it claims.
    assert!(zero_hits >= 100, "only {zero_hits} absent patterns tested");
    assert!(
        multi_hits >= 100,
        "only {multi_hits} repeated patterns tested"
    );
}

#[test]
fn locate_positions_verify_against_the_text() {
    let genome = toy_genome();
    let fm = FmIndex::from_genome(&genome);
    for (i, pattern) in pattern_mix(&genome, 300, 11).iter().enumerate() {
        let hits = fm.locate(pattern);
        assert_eq!(
            hits,
            naive::occurrences(genome.seq(), pattern),
            "pattern #{i}"
        );
        for &pos in &hits {
            assert_eq!(
                &genome.seq().slice(pos as usize, pattern.len()),
                pattern,
                "pattern #{i} reported at {pos} but the text differs"
            );
        }
    }
}

#[test]
fn count_is_exact_across_sampling_rates() {
    let genome = Genome::synthesize(
        &GenomeProfile {
            len: 2_000,
            ..GenomeProfile::toy()
        },
        3,
    );
    let patterns = pattern_mix(&genome, 100, 13);
    for (occ_rate, sa_rate) in [(1, 1), (3, 5), (64, 32), (128, 64), (5_000, 5_000)] {
        let fm = FmIndex::from_text_with_config(
            &genome.text_with_sentinel(),
            FmBuildConfig {
                occ_sample_rate: occ_rate,
                sa_sample_rate: sa_rate,
                // Keep the superblock span provable at coarse spacings.
                superblock_rate: (65_535 / occ_rate).clamp(1, 16),
                ..FmBuildConfig::default()
            },
        )
        .unwrap();
        for pattern in &patterns {
            assert_eq!(
                fm.count(pattern),
                naive::count(genome.seq(), pattern),
                "occ rate {occ_rate}, sa rate {sa_rate}"
            );
            assert_eq!(
                fm.locate(pattern),
                naive::occurrences(genome.seq(), pattern),
                "occ rate {occ_rate}, sa rate {sa_rate}"
            );
        }
    }
}

#[test]
fn error_free_short_reads_map_back_to_their_origin() {
    // The paper's seeding workload end to end: simulate exact reads, query
    // the index, and demand the true origin among the reported positions
    // (modulo strand: reverse reads are located via reverse complement).
    let genome = toy_genome();
    let fm = FmIndex::from_genome(&genome);
    let sim = ShortReadSimulator::new(48, ErrorProfile::error_free());
    for read in sim.simulate(&genome, 200, 17) {
        let forward: Vec<Base> = if read.origin.reverse {
            read.bases.reverse_complement().to_vec()
        } else {
            read.bases.to_vec()
        };
        let hits = fm.locate(&forward);
        assert!(
            hits.contains(&(read.origin.start as u32)),
            "read {} from {} not found (hits: {hits:?})",
            read.id,
            read.origin.start
        );
    }
}

#[test]
fn human_rel_scale_index_answers_queries() {
    // One order-of-magnitude-larger build (300 kbp) to catch scaling bugs
    // that a 10 kbp toy cannot, while keeping test runtime in milliseconds.
    let genome = Genome::synthesize(
        &GenomeProfile {
            len: 300_000,
            ..GenomeProfile::human_rel()
        },
        5,
    );
    let fm = FmIndex::from_genome(&genome);
    for (i, pattern) in pattern_mix(&genome, 50, 19).iter().enumerate() {
        assert_eq!(
            fm.count(pattern),
            naive::count(genome.seq(), pattern),
            "pattern #{i}"
        );
    }
}
