//! Lockstep batched resolution of suffix-array intervals — `locate`'s
//! counterpart to the batch engine's lockstep backward search.
//!
//! The per-row path ([`FmIndex::resolve_row`]) LF-walks each interval row
//! serially: every step loads the occurrence block the previous step's
//! answer points at, so the whole walk is one dependent cache-miss chain —
//! the exact DRAM pattern the paper's measurements blame for FM-index
//! latency (§II-C), resurfacing in `locate` after the batched `count`
//! path eliminated it there. This module converts those serial walks into
//! overlapped independent streams: every row of one or many intervals
//! becomes a *cursor* `(row, steps, output slot)` on a shared worklist,
//! and each round (1) checks every live cursor against the sampled
//! suffix-array marks, retiring resolved cursors into their output slot,
//! (2) LF-steps the survivors, and (3) while handling cursor `j`,
//! software-prefetches the occurrence block *and* the mark word cursor
//! `j + d` will touch — so by the time the loop reaches a cursor, its
//! lines are in flight or resident. Optionally each round first sorts the
//! cursors by row, so the round's table accesses walk memory in address
//! order (block locality) instead of jumping wherever the previous LF
//! landed.
//!
//! Intervals can carry a **hit cap** (`max_hits` of a
//! `QueryRequest::Locate`): once an interval has retired its cap's worth
//! of cursors, its surviving cursors are dropped from the worklist at the
//! end of that round, bounding both the output and the remaining LF work.
//! The kept positions follow the deterministic round-based rule of
//! [`FmIndex::resolve_range_capped_into`], so capped answers are
//! identical across every schedule, engine, and thread count.
//!
//! Uncapped answers are identical to the per-row path by construction —
//! the same rows take the same LF-walks, only interleaved — and each
//! interval's output is sorted ascending per the
//! [`FmIndex::resolve_range_into`] contract; both properties are
//! property-tested at the engine layer.

use std::ops::Range;

use exma_genome::Symbol;

use crate::fm::FmIndex;

/// How many cursors ahead of the one being stepped the resolver
/// prefetches when [`ResolveConfig::prefetch_distance`] is left to the
/// preset. Matches the batch engine's query look-ahead: far enough that a
/// DRAM fetch (~100 ns) completes before the round loop reaches the
/// cursor, near enough that the lines are not evicted again first.
pub const DEFAULT_RESOLVE_PREFETCH_DISTANCE: usize = 8;

/// Hit-cap sentinel: an interval with this cap keeps every position.
pub const UNCAPPED: u32 = u32::MAX;

/// Scheduling knobs of a [`BatchResolver`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolveConfig {
    /// Sort live cursors by suffix-array row each round, so the round's
    /// occurrence-table and mark-bitset accesses walk memory in address
    /// order instead of the order the previous round's LF steps produced.
    pub sort_by_row: bool,
    /// While retiring or stepping cursor `j`, prefetch the occ block and
    /// mark word cursor `j + d` will touch (`0` disables prefetching).
    pub prefetch_distance: usize,
}

impl Default for ResolveConfig {
    /// Plain lockstep rounds: worklist order, no prefetch.
    fn default() -> ResolveConfig {
        ResolveConfig {
            sort_by_row: false,
            prefetch_distance: 0,
        }
    }
}

impl ResolveConfig {
    /// Row-sorted rounds without prefetch (isolates the sort).
    pub fn sorted() -> ResolveConfig {
        ResolveConfig {
            sort_by_row: true,
            prefetch_distance: 0,
        }
    }

    /// The full locality schedule: row-sorted rounds plus software
    /// prefetch at [`DEFAULT_RESOLVE_PREFETCH_DISTANCE`].
    pub fn locality() -> ResolveConfig {
        ResolveConfig {
            sort_by_row: true,
            prefetch_distance: DEFAULT_RESOLVE_PREFETCH_DISTANCE,
        }
    }
}

/// Execution counters of one batched resolution, for tests and the bench
/// harness's `BatchStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResolveStats {
    /// Lockstep rounds executed — bounded by the SA sampling rate, since
    /// every cursor resolves within `sa_sample_rate - 1` LF steps.
    pub rounds: usize,
    /// Total LF steps issued across all cursors and rounds.
    pub lf_steps: usize,
    /// Cursors retired by hitting a sampled mark. Uncapped this equals
    /// the total interval rows resolved; capped intervals may retire a
    /// few more than their cap (the cap is checked at round boundaries)
    /// before the surplus is trimmed out of the output.
    pub retired: usize,
    /// Cursors live in the widest round (the initial worklist).
    pub peak_live: usize,
    /// Cursors dropped un-resolved because their interval hit its cap —
    /// LF-walks the cap made unnecessary.
    pub dropped: usize,
}

/// In-flight state of one interval row between rounds. Rows and output
/// slots fit `u32` because the suffix array itself stores `u32` positions
/// and the worklist size is asserted below it.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    row: u32,
    /// LF steps taken so far — added back to the sampled position.
    steps: u32,
    /// Index into the flat output buffer.
    slot: u32,
}

/// A capped-path cursor additionally remembers which interval it belongs
/// to, so round-boundary cap checks can drop its siblings.
#[derive(Debug, Clone, Copy)]
struct CappedCursor {
    row: u32,
    steps: u32,
    slot: u32,
    interval: u32,
}

/// Reusable scratch of the lockstep resolver: worklists, per-interval
/// retirement counters, and the capped path's full-width staging buffer.
/// A long-lived arena resolves many batches without reallocating — the
/// buffers keep their high-water capacity across calls.
#[derive(Debug, Clone, Default)]
pub struct ResolveArena {
    live: Vec<Cursor>,
    next: Vec<Cursor>,
    capped_live: Vec<CappedCursor>,
    capped_next: Vec<CappedCursor>,
    /// Cursors retired so far per interval (capped path only).
    retired: Vec<u32>,
    /// Prefix sums of *full* interval widths — the staging layout the
    /// capped path resolves into before trimming to the caps.
    full_offsets: Vec<usize>,
    /// Full-width staging buffer; `UNCAPPED` marks unwritten slots.
    staging: Vec<u32>,
}

/// Resolves every row of every interval into one pooled output: after
/// the call, `flat[offsets[i]..offsets[i + 1]]` holds interval `i`'s
/// text positions sorted ascending. With an empty `caps` (or every cap
/// at [`UNCAPPED`]` >= len`), output is element-identical to running
/// [`FmIndex::resolve_range_into`] on each interval; a capped interval
/// keeps `min(cap, len)` positions chosen by the deterministic rule of
/// [`FmIndex::resolve_range_capped_into`]. Both buffers are cleared
/// first; `arena` supplies every piece of scratch, so steady-state calls
/// allocate nothing once capacities are warm.
///
/// # Panics
///
/// Panics if `caps` is non-empty with a length different from
/// `intervals`, an interval extends past the text, or the total row
/// count does not fit the `u32` cursor slots.
pub fn resolve_capped_with_arena(
    fm: &FmIndex,
    config: ResolveConfig,
    intervals: &[Range<usize>],
    caps: &[u32],
    flat: &mut Vec<u32>,
    offsets: &mut Vec<usize>,
    arena: &mut ResolveArena,
) -> ResolveStats {
    assert!(
        caps.is_empty() || caps.len() == intervals.len(),
        "caps length {} does not match {} intervals",
        caps.len(),
        intervals.len()
    );
    for interval in intervals {
        assert!(
            interval.end <= fm.text_len(),
            "interval {interval:?} extends past the text"
        );
    }
    let cap_of = |i: usize| caps.get(i).copied().unwrap_or(UNCAPPED);
    let any_capped = intervals
        .iter()
        .enumerate()
        .any(|(i, r)| (cap_of(i) as usize) < r.len());
    if any_capped {
        resolve_capped(fm, config, intervals, &cap_of, flat, offsets, arena)
    } else {
        resolve_uncapped(fm, config, intervals, flat, offsets, arena)
    }
}

/// The uncapped fast path: every row retires into a pre-assigned slot of
/// the caller's `flat`, no staging copy.
fn resolve_uncapped(
    fm: &FmIndex,
    config: ResolveConfig,
    intervals: &[Range<usize>],
    flat: &mut Vec<u32>,
    offsets: &mut Vec<usize>,
    arena: &mut ResolveArena,
) -> ResolveStats {
    offsets.clear();
    offsets.reserve(intervals.len() + 1);
    let mut total = 0usize;
    offsets.push(0);
    for interval in intervals {
        total += interval.len();
        offsets.push(total);
    }
    assert!(
        total < u32::MAX as usize,
        "worklist too large for u32 slots"
    );
    flat.clear();
    flat.reserve(total);
    flat.resize(total, 0);

    arena.live.clear();
    arena.live.reserve(total);
    for (i, interval) in intervals.iter().enumerate() {
        for (j, row) in interval.clone().enumerate() {
            arena.live.push(Cursor {
                row: row as u32,
                steps: 0,
                slot: (offsets[i] + j) as u32,
            });
        }
    }

    let mut stats = ResolveStats {
        retired: total,
        peak_live: arena.live.len(),
        ..ResolveStats::default()
    };
    let ssa = fm.sampled_sa();
    let occ = fm.occ();
    let d = config.prefetch_distance;
    while !arena.live.is_empty() {
        stats.rounds += 1;
        if config.sort_by_row {
            arena.live.sort_unstable_by_key(|c| c.row);
        }
        for j in 0..arena.live.len() {
            if d > 0 {
                if let Some(ahead) = arena.live.get(j + d) {
                    let row = ahead.row as usize;
                    // The mark word decides retirement; the occ block
                    // serves both `symbol(row)` and `rank(s, row)` of
                    // the LF step (the hint is symbol-independent:
                    // checkpoint row and codes share the block).
                    ssa.prefetch(row);
                    occ.prefetch_rank(Symbol::Sentinel, row);
                }
            }
            let c = arena.live[j];
            if let Some(pos) = ssa.get(c.row as usize) {
                flat[c.slot as usize] = pos + c.steps;
                continue; // retired in place
            }
            stats.lf_steps += 1;
            arena.next.push(Cursor {
                row: fm.lf(c.row as usize) as u32,
                steps: c.steps + 1,
                slot: c.slot,
            });
        }
        std::mem::swap(&mut arena.live, &mut arena.next);
        arena.next.clear();
    }

    // Cursors retire in whatever round their walk hits a mark, so a
    // slot region holds its interval's positions unordered; restore
    // the ascending order the per-row path guarantees.
    for window in offsets.windows(2) {
        flat[window[0]..window[1]].sort_unstable();
    }
    stats
}

/// The capped path: rows resolve into a full-width staging buffer; when
/// an interval's retirements reach its cap, its surviving cursors are
/// dropped at the round boundary (so the drop set never depends on the
/// round's processing order); the staging regions are then sorted and
/// the smallest `min(cap, len)` positions of each are copied out.
fn resolve_capped(
    fm: &FmIndex,
    config: ResolveConfig,
    intervals: &[Range<usize>],
    cap_of: &dyn Fn(usize) -> u32,
    flat: &mut Vec<u32>,
    offsets: &mut Vec<usize>,
    arena: &mut ResolveArena,
) -> ResolveStats {
    let full = &mut arena.full_offsets;
    full.clear();
    full.reserve(intervals.len() + 1);
    let mut total = 0usize;
    full.push(0);
    for interval in intervals {
        total += interval.len();
        full.push(total);
    }
    assert!(
        total < u32::MAX as usize,
        "worklist too large for u32 slots"
    );
    arena.staging.clear();
    arena.staging.resize(total, UNCAPPED);
    arena.retired.clear();
    arena.retired.resize(intervals.len(), 0);

    arena.capped_live.clear();
    for (i, interval) in intervals.iter().enumerate() {
        if cap_of(i) == 0 {
            continue; // nothing to keep: its rows never enter the worklist
        }
        for (j, row) in interval.clone().enumerate() {
            arena.capped_live.push(CappedCursor {
                row: row as u32,
                steps: 0,
                slot: (full[i] + j) as u32,
                interval: i as u32,
            });
        }
    }

    let mut stats = ResolveStats {
        peak_live: arena.capped_live.len(),
        ..ResolveStats::default()
    };
    let ssa = fm.sampled_sa();
    let occ = fm.occ();
    let d = config.prefetch_distance;
    while !arena.capped_live.is_empty() {
        stats.rounds += 1;
        if config.sort_by_row {
            arena.capped_live.sort_unstable_by_key(|c| c.row);
        }
        let mut capped_round = false;
        for j in 0..arena.capped_live.len() {
            if d > 0 {
                if let Some(ahead) = arena.capped_live.get(j + d) {
                    let row = ahead.row as usize;
                    ssa.prefetch(row);
                    occ.prefetch_rank(Symbol::Sentinel, row);
                }
            }
            let c = arena.capped_live[j];
            if let Some(pos) = ssa.get(c.row as usize) {
                arena.staging[c.slot as usize] = pos + c.steps;
                stats.retired += 1;
                let count = &mut arena.retired[c.interval as usize];
                *count += 1;
                capped_round |= *count >= cap_of(c.interval as usize);
                continue; // retired in place
            }
            stats.lf_steps += 1;
            arena.capped_next.push(CappedCursor {
                row: fm.lf(c.row as usize) as u32,
                steps: c.steps + 1,
                slot: c.slot,
                interval: c.interval,
            });
        }
        // Cap enforcement happens here, at the round boundary: every
        // cursor whose walk ends this round still retires (keeping the
        // drop set independent of in-round processing order), and only
        // then do capped intervals shed their survivors.
        if capped_round {
            let retired = &arena.retired;
            let before = arena.capped_next.len();
            arena
                .capped_next
                .retain(|c| retired[c.interval as usize] < cap_of(c.interval as usize));
            stats.dropped += before - arena.capped_next.len();
        }
        std::mem::swap(&mut arena.capped_live, &mut arena.capped_next);
        arena.capped_next.clear();
    }

    // Trim each staging region to its cap: ascending sort floats the
    // resolved positions below the `UNCAPPED` fill, and taking the first
    // `min(cap, len)` keeps the smallest positions among the rows that
    // resolved before the cap closed the interval.
    offsets.clear();
    offsets.reserve(intervals.len() + 1);
    flat.clear();
    offsets.push(0);
    for (i, interval) in intervals.iter().enumerate() {
        let region = &mut arena.staging[full[i]..full[i + 1]];
        region.sort_unstable();
        let keep = (cap_of(i) as usize).min(interval.len());
        flat.extend_from_slice(&region[..keep]);
        offsets.push(flat.len());
    }
    stats
}

/// A lockstep multi-row resolver over a [`FmIndex`]'s sampled suffix
/// array and occurrence table.
///
/// Worklist scratch is owned by the resolver and reused across calls, so
/// a long-lived resolver resolves many batches without reallocating.
/// Callers that manage their own scratch (the engine's query arena) use
/// [`resolve_capped_with_arena`] directly.
///
/// ```
/// use exma_genome::alphabet::parse_bases;
/// use exma_genome::genome::text_from_str;
/// use exma_index::{BatchResolver, FmIndex, ResolveConfig};
///
/// let fm = FmIndex::from_text(&text_from_str("CATAGACATTAGA").unwrap());
/// let intervals = [fm.backward_search(&parse_bases("ATA").unwrap())];
/// let (mut flat, mut offsets) = (Vec::new(), Vec::new());
/// let mut resolver = BatchResolver::with_config(&fm, ResolveConfig::locality());
/// resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
///
/// let mut expect = Vec::new();
/// fm.resolve_range_into(intervals[0].clone(), &mut expect);
/// assert_eq!(flat, expect); // answer-identical to the per-row path
/// ```
#[derive(Debug, Clone)]
pub struct BatchResolver<'a> {
    fm: &'a FmIndex,
    config: ResolveConfig,
    arena: ResolveArena,
}

impl<'a> BatchResolver<'a> {
    /// A resolver borrowing `fm`'s tables, with the plain round schedule.
    pub fn new(fm: &'a FmIndex) -> BatchResolver<'a> {
        BatchResolver::with_config(fm, ResolveConfig::default())
    }

    /// A resolver with an explicit round schedule.
    pub fn with_config(fm: &'a FmIndex, config: ResolveConfig) -> BatchResolver<'a> {
        BatchResolver {
            fm,
            config,
            arena: ResolveArena::default(),
        }
    }

    /// The index whose tables this resolver walks.
    pub fn index(&self) -> &'a FmIndex {
        self.fm
    }

    /// The round schedule this resolver runs.
    pub fn config(&self) -> ResolveConfig {
        self.config
    }

    /// Uncapped resolution: see [`resolve_capped_with_arena`] with empty
    /// caps.
    pub fn resolve_intervals(
        &mut self,
        intervals: &[Range<usize>],
        flat: &mut Vec<u32>,
        offsets: &mut Vec<usize>,
    ) -> ResolveStats {
        self.resolve_intervals_capped(intervals, &[], flat, offsets)
    }

    /// Capped resolution through the resolver's own arena: see
    /// [`resolve_capped_with_arena`].
    pub fn resolve_intervals_capped(
        &mut self,
        intervals: &[Range<usize>],
        caps: &[u32],
        flat: &mut Vec<u32>,
        offsets: &mut Vec<usize>,
    ) -> ResolveStats {
        resolve_capped_with_arena(
            self.fm,
            self.config,
            intervals,
            caps,
            flat,
            offsets,
            &mut self.arena,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fm::FmBuildConfig;
    use exma_genome::genome::text_from_str;

    fn small_index() -> FmIndex {
        FmIndex::from_text_with_config(
            &text_from_str("CCATAGACATTAGACCATAGGACATAGACC").unwrap(),
            FmBuildConfig {
                occ_sample_rate: 7,
                sa_sample_rate: 5,
                ..FmBuildConfig::default()
            },
        )
        .unwrap()
    }

    /// Every schedule the benchmarks exercise, plus a short look-ahead.
    fn all_configs() -> [ResolveConfig; 4] {
        [
            ResolveConfig::default(),
            ResolveConfig::sorted(),
            ResolveConfig::locality(),
            ResolveConfig {
                sort_by_row: false,
                prefetch_distance: 2,
            },
        ]
    }

    fn intervals_of(fm: &FmIndex) -> Vec<std::ops::Range<usize>> {
        ["A", "CAT", "TAGA", "CCATAG", "GGG", ""]
            .iter()
            .map(|p| fm.backward_search(&exma_genome::alphabet::parse_bases(p).unwrap()))
            .collect()
    }

    #[test]
    fn matches_per_row_resolution_under_every_schedule() {
        let fm = small_index();
        let intervals = intervals_of(&fm);
        let mut expect_flat = Vec::new();
        let mut expect_offsets = vec![0usize];
        let mut buf = Vec::new();
        for interval in &intervals {
            fm.resolve_range_into(interval.clone(), &mut buf);
            expect_flat.extend_from_slice(&buf);
            expect_offsets.push(expect_flat.len());
        }
        for config in all_configs() {
            let mut resolver = BatchResolver::with_config(&fm, config);
            let (mut flat, mut offsets) = (Vec::new(), Vec::new());
            resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
            assert_eq!(flat, expect_flat, "{config:?}");
            assert_eq!(offsets, expect_offsets, "{config:?}");
        }
    }

    #[test]
    fn capped_resolution_matches_the_sequential_capped_rule() {
        let fm = small_index();
        let intervals = intervals_of(&fm);
        for cap in [0u32, 1, 2, 3, 100, UNCAPPED] {
            let caps = vec![cap; intervals.len()];
            let mut expect_flat = Vec::new();
            let mut expect_offsets = vec![0usize];
            let mut buf = Vec::new();
            for interval in &intervals {
                fm.resolve_range_capped_into(interval.clone(), cap, &mut buf);
                expect_flat.extend_from_slice(&buf);
                expect_offsets.push(expect_flat.len());
            }
            for config in all_configs() {
                let mut resolver = BatchResolver::with_config(&fm, config);
                let (mut flat, mut offsets) = (Vec::new(), Vec::new());
                resolver.resolve_intervals_capped(&intervals, &caps, &mut flat, &mut offsets);
                assert_eq!(flat, expect_flat, "cap={cap}, {config:?}");
                assert_eq!(offsets, expect_offsets, "cap={cap}, {config:?}");
            }
        }
    }

    #[test]
    fn capping_actually_drops_cursors() {
        let fm = small_index();
        // "A" has many occurrences; cap 1 must shed the rest of its
        // worklist instead of walking every row to a mark.
        let intervals = vec![fm.backward_search(&exma_genome::alphabet::parse_bases("A").unwrap())];
        assert!(intervals[0].len() > 3);
        let mut resolver = BatchResolver::new(&fm);
        let (mut flat, mut offsets) = (Vec::new(), Vec::new());
        let uncapped = resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
        let capped = resolver.resolve_intervals_capped(&intervals, &[1], &mut flat, &mut offsets);
        assert_eq!(flat.len(), 1);
        assert!(capped.dropped > 0, "{capped:?}");
        assert!(capped.retired < uncapped.retired);
        assert!(capped.lf_steps <= uncapped.lf_steps);
        assert_eq!(uncapped.dropped, 0);
    }

    #[test]
    fn mixed_caps_only_trim_their_own_interval() {
        let fm = small_index();
        let intervals = intervals_of(&fm);
        // Cap only interval 0; everything else keeps full output.
        let mut caps = vec![UNCAPPED; intervals.len()];
        caps[0] = 2;
        let mut resolver = BatchResolver::new(&fm);
        let (mut flat, mut offsets) = (Vec::new(), Vec::new());
        resolver.resolve_intervals_capped(&intervals, &caps, &mut flat, &mut offsets);
        let mut buf = Vec::new();
        for (i, interval) in intervals.iter().enumerate() {
            fm.resolve_range_capped_into(interval.clone(), caps[i], &mut buf);
            assert_eq!(&flat[offsets[i]..offsets[i + 1]], &buf[..], "interval {i}");
        }
    }

    #[test]
    fn stats_bound_rounds_by_the_sampling_rate() {
        let fm = small_index();
        let intervals = intervals_of(&fm);
        let total: usize = intervals.iter().map(|r| r.len()).sum();
        let mut resolver = BatchResolver::new(&fm);
        let (mut flat, mut offsets) = (Vec::new(), Vec::new());
        let stats = resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
        assert_eq!(stats.retired, total);
        assert_eq!(stats.peak_live, total);
        assert!(stats.rounds <= fm.sampled_sa().sample_rate());
        assert!(stats.rounds >= 1);
        // Every LF step belongs to a cursor that survived a round; a
        // cursor takes at most rate - 1 steps.
        assert!(stats.lf_steps <= total * (fm.sampled_sa().sample_rate() - 1));
    }

    #[test]
    fn sorting_changes_no_counter() {
        let fm = small_index();
        let intervals = intervals_of(&fm);
        let run = |config: ResolveConfig, caps: &[u32]| {
            let mut resolver = BatchResolver::with_config(&fm, config);
            let (mut flat, mut offsets) = (Vec::new(), Vec::new());
            resolver.resolve_intervals_capped(&intervals, caps, &mut flat, &mut offsets)
        };
        for caps in [vec![], vec![2; intervals_of(&fm).len()]] {
            let plain = run(ResolveConfig::default(), &caps);
            for config in [ResolveConfig::sorted(), ResolveConfig::locality()] {
                assert_eq!(run(config, &caps), plain, "{config:?}, caps {caps:?}");
            }
        }
    }

    #[test]
    fn empty_worklists_and_buffers_reset() {
        let fm = small_index();
        let mut resolver = BatchResolver::new(&fm);
        let (mut flat, mut offsets) = (vec![9u32; 4], vec![7usize; 4]);
        let stats = resolver.resolve_intervals(&[], &mut flat, &mut offsets);
        assert_eq!(stats, ResolveStats::default());
        assert!(flat.is_empty());
        assert_eq!(offsets, vec![0]);

        // Stale buffer content must not survive a real call either.
        let stats = resolver.resolve_intervals(&[0..0, 2..2], &mut flat, &mut offsets);
        assert_eq!(stats.rounds, 0);
        assert!(flat.is_empty());
        assert_eq!(offsets, vec![0, 0, 0]);
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let fm = small_index();
        let intervals = intervals_of(&fm);
        let mut resolver = BatchResolver::with_config(&fm, ResolveConfig::locality());
        let (mut flat, mut offsets) = (Vec::new(), Vec::new());
        resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
        let first = flat.clone();
        resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
        assert_eq!(flat, first);
        // Alternating capped and uncapped calls through one arena must
        // not leak staging state between them.
        let caps = vec![1u32; intervals.len()];
        resolver.resolve_intervals_capped(&intervals, &caps, &mut flat, &mut offsets);
        resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
        assert_eq!(flat, first);
    }

    #[test]
    #[should_panic(expected = "extends past the text")]
    fn out_of_range_interval_panics() {
        let fm = small_index();
        let mut resolver = BatchResolver::new(&fm);
        let (mut flat, mut offsets) = (Vec::new(), Vec::new());
        resolver.resolve_intervals(&[0..1, 0..fm.text_len() + 1], &mut flat, &mut offsets);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_caps_are_rejected() {
        let fm = small_index();
        let mut resolver = BatchResolver::new(&fm);
        let (mut flat, mut offsets) = (Vec::new(), Vec::new());
        resolver.resolve_intervals_capped(&[0..1, 0..2], &[1], &mut flat, &mut offsets);
    }
}
