//! Lockstep batched resolution of suffix-array intervals — `locate`'s
//! counterpart to the batch engine's lockstep backward search.
//!
//! The per-row path ([`FmIndex::resolve_row`]) LF-walks each interval row
//! serially: every step loads the occurrence block the previous step's
//! answer points at, so the whole walk is one dependent cache-miss chain —
//! the exact DRAM pattern the paper's measurements blame for FM-index
//! latency (§II-C), resurfacing in `locate` after the batched `count`
//! path eliminated it there. This module converts those serial walks into
//! overlapped independent streams: every row of one or many intervals
//! becomes a *cursor* `(row, steps, output slot)` on a shared worklist,
//! and each round (1) checks every live cursor against the sampled
//! suffix-array marks, retiring resolved cursors into their output slot,
//! (2) LF-steps the survivors, and (3) while handling cursor `j`,
//! software-prefetches the occurrence block *and* the mark word cursor
//! `j + d` will touch — so by the time the loop reaches a cursor, its
//! lines are in flight or resident. Optionally each round first sorts the
//! cursors by row, so the round's table accesses walk memory in address
//! order (block locality) instead of jumping wherever the previous LF
//! landed.
//!
//! Answers are identical to the per-row path by construction — the same
//! rows take the same LF-walks, only interleaved — and each interval's
//! output is sorted ascending per the [`FmIndex::resolve_range_into`]
//! contract; both properties are property-tested at the engine layer.

use std::ops::Range;

use exma_genome::Symbol;

use crate::fm::FmIndex;

/// How many cursors ahead of the one being stepped the resolver
/// prefetches when [`ResolveConfig::prefetch_distance`] is left to the
/// preset. Matches the batch engine's query look-ahead: far enough that a
/// DRAM fetch (~100 ns) completes before the round loop reaches the
/// cursor, near enough that the lines are not evicted again first.
pub const DEFAULT_RESOLVE_PREFETCH_DISTANCE: usize = 8;

/// Scheduling knobs of a [`BatchResolver`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolveConfig {
    /// Sort live cursors by suffix-array row each round, so the round's
    /// occurrence-table and mark-bitset accesses walk memory in address
    /// order instead of the order the previous round's LF steps produced.
    pub sort_by_row: bool,
    /// While retiring or stepping cursor `j`, prefetch the occ block and
    /// mark word cursor `j + d` will touch (`0` disables prefetching).
    pub prefetch_distance: usize,
}

impl Default for ResolveConfig {
    /// Plain lockstep rounds: worklist order, no prefetch.
    fn default() -> ResolveConfig {
        ResolveConfig {
            sort_by_row: false,
            prefetch_distance: 0,
        }
    }
}

impl ResolveConfig {
    /// Row-sorted rounds without prefetch (isolates the sort).
    pub fn sorted() -> ResolveConfig {
        ResolveConfig {
            sort_by_row: true,
            prefetch_distance: 0,
        }
    }

    /// The full locality schedule: row-sorted rounds plus software
    /// prefetch at [`DEFAULT_RESOLVE_PREFETCH_DISTANCE`].
    pub fn locality() -> ResolveConfig {
        ResolveConfig {
            sort_by_row: true,
            prefetch_distance: DEFAULT_RESOLVE_PREFETCH_DISTANCE,
        }
    }
}

/// Execution counters of one batched resolution, for tests and the bench
/// harness's `BatchStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResolveStats {
    /// Lockstep rounds executed — bounded by the SA sampling rate, since
    /// every cursor resolves within `sa_sample_rate - 1` LF steps.
    pub rounds: usize,
    /// Total LF steps issued across all cursors and rounds.
    pub lf_steps: usize,
    /// Cursors retired (equals the total interval rows resolved). Divided
    /// by `rounds` this is the mean cursors retired per round.
    pub retired: usize,
    /// Cursors live in the widest round (the initial worklist).
    pub peak_live: usize,
}

/// In-flight state of one interval row between rounds. Rows and output
/// slots fit `u32` because the suffix array itself stores `u32` positions
/// and the worklist size is asserted below it.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    row: u32,
    /// LF steps taken so far — added back to the sampled position.
    steps: u32,
    /// Index into the flat output buffer.
    slot: u32,
}

/// A lockstep multi-row resolver over a [`FmIndex`]'s sampled suffix
/// array and occurrence table.
///
/// Worklist scratch is owned by the resolver and reused across calls, so
/// a long-lived resolver resolves many batches without reallocating.
///
/// ```
/// use exma_genome::alphabet::parse_bases;
/// use exma_genome::genome::text_from_str;
/// use exma_index::{BatchResolver, FmIndex, ResolveConfig};
///
/// let fm = FmIndex::from_text(&text_from_str("CATAGACATTAGA").unwrap());
/// let intervals = [fm.backward_search(&parse_bases("ATA").unwrap())];
/// let (mut flat, mut offsets) = (Vec::new(), Vec::new());
/// let mut resolver = BatchResolver::with_config(&fm, ResolveConfig::locality());
/// resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
///
/// let mut expect = Vec::new();
/// fm.resolve_range_into(intervals[0].clone(), &mut expect);
/// assert_eq!(flat, expect); // answer-identical to the per-row path
/// ```
#[derive(Debug, Clone)]
pub struct BatchResolver<'a> {
    fm: &'a FmIndex,
    config: ResolveConfig,
    /// Round worklist, double-buffered into `next` so the prefetch
    /// look-ahead can peek at untouched entries.
    live: Vec<Cursor>,
    next: Vec<Cursor>,
}

impl<'a> BatchResolver<'a> {
    /// A resolver borrowing `fm`'s tables, with the plain round schedule.
    pub fn new(fm: &'a FmIndex) -> BatchResolver<'a> {
        BatchResolver::with_config(fm, ResolveConfig::default())
    }

    /// A resolver with an explicit round schedule.
    pub fn with_config(fm: &'a FmIndex, config: ResolveConfig) -> BatchResolver<'a> {
        BatchResolver {
            fm,
            config,
            live: Vec::new(),
            next: Vec::new(),
        }
    }

    /// The index whose tables this resolver walks.
    pub fn index(&self) -> &'a FmIndex {
        self.fm
    }

    /// The round schedule this resolver runs.
    pub fn config(&self) -> ResolveConfig {
        self.config
    }

    /// Resolves every row of every interval into one pooled output: after
    /// the call, `flat[offsets[i]..offsets[i + 1]]` holds interval `i`'s
    /// text positions sorted ascending — element-identical to running
    /// [`FmIndex::resolve_range_into`] on each interval. Both buffers are
    /// cleared first and sized exactly, so callers can pool them across
    /// batches without the allocations drifting past the answer size.
    ///
    /// # Panics
    ///
    /// Panics if an interval extends past the text or the total row count
    /// does not fit the `u32` cursor slots.
    pub fn resolve_intervals(
        &mut self,
        intervals: &[Range<usize>],
        flat: &mut Vec<u32>,
        offsets: &mut Vec<usize>,
    ) -> ResolveStats {
        offsets.clear();
        offsets.reserve_exact(intervals.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for interval in intervals {
            total += interval.len();
            offsets.push(total);
        }
        assert!(
            total < u32::MAX as usize,
            "worklist too large for u32 slots"
        );
        flat.clear();
        flat.reserve_exact(total);
        flat.resize(total, 0);

        self.live.clear();
        self.live.reserve(total);
        for (i, interval) in intervals.iter().enumerate() {
            assert!(
                interval.end <= self.fm.text_len(),
                "interval {interval:?} extends past the text"
            );
            for (j, row) in interval.clone().enumerate() {
                self.live.push(Cursor {
                    row: row as u32,
                    steps: 0,
                    slot: (offsets[i] + j) as u32,
                });
            }
        }

        let mut stats = ResolveStats {
            retired: total,
            peak_live: self.live.len(),
            ..ResolveStats::default()
        };
        let ssa = self.fm.sampled_sa();
        let occ = self.fm.occ();
        let d = self.config.prefetch_distance;
        while !self.live.is_empty() {
            stats.rounds += 1;
            if self.config.sort_by_row {
                self.live.sort_unstable_by_key(|c| c.row);
            }
            for j in 0..self.live.len() {
                if d > 0 {
                    if let Some(ahead) = self.live.get(j + d) {
                        let row = ahead.row as usize;
                        // The mark word decides retirement; the occ block
                        // serves both `symbol(row)` and `rank(s, row)` of
                        // the LF step (the hint is symbol-independent:
                        // checkpoint row and codes share the block).
                        ssa.prefetch(row);
                        occ.prefetch_rank(Symbol::Sentinel, row);
                    }
                }
                let c = self.live[j];
                if let Some(pos) = ssa.get(c.row as usize) {
                    flat[c.slot as usize] = pos + c.steps;
                    continue; // retired in place
                }
                stats.lf_steps += 1;
                self.next.push(Cursor {
                    row: self.fm.lf(c.row as usize) as u32,
                    steps: c.steps + 1,
                    slot: c.slot,
                });
            }
            std::mem::swap(&mut self.live, &mut self.next);
            self.next.clear();
        }

        // Cursors retire in whatever round their walk hits a mark, so a
        // slot region holds its interval's positions unordered; restore
        // the ascending order the per-row path guarantees.
        for window in offsets.windows(2) {
            flat[window[0]..window[1]].sort_unstable();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fm::FmBuildConfig;
    use exma_genome::genome::text_from_str;

    fn small_index() -> FmIndex {
        FmIndex::from_text_with_config(
            &text_from_str("CCATAGACATTAGACCATAGGACATAGACC").unwrap(),
            FmBuildConfig {
                occ_sample_rate: 7,
                sa_sample_rate: 5,
            },
        )
    }

    /// Every schedule the benchmarks exercise, plus a short look-ahead.
    fn all_configs() -> [ResolveConfig; 4] {
        [
            ResolveConfig::default(),
            ResolveConfig::sorted(),
            ResolveConfig::locality(),
            ResolveConfig {
                sort_by_row: false,
                prefetch_distance: 2,
            },
        ]
    }

    fn intervals_of(fm: &FmIndex) -> Vec<std::ops::Range<usize>> {
        ["A", "CAT", "TAGA", "CCATAG", "GGG", ""]
            .iter()
            .map(|p| fm.backward_search(&exma_genome::alphabet::parse_bases(p).unwrap()))
            .collect()
    }

    #[test]
    fn matches_per_row_resolution_under_every_schedule() {
        let fm = small_index();
        let intervals = intervals_of(&fm);
        let mut expect_flat = Vec::new();
        let mut expect_offsets = vec![0usize];
        let mut buf = Vec::new();
        for interval in &intervals {
            fm.resolve_range_into(interval.clone(), &mut buf);
            expect_flat.extend_from_slice(&buf);
            expect_offsets.push(expect_flat.len());
        }
        for config in all_configs() {
            let mut resolver = BatchResolver::with_config(&fm, config);
            let (mut flat, mut offsets) = (Vec::new(), Vec::new());
            resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
            assert_eq!(flat, expect_flat, "{config:?}");
            assert_eq!(offsets, expect_offsets, "{config:?}");
        }
    }

    #[test]
    fn stats_bound_rounds_by_the_sampling_rate() {
        let fm = small_index();
        let intervals = intervals_of(&fm);
        let total: usize = intervals.iter().map(|r| r.len()).sum();
        let mut resolver = BatchResolver::new(&fm);
        let (mut flat, mut offsets) = (Vec::new(), Vec::new());
        let stats = resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
        assert_eq!(stats.retired, total);
        assert_eq!(stats.peak_live, total);
        assert!(stats.rounds <= fm.sampled_sa().sample_rate());
        assert!(stats.rounds >= 1);
        // Every LF step belongs to a cursor that survived a round; a
        // cursor takes at most rate - 1 steps.
        assert!(stats.lf_steps <= total * (fm.sampled_sa().sample_rate() - 1));
    }

    #[test]
    fn sorting_changes_no_counter() {
        let fm = small_index();
        let intervals = intervals_of(&fm);
        let run = |config: ResolveConfig| {
            let mut resolver = BatchResolver::with_config(&fm, config);
            let (mut flat, mut offsets) = (Vec::new(), Vec::new());
            resolver.resolve_intervals(&intervals, &mut flat, &mut offsets)
        };
        let plain = run(ResolveConfig::default());
        for config in [ResolveConfig::sorted(), ResolveConfig::locality()] {
            assert_eq!(run(config), plain, "{config:?}");
        }
    }

    #[test]
    fn empty_worklists_and_buffers_reset() {
        let fm = small_index();
        let mut resolver = BatchResolver::new(&fm);
        let (mut flat, mut offsets) = (vec![9u32; 4], vec![7usize; 4]);
        let stats = resolver.resolve_intervals(&[], &mut flat, &mut offsets);
        assert_eq!(stats, ResolveStats::default());
        assert!(flat.is_empty());
        assert_eq!(offsets, vec![0]);

        // Stale buffer content must not survive a real call either.
        let stats = resolver.resolve_intervals(&[0..0, 2..2], &mut flat, &mut offsets);
        assert_eq!(stats.rounds, 0);
        assert!(flat.is_empty());
        assert_eq!(offsets, vec![0, 0, 0]);
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let fm = small_index();
        let intervals = intervals_of(&fm);
        let mut resolver = BatchResolver::with_config(&fm, ResolveConfig::locality());
        let (mut flat, mut offsets) = (Vec::new(), Vec::new());
        resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
        let first = flat.clone();
        resolver.resolve_intervals(&intervals, &mut flat, &mut offsets);
        assert_eq!(flat, first);
    }

    #[test]
    #[should_panic(expected = "extends past the text")]
    fn out_of_range_interval_panics() {
        let fm = small_index();
        let mut resolver = BatchResolver::new(&fm);
        let (mut flat, mut offsets) = (Vec::new(), Vec::new());
        resolver.resolve_intervals(&[0..1, 0..fm.text_len() + 1], &mut flat, &mut offsets);
    }
}
