//! The bidirectional (FMD-style) index: forward and reverse-complement
//! strands in one structure, after Li's FMD-index.
//!
//! Half of every simulated DNA read set originates on the reverse
//! strand (`exma_genome::ReadOrigin::reverse`), which a forward-only
//! index cannot serve without the client querying twice. This module
//! indexes the **doubled text**
//!
//! ```text
//! forward · revcomp(forward) · $
//! ```
//!
//! — `2n + 1` symbols for an `n`-base reference, with the single
//! terminal sentinel the suffix-array builder requires — through the
//! ordinary [`KStepFmIndex`] machinery (BWT, two-level occurrence
//! tables, sampled suffix array, all driven by the same build recipe).
//! One backward search over the doubled text finds a pattern on either
//! strand at once; raw doubled-text positions are then mapped back to
//! forward-reference coordinates with a strand tag by pure arithmetic:
//!
//! * a raw hit `p` with `p + m ≤ n` lies in the forward half — a
//!   [`Strand::Forward`] hit at `p`;
//! * a raw hit `p ≥ n` lies in the reverse-complement half — the
//!   forward window `s = 2n − p − m .. s + m` contains
//!   `revcomp(pattern)`, reported as a [`Strand::Reverse`] hit at `s`;
//! * raw hits straddling the half boundary (`n − m < p < n`) match a
//!   chimera of forward tail and reverse-complement head that exists on
//!   neither strand, and are dropped.
//!
//! **Palindrome dedup.** A reverse-complement palindrome
//! (`pattern == revcomp(pattern)`, necessarily of even length — the
//! empty pattern counts) occurs at forward position `s` exactly when it
//! occurs at raw reverse position `p = 2n − s − m`: the two halves
//! mirror hit for hit. Reporting both would double every site, so the
//! rule is deterministic and total: palindromic patterns drop **all**
//! reverse-classified hits and report each site once, tagged
//! [`Strand::Forward`].
//!
//! Hits travel as one `u32` each — `(position << 1) | strand_bit` (see
//! [`encode_hit`]) — so they ride the same flat pooled buffers as plain
//! locate positions, and sorting encoded hits yields deterministic
//! `(position, strand)` order. The largest profile in the workspace is
//! 31 Mbp, far under the `2^31` the shifted encoding allows.

use exma_genome::genome::Genome;
use exma_genome::{Base, Symbol};

use crate::kstep::{KStepBuildConfig, KStepFmIndex};
use crate::layout::{HeapBreakdown, IndexError};

/// Which reference strand a strand-agnostic hit matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strand {
    /// The pattern occurs in the reference as given.
    Forward,
    /// `revcomp(pattern)` occurs in the reference; the hit position is
    /// the forward coordinate of the matched window.
    Reverse,
}

impl Strand {
    /// The encoding bit: 0 forward, 1 reverse.
    #[inline]
    pub fn bit(self) -> u32 {
        match self {
            Strand::Forward => 0,
            Strand::Reverse => 1,
        }
    }

    /// Decodes the strand bit.
    #[inline]
    pub fn from_bit(bit: u32) -> Strand {
        if bit & 1 == 0 {
            Strand::Forward
        } else {
            Strand::Reverse
        }
    }
}

/// Packs a forward-coordinate hit and its strand into one `u32`:
/// `(position << 1) | strand_bit`. Sorting encoded hits sorts by
/// `(position, strand)`.
///
/// # Panics
///
/// Debug-asserts `position < 2^31`.
#[inline]
pub fn encode_hit(position: u32, strand: Strand) -> u32 {
    debug_assert!(
        position < 1 << 31,
        "position {position} overflows the strand encoding"
    );
    (position << 1) | strand.bit()
}

/// Unpacks an [`encode_hit`] value into `(position, strand)`.
#[inline]
pub fn decode_hit(hit: u32) -> (u32, Strand) {
    (hit >> 1, Strand::from_bit(hit))
}

/// The reverse complement of a pattern.
pub fn revcomp(pattern: &[Base]) -> Vec<Base> {
    pattern.iter().rev().map(|b| b.complement()).collect()
}

/// `true` iff `pattern` equals its own reverse complement — the
/// patterns whose forward and reverse hits mirror site for site. Only
/// even lengths qualify (a middle base would have to equal its own
/// complement); the empty pattern does.
pub fn is_palindromic(pattern: &[Base]) -> bool {
    pattern.len() % 2 == 0
        && pattern
            .iter()
            .zip(pattern.iter().rev())
            .all(|(&a, &b)| a == b.complement())
}

/// Builds the doubled text `forward · revcomp(forward) · $` from a
/// sentinel-terminated forward text — the input every bidirectional
/// index is constructed over.
///
/// # Panics
///
/// Panics if `text` is empty or not sentinel-terminated.
pub fn doubled_text(text: &[Symbol]) -> Vec<Symbol> {
    assert!(
        text.last().is_some_and(|s| s.is_sentinel()),
        "doubled_text needs a sentinel-terminated forward text"
    );
    let forward = &text[..text.len() - 1];
    let mut doubled = Vec::with_capacity(2 * forward.len() + 1);
    doubled.extend_from_slice(forward);
    doubled.extend(forward.iter().rev().map(|s| match s {
        Symbol::Base(b) => Symbol::Base(b.complement()),
        Symbol::Sentinel => unreachable!("interior sentinel in forward text"),
    }));
    doubled.push(Symbol::Sentinel);
    doubled
}

/// Forward-reference length `n` of a doubled text of `text_len`
/// symbols (`2n + 1`, sentinel included).
#[inline]
pub fn forward_len(text_len: usize) -> usize {
    (text_len - 1) / 2
}

/// Maps one raw doubled-text hit to its encoded strand-hit, or `None`
/// for a half-boundary straddler. `m` is the pattern length, `n` the
/// forward-reference length. Palindrome dedup is the caller's job
/// (drop every [`Strand::Reverse`] result when the pattern is
/// palindromic).
#[inline]
pub fn map_raw_hit(raw: u32, m: usize, n: usize) -> Option<u32> {
    let p = raw as usize;
    if p + m <= n {
        Some(encode_hit(raw, Strand::Forward))
    } else if p >= n && p + m <= 2 * n {
        Some(encode_hit((2 * n - p - m) as u32, Strand::Reverse))
    } else {
        None
    }
}

/// Maps a buffer of raw doubled-text hits to encoded strand-hits in
/// place: straddlers are dropped, reverse hits of palindromic patterns
/// are dropped (the dedup rule), and the survivors are sorted by
/// `(position, strand)`. Returns the kept count; `hits[..kept]` holds
/// the result.
pub fn map_hits_in_place(hits: &mut Vec<u32>, pattern: &[Base], n: usize) -> usize {
    let m = pattern.len();
    let palindromic = is_palindromic(pattern);
    hits.retain_mut(|raw| match map_raw_hit(*raw, m, n) {
        Some(encoded) if !(palindromic && decode_hit(encoded).1 == Strand::Reverse) => {
            *raw = encoded;
            true
        }
        _ => false,
    });
    hits.sort_unstable();
    hits.len()
}

/// A strand-agnostic FM-index: a [`KStepFmIndex`] over the doubled
/// text, plus the coordinate mapping back to forward-reference
/// positions.
///
/// ```
/// use exma_genome::{Genome, GenomeProfile};
/// use exma_index::bidir::{decode_hit, BidirFmIndex, Strand};
///
/// let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
/// let index = BidirFmIndex::from_genome(&genome, 4);
///
/// // A reverse-strand read is found without revcomping the query.
/// let read = genome.revcomp_window(500, 33);
/// let hits = index.locate_both(&read);
/// assert!(hits
///     .iter()
///     .any(|&h| decode_hit(h) == (500, Strand::Reverse)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BidirFmIndex {
    inner: KStepFmIndex,
}

impl BidirFmIndex {
    /// Builds the bidirectional index over a sentinel-terminated
    /// *forward* text with an explicit recipe (whose `bidirectional`
    /// flag is forced on).
    ///
    /// # Errors
    ///
    /// Propagates [`IndexError`] exactly as
    /// [`KStepFmIndex::from_text_with_config`] — the doubled text is
    /// twice as long, so `u32` addressability halves.
    pub fn from_text_with_config(
        text: &[Symbol],
        config: KStepBuildConfig,
    ) -> Result<BidirFmIndex, IndexError> {
        let config = KStepBuildConfig {
            bidirectional: true,
            ..config
        };
        Ok(BidirFmIndex {
            inner: KStepFmIndex::from_text_with_config(&doubled_text(text), config)?,
        })
    }

    /// Builds the index with the default recipe for step width `k`.
    pub fn from_text(text: &[Symbol], k: usize) -> BidirFmIndex {
        BidirFmIndex::from_text_with_config(text, KStepBuildConfig::for_k(k))
            .expect("the default layout builds for any u32-addressable text")
    }

    /// Builds the index for a genome's reference sequence.
    pub fn from_genome(genome: &Genome, k: usize) -> BidirFmIndex {
        BidirFmIndex::from_text(&genome.text_with_sentinel(), k)
    }

    /// Wraps an already-built doubled-text index (e.g. one loaded from
    /// a snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `inner` was not built with the bidirectional recipe
    /// marker.
    pub fn from_inner(inner: KStepFmIndex) -> BidirFmIndex {
        assert!(
            inner.is_bidirectional(),
            "from_inner needs a bidirectional-recipe index"
        );
        BidirFmIndex { inner }
    }

    /// The underlying doubled-text index — what executors attach to.
    pub fn inner(&self) -> &KStepFmIndex {
        &self.inner
    }

    /// Unwraps the underlying doubled-text index.
    pub fn into_inner(self) -> KStepFmIndex {
        self.inner
    }

    /// Forward-reference length `n` (the doubled text has `2n + 1`
    /// symbols).
    pub fn forward_len(&self) -> usize {
        forward_len(self.inner.text_len())
    }

    /// Number of strand-agnostic occurrences of `pattern`: forward hits
    /// plus reverse hits, with palindromic double-counting removed.
    pub fn count_both(&self, pattern: &[Base]) -> usize {
        self.locate_both(pattern).len()
    }

    /// All strand-agnostic occurrences of `pattern` as encoded
    /// strand-hits (see [`encode_hit`]), sorted by `(position,
    /// strand)`.
    pub fn locate_both(&self, pattern: &[Base]) -> Vec<u32> {
        let mut hits = Vec::new();
        self.locate_both_into(pattern, &mut hits);
        hits
    }

    /// Allocation-reusing [`BidirFmIndex::locate_both`].
    pub fn locate_both_into(&self, pattern: &[Base], out: &mut Vec<u32>) {
        self.inner
            .base_index()
            .resolve_range_into(self.inner.backward_search(pattern), out);
        map_hits_in_place(out, pattern, self.forward_len());
    }

    /// Heap bytes of all components, attributed per component — the
    /// measured cost of carrying both strands (roughly 2× a
    /// forward-only index of the same recipe).
    pub fn heap_breakdown(&self) -> HeapBreakdown {
        self.inner.heap_breakdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use exma_genome::alphabet::parse_bases;
    use exma_genome::genome::text_from_str;
    use exma_genome::{GenomeProfile, SeededRng};

    #[test]
    fn strand_hits_encode_and_decode() {
        for (pos, strand) in [
            (0, Strand::Forward),
            (0, Strand::Reverse),
            (1234, Strand::Reverse),
        ] {
            assert_eq!(decode_hit(encode_hit(pos, strand)), (pos, strand));
        }
        // Encoded order is (position, strand) order.
        assert!(encode_hit(5, Strand::Forward) < encode_hit(5, Strand::Reverse));
        assert!(encode_hit(5, Strand::Reverse) < encode_hit(6, Strand::Forward));
    }

    #[test]
    fn palindrome_detection() {
        for (pat, expect) in [
            ("", true),
            ("A", false),
            ("AT", true),
            ("TA", true),
            ("CG", true),
            ("AC", false),
            ("ACGT", true),
            ("AATT", true),
            ("AAT", false),
            ("GATC", true),
            ("GATTACA", false),
        ] {
            assert_eq!(is_palindromic(&parse_bases(pat).unwrap()), expect, "{pat}");
        }
    }

    #[test]
    fn doubled_text_has_one_terminal_sentinel() {
        let text = text_from_str("GATTACA").unwrap();
        let doubled = doubled_text(&text);
        assert_eq!(doubled.len(), 15);
        assert_eq!(forward_len(doubled.len()), 7);
        assert!(doubled.last().unwrap().is_sentinel());
        assert!(doubled[..14].iter().all(|s| !s.is_sentinel()));
        // Second half is the reverse complement of the first.
        let rendered: String = doubled[..14].iter().map(|s| s.to_string()).collect();
        assert_eq!(rendered, "GATTACATGTAATC");
    }

    #[test]
    fn raw_hit_mapping_covers_all_three_regions() {
        // n = 7, m = 3: forward hits at p ≤ 4, straddlers at 5..7,
        // reverse hits from 7.
        assert_eq!(map_raw_hit(0, 3, 7), Some(encode_hit(0, Strand::Forward)));
        assert_eq!(map_raw_hit(4, 3, 7), Some(encode_hit(4, Strand::Forward)));
        assert_eq!(map_raw_hit(5, 3, 7), None);
        assert_eq!(map_raw_hit(6, 3, 7), None);
        assert_eq!(map_raw_hit(7, 3, 7), Some(encode_hit(4, Strand::Reverse)));
        assert_eq!(map_raw_hit(11, 3, 7), Some(encode_hit(0, Strand::Reverse)));
    }

    #[test]
    fn locate_both_matches_the_naive_oracle_on_random_patterns() {
        let mut profile = GenomeProfile::toy();
        profile.len = 2500;
        let genome = Genome::synthesize(&profile, 13);
        let index = BidirFmIndex::from_genome(&genome, 4);
        let mut rng = SeededRng::new(0xB1D1);
        for i in 0..300 {
            let len = rng.range(1, 24);
            let pattern: Vec<Base> = if rng.chance(0.7) {
                let start = rng.range(0, genome.len() - len + 1);
                if rng.chance(0.5) {
                    genome.revcomp_window(start, len)
                } else {
                    genome.seq().slice(start, len)
                }
            } else {
                (0..len).map(|_| rng.base()).collect()
            };
            assert_eq!(
                index.locate_both(&pattern),
                naive::occurrences_both(genome.seq(), &pattern),
                "pattern #{i}"
            );
        }
        // The empty pattern and a palindrome, explicitly.
        assert_eq!(
            index.locate_both(&[]),
            naive::occurrences_both(genome.seq(), &[])
        );
        let pal = parse_bases("ACGT").unwrap();
        assert_eq!(
            index.locate_both(&pal),
            naive::occurrences_both(genome.seq(), &pal)
        );
    }

    #[test]
    fn reverse_strand_reads_resolve_to_their_origin() {
        let genome = Genome::synthesize(&GenomeProfile::toy(), 21);
        let index = BidirFmIndex::from_genome(&genome, 2);
        let read = genome.revcomp_window(777, 31);
        let hits = index.locate_both(&read);
        assert!(
            hits.iter()
                .any(|&h| decode_hit(h) == (777, Strand::Reverse)),
            "origin missing from {hits:?}"
        );
    }

    #[test]
    fn recipe_marker_survives_construction() {
        let index = BidirFmIndex::from_text(&text_from_str("GATTACA").unwrap(), 2);
        assert!(index.inner().is_bidirectional());
        assert!(index.inner().build_config().bidirectional);
        let forward = KStepFmIndex::from_text(&text_from_str("GATTACA").unwrap(), 2);
        assert!(!forward.is_bidirectional());
    }

    #[test]
    #[should_panic(expected = "bidirectional-recipe index")]
    fn from_inner_rejects_forward_indexes() {
        let forward = KStepFmIndex::from_text(&text_from_str("GATTACA").unwrap(), 2);
        let _ = BidirFmIndex::from_inner(forward);
    }
}
