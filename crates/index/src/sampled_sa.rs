//! The sampled suffix array backing `locate`.
//!
//! Storing the full suffix array costs 4 bytes/base — more than the 2-bit
//! reference itself. Instead we keep only entries whose *text position* is a
//! multiple of `sample_rate` ("SA-value sampling", the BWA scheme): any row
//! can then be resolved by walking LF at most `sample_rate - 1` steps until
//! a marked row is hit, adding the step count back. A rank-enabled bitset
//! maps marked rows to their slot in the compact sample vector.

use crate::interleave::prefetch_element;

/// A bitset over suffix-array rows with O(1) popcount rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankBits {
    words: Vec<u64>,
    /// `prefix[w]` = number of set bits in `words[0..w]`.
    prefix: Vec<u32>,
    len: usize,
}

impl RankBits {
    /// Builds the bitset from a predicate over `0..len`.
    pub fn from_fn(len: usize, mut is_set: impl FnMut(usize) -> bool) -> RankBits {
        let mut words = vec![0u64; len.div_ceil(64)];
        for (i, word) in words.iter_mut().enumerate() {
            for bit in 0..64 {
                let pos = i * 64 + bit;
                if pos < len && is_set(pos) {
                    *word |= 1 << bit;
                }
            }
        }
        let mut prefix = Vec::with_capacity(words.len());
        let mut sum = 0u32;
        for &w in &words {
            prefix.push(sum);
            sum += w.count_ones();
        }
        RankBits { words, prefix, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the bitset is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits in `0..i`.
    #[inline]
    pub fn rank(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank position {i} out of range");
        let (word, bit) = (i / 64, i % 64);
        let partial = if word < self.words.len() {
            // bit is in 0..=63, so the shift cannot overflow.
            (self.words[word] & ((1u64 << bit) - 1)).count_ones()
        } else {
            0
        };
        let full = if word < self.prefix.len() {
            self.prefix[word]
        } else {
            // i == len on a word boundary: all words are "full".
            self.prefix.last().copied().unwrap_or(0)
                + self.words.last().map_or(0, |w| w.count_ones())
        };
        full as usize + partial as usize
    }

    /// Combined membership test and rank: `Some(rank(i))` when bit `i` is
    /// set, else `None` — one word load answers both questions, where
    /// [`RankBits::get`] followed by [`RankBits::rank`] reads the word
    /// twice with a branch in between. This is the mark-check fast path of
    /// the batched locate resolver, which issues it once per live cursor
    /// per round.
    ///
    /// Bounds are checked in debug builds only; in release an `i` inside
    /// the final word's padding resolves to `None` (padding bits are never
    /// set) and anything further panics on the word index.
    #[inline]
    pub fn rank_if_set(&self, i: usize) -> Option<usize> {
        debug_assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        let (word, bit) = (i / 64, i % 64);
        let w = self.words[word];
        if (w >> bit) & 1 == 0 {
            return None;
        }
        // bit is in 0..=63, so the shift cannot overflow.
        Some(self.prefix[word] as usize + (w & ((1u64 << bit) - 1)).count_ones() as usize)
    }

    /// Hints the CPU to pull the word and prefix-count entries a later
    /// [`RankBits::rank_if_set`]`(i)` will read toward L1. Never faults; a
    /// no-op off x86-64.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        prefetch_element(&self.words, i / 64);
        prefetch_element(&self.prefix, i / 64);
    }

    /// Rebuilds the bitset from its raw words, recomputing the prefix
    /// counts exactly as [`RankBits::from_fn`] does — the snapshot load
    /// path. The caller validates that `words` covers `len` bits and
    /// that no padding bit past `len` is set.
    pub(crate) fn from_words(words: Vec<u64>, len: usize) -> RankBits {
        let mut prefix = Vec::with_capacity(words.len());
        let mut sum = 0u32;
        for &w in &words {
            prefix.push(sum);
            sum += w.count_ones();
        }
        RankBits { words, prefix, len }
    }

    /// The raw mark words (bit `i` of the set lives at word `i / 64`,
    /// bit `i % 64`), for snapshot serialization.
    pub(crate) fn word_slice(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes used.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8 + self.prefix.capacity() * 4
    }
}

/// Suffix-array samples at text positions divisible by the sampling rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledSuffixArray {
    marks: RankBits,
    /// SA values of marked rows, in row order.
    samples: Vec<u32>,
    sample_rate: usize,
}

impl SampledSuffixArray {
    /// Samples `sa`, keeping entries whose value is `0 (mod sample_rate)`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0`.
    pub fn new(sa: &[u32], sample_rate: usize) -> SampledSuffixArray {
        assert!(sample_rate > 0, "sample rate must be positive");
        let marks = RankBits::from_fn(sa.len(), |row| sa[row] as usize % sample_rate == 0);
        // `filter` hides the exact size from `collect`, which can nearly
        // double the allocation; shrink so `heap_bytes` reports true cost.
        let mut samples: Vec<u32> = sa
            .iter()
            .copied()
            .filter(|&v| v as usize % sample_rate == 0)
            .collect();
        samples.shrink_to_fit();
        SampledSuffixArray {
            marks,
            samples,
            sample_rate,
        }
    }

    /// Number of rows in the (full) suffix array this samples.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// `true` iff the underlying suffix array is empty.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// The text-position spacing of kept samples.
    pub fn sample_rate(&self) -> usize {
        self.sample_rate
    }

    /// The SA value at `row` if that row is sampled, else `None`.
    ///
    /// Branch-light: one combined word load decides membership *and* the
    /// sample slot ([`RankBits::rank_if_set`]), so the resolver's per-round
    /// mark check does not stall on a second rank lookup for the common
    /// unsampled-row case.
    #[inline]
    pub fn get(&self, row: usize) -> Option<u32> {
        Some(self.samples[self.marks.rank_if_set(row)?])
    }

    /// Hints the CPU to pull the mark word a later
    /// [`SampledSuffixArray::get`]`(row)` will test toward L1 — the batch
    /// resolver issues this for cursor `j + d` while retiring cursor `j`.
    /// Never faults; a no-op off x86-64.
    #[inline]
    pub fn prefetch(&self, row: usize) {
        self.marks.prefetch(row);
    }

    /// Number of rows actually stored.
    pub fn stored(&self) -> usize {
        self.samples.len()
    }

    /// Reassembles the structure from snapshot-verified parts. The
    /// caller (the snapshot loader) has already validated that the
    /// sample count equals the number of marked rows and that every
    /// sample is a `sample_rate`-aligned in-range text position.
    pub(crate) fn from_parts(
        marks: RankBits,
        samples: Vec<u32>,
        sample_rate: usize,
    ) -> SampledSuffixArray {
        assert!(sample_rate > 0, "sample rate must be positive");
        SampledSuffixArray {
            marks,
            samples,
            sample_rate,
        }
    }

    /// The mark bitset, for snapshot serialization.
    pub(crate) fn marks(&self) -> &RankBits {
        &self.marks
    }

    /// The stored SA values in row order, for snapshot serialization.
    pub(crate) fn sample_slice(&self) -> &[u32] {
        &self.samples
    }

    /// Heap bytes attributed to SA samples vs the rank-bits marks.
    pub fn heap_breakdown(&self) -> crate::layout::HeapBreakdown {
        crate::layout::HeapBreakdown {
            sa_samples: self.samples.capacity() * 4,
            rank_bits: self.marks.heap_bytes(),
            ..crate::layout::HeapBreakdown::default()
        }
    }

    /// Heap bytes used by marks and samples.
    pub fn heap_bytes(&self) -> usize {
        self.heap_breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::genome::text_from_str;
    use exma_genome::suffix_array;

    #[test]
    fn rank_bits_matches_naive() {
        let pattern = |i: usize| i % 3 == 0 || i % 7 == 0;
        for len in [0usize, 1, 63, 64, 65, 127, 128, 130, 500] {
            let bits = RankBits::from_fn(len, pattern);
            let mut expect = 0;
            for i in 0..=len {
                assert_eq!(bits.rank(i), expect, "len {len}, rank({i})");
                if i < len {
                    assert_eq!(bits.get(i), pattern(i));
                    expect += usize::from(pattern(i));
                }
            }
        }
    }

    #[test]
    fn rank_if_set_fuses_get_and_rank() {
        let pattern = |i: usize| i % 5 == 0 || i % 11 == 3;
        for len in [1usize, 63, 64, 65, 130, 500] {
            let bits = RankBits::from_fn(len, pattern);
            for i in 0..len {
                let expect = bits.get(i).then(|| bits.rank(i));
                assert_eq!(bits.rank_if_set(i), expect, "len {len}, bit {i}");
            }
        }
    }

    #[test]
    fn prefetch_is_a_safe_no_op() {
        let bits = RankBits::from_fn(100, |i| i % 2 == 0);
        for i in [0usize, 63, 99, 1 << 40] {
            bits.prefetch(i); // must never fault or panic
        }
    }

    #[test]
    fn sampled_sa_returns_exactly_the_marked_rows() {
        let text = text_from_str("CATAGACATTAGACCATAGGA").unwrap();
        let sa = suffix_array(&text);
        for rate in [1usize, 2, 4, 8] {
            let ssa = SampledSuffixArray::new(&sa, rate);
            assert_eq!(ssa.len(), sa.len());
            for (row, &value) in sa.iter().enumerate() {
                let expect = (value as usize % rate == 0).then_some(value);
                assert_eq!(ssa.get(row), expect, "rate {rate}, row {row}");
            }
        }
    }

    #[test]
    fn rate_one_stores_everything() {
        let text = text_from_str("GATTACA").unwrap();
        let sa = suffix_array(&text);
        let ssa = SampledSuffixArray::new(&sa, 1);
        assert_eq!(ssa.stored(), sa.len());
    }

    #[test]
    fn coarser_rate_stores_less() {
        let text = text_from_str(&"ACGTTGCA".repeat(100)).unwrap();
        let sa = suffix_array(&text);
        let fine = SampledSuffixArray::new(&sa, 2);
        let coarse = SampledSuffixArray::new(&sa, 32);
        assert!(coarse.stored() < fine.stored());
        assert!(coarse.heap_bytes() < fine.heap_bytes());
    }
}
