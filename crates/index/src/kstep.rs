//! The k-step FM-index: k pattern symbols per LF refinement.
//!
//! A 1-step FM-index spends one dependent memory round-trip per pattern
//! symbol — the latency wall the paper attacks (§III). The k-step index
//! widens the LF alphabet to k-mers: a C-array over the `4^k` expanded
//! alphabet ([`KStepFmIndex::kstart`]) plus a rank table over the k-BWT
//! ([`crate::kocc::KmerOccTable`]) refine the suffix-array interval by k
//! symbols at once, cutting the dependent chain of `count` from `m` to
//! `⌈m/k⌉` steps. Pattern lengths not divisible by k finish with ordinary
//! 1-step refinements on the embedded [`FmIndex`], which also resolves
//! `locate` rows — answers are identical to the 1-step index by
//! construction, and property-tested to be.

use std::ops::Range;

use exma_genome::genome::Genome;
use exma_genome::{bwt_from_sa, count_table, suffix_array, Base, Kmer, Symbol};

use crate::fm::FmIndex;
use crate::kocc::KmerOccTable;
use crate::layout::{DeltaWidth, HeapBreakdown, IndexError};
use crate::occ::OccTable;
use crate::sampled_sa::SampledSuffixArray;

/// Largest supported step width: `4^7` codes still fit the `u16` k-BWT
/// representation (the out-of-alphabet marker needs one extra value).
pub const MAX_STEP: usize = 7;

/// Space/latency knobs for k-step index construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KStepBuildConfig {
    /// Symbols consumed per LF refinement. The paper evaluates k ∈ {1, 2, 4}.
    pub k: usize,
    /// Checkpoint spacing of the embedded 1-step occurrence table.
    pub occ_sample_rate: usize,
    /// Text-position spacing of kept suffix-array samples.
    pub sa_sample_rate: usize,
    /// Checkpoint spacing of the k-mer occurrence table. Each checkpoint
    /// stores `4^k` counters, so this rate should grow with k to keep the
    /// table's footprint proportionate.
    pub k_occ_sample_rate: usize,
    /// Per-block checkpoint counter width of both occurrence tables:
    /// narrow widths select the two-level layout (sparse absolute
    /// superblock rows + per-block deltas), [`DeltaWidth::U32`] the flat
    /// absolute rows.
    pub delta_width: DeltaWidth,
    /// Blocks per absolute superblock row in the two-level layout;
    /// ignored with [`DeltaWidth::U32`].
    pub superblock_rate: usize,
    /// `true` iff the indexed text is the bidirectional doubled text
    /// (`forward · revcomp(forward) · $`, see [`crate::bidir`]). Purely a
    /// recipe marker: construction is identical, but snapshot and
    /// warm-start recipe-equality gates must distinguish a doubled index
    /// from a forward-only one built over a coincidentally equal text.
    pub bidirectional: bool,
}

impl KStepBuildConfig {
    /// Defaults for a given step width: the 1-step rates of
    /// [`crate::FmBuildConfig::default`] (one cache line per Occ block),
    /// a k-mer checkpoint spacing of `64k` so checkpoint memory grows
    /// sublinearly in the `4^k` alphabet expansion, and two-level `u16`
    /// checkpoints with superblocks every 16 blocks. Every default
    /// superblock span (at most 64 × 7 × 16 = 7168 rows) is well inside
    /// the `u16` delta guarantee, so these configs always build.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or greater than [`MAX_STEP`].
    pub fn for_k(k: usize) -> KStepBuildConfig {
        assert!(
            (1..=MAX_STEP).contains(&k),
            "k must be in 1..={MAX_STEP}, got {k}"
        );
        KStepBuildConfig {
            k,
            occ_sample_rate: 44,
            sa_sample_rate: 32,
            k_occ_sample_rate: 64 * k,
            delta_width: DeltaWidth::U16,
            superblock_rate: 16,
            bidirectional: false,
        }
    }
}

/// A k-step FM-index over a sentinel-terminated text.
///
/// ```
/// use exma_genome::{Genome, GenomeProfile};
/// use exma_index::{FmIndex, KStepFmIndex};
///
/// let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
/// let fm = FmIndex::from_genome(&genome);
/// let k4 = KStepFmIndex::from_genome(&genome, 4);
/// let pattern = genome.seq().slice(100, 22); // 22 % 4 == 2: exercises the tail
/// assert_eq!(k4.count(&pattern), fm.count(&pattern));
/// assert_eq!(k4.locate(&pattern), fm.locate(&pattern));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KStepFmIndex {
    k: usize,
    /// The 1-step tables: tail refinements, `locate` row resolution, and
    /// the k = 1 degenerate case.
    base: FmIndex,
    /// `kstarts[r]` = number of suffixes lexicographically smaller than the
    /// k-mer of rank `r` — the C-array over the expanded alphabet.
    kstarts: Vec<u32>,
    /// Rank over the k-BWT (the k symbols cyclically preceding each suffix).
    kocc: KmerOccTable,
    /// Recipe marker: the indexed text is the bidirectional doubled text.
    /// Not recoverable from the tables (they see an ordinary text), so it
    /// is stored and carried through snapshots.
    bidirectional: bool,
}

impl KStepFmIndex {
    /// Builds the index from a sentinel-terminated symbol text.
    ///
    /// # Errors
    ///
    /// Propagates [`IndexError`] from the rank tables: a text too long
    /// for `u32` counters, a two-level superblock span too wide for the
    /// 1-step table's `u16` deltas, or a k-mer count saturating the
    /// configured [`DeltaWidth`] before its superblock boundary.
    ///
    /// # Panics
    ///
    /// Panics if `text` is not sentinel-terminated (see
    /// [`exma_genome::suffix_array`]), a sample rate is zero, or
    /// `config.k` is out of `1..=`[`MAX_STEP`].
    pub fn from_text_with_config(
        text: &[Symbol],
        config: KStepBuildConfig,
    ) -> Result<KStepFmIndex, IndexError> {
        let k = config.k;
        assert!(
            (1..=MAX_STEP).contains(&k),
            "k must be in 1..={MAX_STEP}, got {k}"
        );
        let n = text.len();
        let sa = suffix_array(text);
        let bwt = bwt_from_sa(text, &sa);
        let occ = if config.delta_width.is_absolute() {
            OccTable::new(&bwt, config.occ_sample_rate)
        } else {
            OccTable::two_level(&bwt, config.occ_sample_rate, config.superblock_rate)?
        };
        let base = FmIndex::from_parts(
            count_table(text),
            occ,
            SampledSuffixArray::new(&sa, config.sa_sample_rate),
        );

        // k-BWT: the k symbols cyclically preceding each suffix, packed into
        // a code over the 4^k expanded alphabet; contexts containing the
        // sentinel take the single out-of-alphabet code `stride`. Stepping
        // back k positions as `n - (k % n)` keeps the arithmetic in range
        // even when the text is shorter than k (where every window crosses
        // the sentinel and the code is out-of-alphabet anyway).
        let stride = 1usize << (2 * k);
        let back = n - k % n;
        let codes: Vec<u16> = sa
            .iter()
            .map(|&p| {
                let mut code = 0usize;
                for j in 0..k {
                    match text[(p as usize + back + j) % n].base() {
                        Some(b) => code = (code << 2) | b.code() as usize,
                        None => return stride as u16,
                    }
                }
                code as u16
            })
            .collect();
        let kocc = KmerOccTable::new(
            codes,
            stride,
            config.k_occ_sample_rate,
            config.delta_width,
            config.superblock_rate,
        )?;

        // C-array over the expanded alphabet. Each suffix's first
        // min(k, len) symbols become a base-5 key ($ = 0 < A..T = 1..4,
        // padded with 0 past the sentinel); `kstarts[r]` is then the number
        // of suffix keys below the k-mer's own key, i.e. the first row of
        // the r-th k-mer's suffix-array bucket.
        let pow5 = 5usize.pow(k as u32);
        let mut hist = vec![0u32; pow5];
        for &p in &sa {
            let mut key = 0usize;
            for j in 0..k {
                let idx = p as usize + j;
                let digit = if idx < n {
                    text[idx].code() as usize
                } else {
                    0
                };
                key = key * 5 + digit;
            }
            hist[key] += 1;
        }
        let mut below = 0u32;
        let prefix: Vec<u32> = hist
            .iter()
            .map(|&c| {
                let start = below;
                below += c;
                start
            })
            .collect();
        let kstarts: Vec<u32> = (0..stride)
            .map(|r| {
                let mut key = 0usize;
                for j in (0..k).rev() {
                    key = key * 5 + ((r >> (2 * j)) & 3) + 1;
                }
                prefix[key]
            })
            .collect();

        Ok(KStepFmIndex {
            k,
            base,
            kstarts,
            kocc,
            bidirectional: config.bidirectional,
        })
    }

    /// Builds the index with default sampling rates for step width `k`
    /// (which are provably buildable for any text the workspace can
    /// address — see [`KStepBuildConfig::for_k`]).
    pub fn from_text(text: &[Symbol], k: usize) -> KStepFmIndex {
        KStepFmIndex::from_text_with_config(text, KStepBuildConfig::for_k(k))
            .expect("the default layout builds for any u32-addressable text")
    }

    /// Builds the index for a genome's reference sequence.
    pub fn from_genome(genome: &Genome, k: usize) -> KStepFmIndex {
        KStepFmIndex::from_text(&genome.text_with_sentinel(), k)
    }

    /// Reassembles the index from snapshot-verified parts; the loader
    /// has already proven the components mutually consistent.
    pub(crate) fn from_parts(
        k: usize,
        base: FmIndex,
        kstarts: Vec<u32>,
        kocc: KmerOccTable,
        bidirectional: bool,
    ) -> KStepFmIndex {
        KStepFmIndex {
            k,
            base,
            kstarts,
            kocc,
            bidirectional,
        }
    }

    /// The expanded-alphabet C-array, for snapshot serialization.
    pub(crate) fn kstart_slice(&self) -> &[u32] {
        &self.kstarts
    }

    /// The build recipe this index was constructed with, recovered from
    /// its components (plus the stored bidirectional marker). This is the
    /// layout-compatibility value snapshots embed: two indexes built from
    /// the same text agree byte-for-byte exactly when their recovered
    /// configs are equal.
    pub fn build_config(&self) -> KStepBuildConfig {
        KStepBuildConfig {
            k: self.k,
            occ_sample_rate: self.base.occ().sample_rate(),
            sa_sample_rate: self.base.sampled_sa().sample_rate(),
            k_occ_sample_rate: self.kocc.sample_rate(),
            delta_width: self.kocc.delta_width(),
            superblock_rate: self.kocc.superblock_rate(),
            bidirectional: self.bidirectional,
        }
    }

    /// Symbols consumed per LF refinement.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `true` iff this index was built over the bidirectional doubled
    /// text (see [`crate::bidir`]).
    pub fn is_bidirectional(&self) -> bool {
        self.bidirectional
    }

    /// Length of the indexed text, including the sentinel.
    pub fn text_len(&self) -> usize {
        self.base.text_len()
    }

    /// The embedded 1-step index (tail refinements and row resolution).
    pub fn base_index(&self) -> &FmIndex {
        &self.base
    }

    /// The k-mer occurrence table.
    pub fn kmer_occ(&self) -> &KmerOccTable {
        &self.kocc
    }

    /// First suffix-array row of `kmer`'s bucket — the expanded-alphabet
    /// C-array, `C_k(kmer)`.
    ///
    /// # Panics
    ///
    /// Panics if `kmer.k() != self.k()`.
    pub fn kstart(&self, kmer: Kmer) -> usize {
        assert_eq!(kmer.k(), self.k, "kmer width mismatch");
        self.kstarts[kmer.rank() as usize] as usize
    }

    /// One k-step LF refinement: narrows `range` (rows whose suffixes start
    /// with some matched suffix `S`) to the rows starting with `kmer · S`.
    /// Returns `0..0` when no occurrences remain.
    ///
    /// # Panics
    ///
    /// Panics if `kmer.k() != self.k()` or `range` extends past the text.
    #[inline]
    pub fn kstep(&self, kmer: Kmer, range: Range<usize>) -> Range<usize> {
        assert_eq!(kmer.k(), self.k, "kmer width mismatch");
        let r = kmer.rank() as u16;
        let start = self.kstarts[r as usize] as usize;
        let (rank_lo, rank_hi) = self.kocc.rank_pair(r, range.start, range.end);
        let lo = start + rank_lo as usize;
        let hi = start + rank_hi as usize;
        if lo >= hi {
            0..0
        } else {
            lo..hi
        }
    }

    /// The suffix-array interval of rows whose suffixes start with
    /// `pattern`: `⌊m/k⌋` k-step refinements right to left, then the
    /// leading `m mod k` symbols one at a time on the 1-step tables.
    ///
    /// The empty pattern matches every row. An empty range means no
    /// occurrences.
    pub fn backward_search(&self, pattern: &[Base]) -> Range<usize> {
        let mut range = 0..self.text_len();
        let tail = pattern.len() % self.k;
        let mut i = pattern.len();
        while i >= tail + self.k {
            i -= self.k;
            range = self.kstep(Kmer::from_bases(&pattern[i..i + self.k]), range);
            if range.is_empty() {
                return 0..0;
            }
        }
        for &b in pattern[..tail].iter().rev() {
            range = self.base.step(b, range);
            if range.is_empty() {
                return 0..0;
            }
        }
        range
    }

    /// Number of occurrences of `pattern` in the reference.
    pub fn count(&self, pattern: &[Base]) -> usize {
        self.backward_search(pattern).len()
    }

    /// All starting positions of `pattern` in the reference, sorted
    /// ascending.
    pub fn locate(&self, pattern: &[Base]) -> Vec<u32> {
        let mut positions = Vec::new();
        self.locate_into(pattern, &mut positions);
        positions
    }

    /// Allocation-reusing `locate`: clears `out` and fills it with the
    /// sorted starting positions of `pattern`.
    pub fn locate_into(&self, pattern: &[Base], out: &mut Vec<u32>) {
        self.base
            .resolve_range_into(self.backward_search(pattern), out);
    }

    /// Heap bytes of all index components (1-step tables included),
    /// attributed per component; the expanded-alphabet C-array counts
    /// under `other`.
    pub fn heap_breakdown(&self) -> HeapBreakdown {
        let mut heap = self.base.heap_breakdown().add(&self.kocc.heap_breakdown());
        heap.other += self.kstarts.capacity() * 4;
        heap
    }

    /// Heap bytes of all index components (1-step tables included).
    pub fn heap_bytes(&self) -> usize {
        self.heap_breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::alphabet::parse_bases;
    use exma_genome::genome::text_from_str;

    fn fig3_kstep(k: usize) -> KStepFmIndex {
        // The paper's running example: G = CATAGA$.
        KStepFmIndex::from_text_with_config(
            &text_from_str("CATAGA").unwrap(),
            KStepBuildConfig {
                k,
                occ_sample_rate: 2,
                sa_sample_rate: 2,
                k_occ_sample_rate: 3,
                ..KStepBuildConfig::for_k(k)
            },
        )
        .unwrap()
    }

    #[test]
    fn fig3_counts_for_every_k() {
        for k in 1..=4 {
            let fm = fig3_kstep(k);
            for (pat, expect) in [
                ("A", 3),
                ("TA", 1),
                ("AGA", 1),
                ("ATAG", 1),
                ("CATAGA", 1),
                ("GG", 0),
                ("TT", 0),
                ("CATAGAC", 0),
            ] {
                assert_eq!(
                    fm.count(&parse_bases(pat).unwrap()),
                    expect,
                    "k={k}, pattern {pat}"
                );
            }
        }
    }

    #[test]
    fn fig3_locate_for_every_k() {
        for k in 1..=4 {
            let fm = fig3_kstep(k);
            assert_eq!(
                fm.locate(&parse_bases("A").unwrap()),
                vec![1, 3, 5],
                "k={k}"
            );
            assert_eq!(fm.locate(&parse_bases("AGA").unwrap()), vec![3], "k={k}");
            assert_eq!(
                fm.locate(&parse_bases("GG").unwrap()),
                Vec::<u32>::new(),
                "k={k}"
            );
        }
    }

    #[test]
    fn empty_pattern_matches_every_row() {
        let fm = fig3_kstep(2);
        assert_eq!(fm.backward_search(&[]), 0..7);
        assert_eq!(fm.count(&[]), 7);
    }

    #[test]
    fn kstart_agrees_with_one_step_search() {
        // C_k of a k-mer is the lower bound of its 1-step interval whenever
        // the k-mer occurs at all.
        let text = text_from_str("CCATAGACATTAGACCATAGGACATAGACC").unwrap();
        for k in [2usize, 4] {
            let fm = KStepFmIndex::from_text(&text, k);
            let mut kmer = Some(Kmer::first(k));
            while let Some(km) = kmer {
                let range = fm.base_index().backward_search(&km.to_bases());
                if !range.is_empty() {
                    assert_eq!(fm.kstart(km), range.start, "k={k}, kmer {km}");
                }
                kmer = km.successor();
            }
        }
    }

    #[test]
    fn tail_lengths_cover_every_residue() {
        let text = text_from_str("CCATAGACATTAGACCATAGGACATAGACC").unwrap();
        let one = FmIndex::from_text(&text);
        let k4 = KStepFmIndex::from_text(&text, 4);
        // Prefixes of a known substring: lengths 1..=8 hit every residue
        // class mod 4, including the all-tail (< k) lengths 1..=3.
        let full = parse_bases("CATAGACC").unwrap();
        for len in 1..=full.len() {
            let pat = &full[full.len() - len..];
            assert_eq!(k4.count(pat), one.count(pat), "len {len}");
            assert_eq!(k4.locate(pat), one.locate(pat), "len {len}");
        }
    }

    #[test]
    fn text_shorter_than_k_still_answers() {
        // n = 3 (two bases + sentinel) with k = 4: every k-window crosses
        // the sentinel, so k-steps find nothing and tails do all the work.
        let text = text_from_str("AC").unwrap();
        let fm = KStepFmIndex::from_text(&text, 4);
        assert_eq!(fm.count(&parse_bases("A").unwrap()), 1);
        assert_eq!(fm.count(&parse_bases("AC").unwrap()), 1);
        assert_eq!(fm.count(&parse_bases("CA").unwrap()), 0);
        assert_eq!(fm.count(&parse_bases("ACAC").unwrap()), 0);
        assert_eq!(fm.locate(&parse_bases("AC").unwrap()), vec![0]);
        assert_eq!(fm.count(&[]), 3);
    }

    #[test]
    #[should_panic(expected = "kmer width mismatch")]
    fn kstep_rejects_wrong_width() {
        let fm = fig3_kstep(2);
        let _ = fm.kstep("AGA".parse().unwrap(), 0..7);
    }
}
