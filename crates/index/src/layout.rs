//! Layout types shared by the rank tables: checkpoint compression knobs,
//! typed construction errors, and per-component heap attribution.
//!
//! The two-level checkpoint scheme (see [`crate::KmerOccTable`]) stores
//! sparse absolute `u32` superblock rows plus narrow per-block deltas.
//! [`DeltaWidth`] picks the delta lane width — and `U32` opts back into
//! the flat absolute rows of earlier revisions. Construction can now
//! fail (a delta can saturate before its superblock boundary, a text can
//! outgrow `u32` row ids), so builders return [`IndexError`] instead of
//! panicking. [`HeapBreakdown`] replaces the scalar `heap_bytes()`
//! plumbing with per-component attribution so benchmarks and the server
//! STATS frame can report *where* the bytes went.

use std::fmt;

/// Width of the per-block delta counters in a two-level checkpoint row.
///
/// Deltas count occurrences since the superblock's absolute row, so a
/// width is valid only if no count within one superblock span
/// (`sample_rate * superblock_rate` rows) exceeds its maximum — checked
/// at construction time ([`IndexError::DeltaOverflow`]). `U32` is the
/// escape hatch: full-width absolute rows per block and *no* superblock
/// array, byte-for-byte the flat layout of earlier revisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeltaWidth {
    /// One byte per delta counter: the tightest rows, but only texts
    /// whose superblock spans stay under 256 occurrences of any one
    /// code can be built.
    U8,
    /// Two bytes per delta counter. Provably safe whenever the
    /// superblock span `sample_rate * superblock_rate` is at most
    /// 65 535 rows. The default.
    #[default]
    U16,
    /// Absolute `u32` checkpoint rows, no superblocks: the uncompressed
    /// baseline layout.
    U32,
}

impl DeltaWidth {
    /// Bytes one delta counter occupies.
    pub fn bytes(self) -> usize {
        match self {
            DeltaWidth::U8 => 1,
            DeltaWidth::U16 => 2,
            DeltaWidth::U32 => 4,
        }
    }

    /// Largest delta the width can store.
    pub fn max_delta(self) -> u32 {
        match self {
            DeltaWidth::U8 => u32::from(u8::MAX),
            DeltaWidth::U16 => u32::from(u16::MAX),
            DeltaWidth::U32 => u32::MAX,
        }
    }

    /// `true` iff this width means flat absolute rows (no superblocks).
    pub fn is_absolute(self) -> bool {
        matches!(self, DeltaWidth::U32)
    }
}

impl fmt::Display for DeltaWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeltaWidth::U8 => "u8",
            DeltaWidth::U16 => "u16",
            DeltaWidth::U32 => "u32",
        })
    }
}

/// Why an index (or one of its rank tables) could not be built.
///
/// Everything here is decidable at construction time from the text and
/// the layout knobs; queries on a successfully built index never see
/// these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum IndexError {
    /// The text has too many rows for the table's `u32` counters and
    /// suffix-array positions.
    IndexTooLarge {
        /// Rows the text would need.
        rows: usize,
    },
    /// A delta counter saturated before its superblock boundary: some
    /// code occurs more than [`DeltaWidth::max_delta`] times within one
    /// superblock span. Widen the deltas, shrink `superblock_rate`, or
    /// shrink `sample_rate`.
    DeltaOverflow {
        /// Block whose checkpoint row overflowed.
        block: usize,
        /// The code whose count overflowed.
        code: usize,
        /// The delta that did not fit.
        delta: u32,
        /// Largest delta the configured width can store.
        max: u32,
    },
    /// The superblock span `sample_rate * superblock_rate` exceeds what
    /// the fixed `u16` deltas of the one-step Occ table can be *proven*
    /// to cover (65 535 rows).
    SuperblockSpanTooWide {
        /// The configured checkpoint spacing.
        sample_rate: usize,
        /// The configured superblock spacing, in blocks.
        superblock_rate: usize,
        /// Largest provably safe span, in rows.
        max_span: usize,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IndexError::IndexTooLarge { rows } => {
                write!(f, "text with {rows} rows is too large for u32 counters")
            }
            IndexError::DeltaOverflow {
                block,
                code,
                delta,
                max,
            } => write!(
                f,
                "delta {delta} for code {code} at block {block} exceeds the \
                 configured delta width (max {max}); widen deltas or shrink \
                 the superblock span"
            ),
            IndexError::SuperblockSpanTooWide {
                sample_rate,
                superblock_rate,
                max_span,
            } => write!(
                f,
                "superblock span {sample_rate} x {superblock_rate} rows \
                 exceeds the u16 delta guarantee of {max_span} rows"
            ),
        }
    }
}

impl std::error::Error for IndexError {}

/// Heap bytes of an index attributed to its components.
///
/// Produced by every table's and index's `heap_breakdown()`; the scalar
/// `heap_bytes()` accessors are now sums over this. Components are
/// *exact*: each counts real allocated capacity, and `total()` equals
/// the old scalar answer. Fields are additive so breakdowns of composed
/// structures (a [`crate::KStepFmIndex`] over a [`crate::FmIndex`]) and
/// of sharded engines can be summed with [`HeapBreakdown::add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapBreakdown {
    /// Absolute checkpoint rows of the k-step table: the sparse `u32`
    /// superblock array in two-level layouts, or every (u32) checkpoint
    /// row in the absolute layout.
    pub k_occ_checkpoints: usize,
    /// Per-block narrow delta rows of the k-step table (zero in the
    /// absolute layout).
    pub k_occ_deltas: usize,
    /// Interleaved k-BWT code lanes (including block padding) and the
    /// totals row of the k-step table.
    pub k_occ_codes: usize,
    /// The 1-step Occ table: checkpoint rows, superblocks, and BWT code
    /// lanes together.
    pub one_step_occ: usize,
    /// Sampled suffix-array positions.
    pub sa_samples: usize,
    /// The rank-bits membership structure marking sampled rows.
    pub rank_bits: usize,
    /// Everything else: symbol count tables, k-mer interval starts,
    /// sentinel-exception rows.
    pub other: usize,
}

impl HeapBreakdown {
    /// Total heap bytes — the old scalar `heap_bytes()` answer.
    pub fn total(&self) -> usize {
        self.k_occ_checkpoints
            + self.k_occ_deltas
            + self.k_occ_codes
            + self.one_step_occ
            + self.sa_samples
            + self.rank_bits
            + self.other
    }

    /// Component-wise sum of two breakdowns.
    #[must_use]
    pub fn add(&self, other: &HeapBreakdown) -> HeapBreakdown {
        HeapBreakdown {
            k_occ_checkpoints: self.k_occ_checkpoints + other.k_occ_checkpoints,
            k_occ_deltas: self.k_occ_deltas + other.k_occ_deltas,
            k_occ_codes: self.k_occ_codes + other.k_occ_codes,
            one_step_occ: self.one_step_occ + other.one_step_occ,
            sa_samples: self.sa_samples + other.sa_samples,
            rank_bits: self.rank_bits + other.rank_bits,
            other: self.other + other.other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_describe_themselves() {
        assert_eq!(DeltaWidth::default(), DeltaWidth::U16);
        assert_eq!(DeltaWidth::U8.bytes(), 1);
        assert_eq!(DeltaWidth::U16.max_delta(), 65_535);
        assert!(DeltaWidth::U32.is_absolute());
        assert!(!DeltaWidth::U16.is_absolute());
        assert_eq!(DeltaWidth::U8.to_string(), "u8");
    }

    #[test]
    fn errors_render_their_knobs() {
        let e = IndexError::DeltaOverflow {
            block: 7,
            code: 3,
            delta: 300,
            max: 255,
        };
        let text = e.to_string();
        assert!(text.contains("300") && text.contains("block 7") && text.contains("255"));
        let e = IndexError::SuperblockSpanTooWide {
            sample_rate: 44,
            superblock_rate: 4096,
            max_span: 65_535,
        };
        assert!(e.to_string().contains("65535 rows"));
        assert!(IndexError::IndexTooLarge {
            rows: 5_000_000_000
        }
        .to_string()
        .contains("5000000000"));
    }

    #[test]
    fn breakdown_totals_and_sums() {
        let a = HeapBreakdown {
            k_occ_checkpoints: 1,
            k_occ_deltas: 2,
            k_occ_codes: 3,
            one_step_occ: 4,
            sa_samples: 5,
            rank_bits: 6,
            other: 7,
        };
        assert_eq!(a.total(), 28);
        let b = a.add(&a);
        assert_eq!(b.total(), 56);
        assert_eq!(b.k_occ_deltas, 4);
        assert_eq!(HeapBreakdown::default().total(), 0);
    }
}
