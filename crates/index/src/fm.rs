//! The FM-index: backward-search `count` and `locate`.
//!
//! This is the software baseline EXMA accelerates (paper §II): a C-array
//! (`CountTable`), a sampled occurrence table over the BWT, and a sampled
//! suffix array. `count` runs one LF-refinement per pattern symbol, right
//! to left; `locate` resolves each row of the final interval by LF-walking
//! to a sampled row. Every future PR — k-step indexing, batching, the EXMA
//! table itself — is measured against this query path.

use std::ops::Range;

use exma_genome::genome::Genome;
use exma_genome::{bwt_from_sa, count_table, suffix_array, Base, CountTable, Symbol};

use crate::layout::{DeltaWidth, HeapBreakdown, IndexError};
use crate::occ::OccTable;
use crate::sampled_sa::SampledSuffixArray;

/// Space/latency knobs for index construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmBuildConfig {
    /// Checkpoint spacing of the occurrence table (BWT symbols).
    pub occ_sample_rate: usize,
    /// Text-position spacing of kept suffix-array samples.
    pub sa_sample_rate: usize,
    /// Checkpoint compression: [`DeltaWidth::U32`] keeps the flat
    /// absolute rows; any narrow width selects the two-level layout (the
    /// 1-step Occ table's deltas are always `u16`).
    pub delta_width: DeltaWidth,
    /// Blocks per absolute superblock row in the two-level layout;
    /// ignored with [`DeltaWidth::U32`].
    pub superblock_rate: usize,
}

impl Default for FmBuildConfig {
    /// Occ checkpoints every 44 symbols — the widest spacing whose
    /// interleaved block (five counters + 44 one-byte codes) fits one
    /// 64-byte cache line even with flat `u32` counters — two-level
    /// `u16` deltas with superblocks every 16 blocks, and BWA-style SA
    /// samples every 32 positions. The default superblock span
    /// (44 × 16 = 704 rows) is provably overflow-free.
    fn default() -> FmBuildConfig {
        FmBuildConfig {
            occ_sample_rate: 44,
            sa_sample_rate: 32,
            delta_width: DeltaWidth::U16,
            superblock_rate: 16,
        }
    }
}

/// An FM-index over a sentinel-terminated text.
#[derive(Debug, Clone, PartialEq)]
pub struct FmIndex {
    counts: CountTable,
    occ: OccTable,
    ssa: SampledSuffixArray,
}

impl FmIndex {
    /// Builds the index from a sentinel-terminated symbol text with the
    /// given configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`IndexError`] from the occurrence table: a text too
    /// long for `u32` counters, or a two-level superblock span too wide
    /// for its `u16` deltas.
    ///
    /// # Panics
    ///
    /// Panics if `text` is not sentinel-terminated (see
    /// [`exma_genome::suffix_array`]) or a sample rate is zero.
    pub fn from_text_with_config(
        text: &[Symbol],
        config: FmBuildConfig,
    ) -> Result<FmIndex, IndexError> {
        let sa = suffix_array(text);
        let bwt = bwt_from_sa(text, &sa);
        let occ = if config.delta_width.is_absolute() {
            OccTable::new(&bwt, config.occ_sample_rate)
        } else {
            OccTable::two_level(&bwt, config.occ_sample_rate, config.superblock_rate)?
        };
        Ok(FmIndex::from_parts(
            count_table(text),
            occ,
            SampledSuffixArray::new(&sa, config.sa_sample_rate),
        ))
    }

    /// Assembles an index from already-built components, so callers that
    /// hold the suffix array (e.g. the k-step builder) need not recompute
    /// it.
    pub(crate) fn from_parts(
        counts: CountTable,
        occ: OccTable,
        ssa: SampledSuffixArray,
    ) -> FmIndex {
        FmIndex { counts, occ, ssa }
    }

    /// Builds the index from a sentinel-terminated symbol text with default
    /// sampling rates (which are provably buildable for any text the
    /// workspace can address).
    pub fn from_text(text: &[Symbol]) -> FmIndex {
        FmIndex::from_text_with_config(text, FmBuildConfig::default())
            .expect("the default layout builds for any u32-addressable text")
    }

    /// Builds the index for a genome's reference sequence.
    ///
    /// ```
    /// use exma_genome::{Genome, GenomeProfile};
    /// use exma_index::FmIndex;
    ///
    /// let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
    /// let fm = FmIndex::from_genome(&genome);
    /// let pattern = genome.seq().slice(100, 20);
    /// assert!(fm.locate(&pattern).contains(&100));
    /// ```
    pub fn from_genome(genome: &Genome) -> FmIndex {
        FmIndex::from_text(&genome.text_with_sentinel())
    }

    /// Length of the indexed text, including the sentinel.
    pub fn text_len(&self) -> usize {
        self.occ.len()
    }

    /// The C-array of the indexed text.
    pub fn counts(&self) -> &CountTable {
        &self.counts
    }

    /// The occurrence table.
    pub fn occ(&self) -> &OccTable {
        &self.occ
    }

    /// The sampled suffix array.
    pub fn sampled_sa(&self) -> &SampledSuffixArray {
        &self.ssa
    }

    /// LF-mapping: the suffix-array row of the suffix starting one text
    /// position before the suffix at `row` (cyclically for the sentinel
    /// row). One LF step is the unit of work EXMA's hardware pipelines.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.text_len()`.
    pub fn lf(&self, row: usize) -> usize {
        let (s, rank) = self.occ.lf_data(row);
        (self.counts.count(s) + rank) as usize
    }

    /// One LF refinement: narrows `range` (rows whose suffixes start with
    /// some matched suffix `S`) to the rows starting with `b · S`. Returns
    /// `0..0` when no occurrences remain.
    ///
    /// # Panics
    ///
    /// Panics if `range` extends past the text.
    #[inline]
    pub fn step(&self, b: Base, range: Range<usize>) -> Range<usize> {
        let s = Symbol::Base(b);
        let c = self.counts.count(s) as usize;
        let lo = c + self.occ.rank(s, range.start) as usize;
        let hi = c + self.occ.rank(s, range.end) as usize;
        if lo >= hi {
            0..0
        } else {
            lo..hi
        }
    }

    /// The suffix-array interval of rows whose suffixes start with
    /// `pattern` — the backward-search loop of paper Fig. 2.
    ///
    /// The empty pattern matches every row. An empty range means no
    /// occurrences.
    pub fn backward_search(&self, pattern: &[Base]) -> Range<usize> {
        let mut range = 0..self.text_len();
        for &b in pattern.iter().rev() {
            range = self.step(b, range);
            if range.is_empty() {
                return 0..0;
            }
        }
        range
    }

    /// Number of occurrences of `pattern` in the reference.
    pub fn count(&self, pattern: &[Base]) -> usize {
        self.backward_search(pattern).len()
    }

    /// All starting positions of `pattern` in the reference, sorted
    /// ascending. Resolves each interval row by LF-walking to a sampled
    /// row — at most `sa_sample_rate - 1` steps, since text positions
    /// decrease by one per step and every multiple of the rate is sampled.
    pub fn locate(&self, pattern: &[Base]) -> Vec<u32> {
        let mut positions = Vec::new();
        self.locate_into(pattern, &mut positions);
        positions
    }

    /// Allocation-reusing `locate`: clears `out` and fills it with the
    /// sorted starting positions of `pattern`. Batch callers issuing many
    /// locates can recycle one buffer instead of allocating per query.
    pub fn locate_into(&self, pattern: &[Base], out: &mut Vec<u32>) {
        self.resolve_range_into(self.backward_search(pattern), out);
    }

    /// Resolves every row of a suffix-array interval (as returned by
    /// [`FmIndex::backward_search`]) into `out`, sorted ascending. `out` is
    /// cleared first.
    ///
    /// Each row LF-walks serially — one dependent cache miss per step.
    /// Batch callers with many rows in flight should use
    /// [`crate::resolve::BatchResolver`], which runs the same walks in
    /// lockstep rounds with sorting and prefetch; its output is
    /// element-identical to this method, interval by interval.
    pub fn resolve_range_into(&self, rows: Range<usize>, out: &mut Vec<u32>) {
        out.clear();
        out.extend(rows.map(|row| self.resolve_row(row)));
        out.sort_unstable();
    }

    /// The suffix-array value of `row`, via the sampled suffix array.
    pub fn resolve_row(&self, row: usize) -> u32 {
        self.resolve_row_with_steps(row).0
    }

    /// [`FmIndex::resolve_row`] plus the LF-walk length it took — the
    /// round number in which a lockstep resolver cursor for this row
    /// retires, which is what the capped-locate rule below is defined
    /// over.
    pub fn resolve_row_with_steps(&self, mut row: usize) -> (u32, u32) {
        let mut steps = 0u32;
        loop {
            if let Some(pos) = self.ssa.get(row) {
                return (pos + steps, steps);
            }
            row = self.lf(row);
            steps += 1;
        }
    }

    /// Capped interval resolution — the sequential reference for
    /// `QueryRequest::Locate { max_hits }`. Keeps at most `max_hits`
    /// positions of `rows`, chosen by the deterministic round rule the
    /// lockstep resolver enforces: let a row's *round* be its LF-walk
    /// length to a sampled mark, and `R` the first round by which at
    /// least `max_hits` rows have resolved; the kept positions are the
    /// `max_hits` smallest among the rows resolving within round `R`.
    /// (Rows resolving in round `R` itself all still count — the cap is
    /// checked at round boundaries — so the rule is independent of any
    /// within-round processing order, which is what makes capped answers
    /// identical across schedules, engines, and thread counts.)
    ///
    /// Returns `true` iff the cap actually truncated the output. `out`
    /// is cleared first and left sorted ascending; with
    /// `max_hits >= rows.len()` this is exactly
    /// [`FmIndex::resolve_range_into`].
    pub fn resolve_range_capped_into(
        &self,
        rows: Range<usize>,
        max_hits: u32,
        out: &mut Vec<u32>,
    ) -> bool {
        let total = rows.len();
        if max_hits as usize >= total {
            self.resolve_range_into(rows, out);
            return false;
        }
        out.clear();
        if max_hits == 0 {
            return total > 0;
        }
        // (round, position) of every row; ascending sort puts the
        // cap-th earliest retirement at index max_hits - 1, whose round
        // is R.
        let mut walks: Vec<(u32, u32)> = rows
            .map(|row| {
                let (pos, steps) = self.resolve_row_with_steps(row);
                (steps, pos)
            })
            .collect();
        walks.sort_unstable();
        let last_round = walks[max_hits as usize - 1].0;
        let candidates = walks.partition_point(|&(steps, _)| steps <= last_round);
        let mut kept: Vec<u32> = walks[..candidates].iter().map(|&(_, pos)| pos).collect();
        kept.sort_unstable();
        kept.truncate(max_hits as usize);
        out.extend_from_slice(&kept);
        true
    }

    /// Heap bytes of all index components, attributed per component.
    pub fn heap_breakdown(&self) -> HeapBreakdown {
        self.occ.heap_breakdown().add(&self.ssa.heap_breakdown())
    }

    /// Heap bytes of all index components.
    pub fn heap_bytes(&self) -> usize {
        self.heap_breakdown().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::alphabet::parse_bases;
    use exma_genome::genome::text_from_str;

    fn fig3_index() -> FmIndex {
        // The paper's running example: G = CATAGA$.
        FmIndex::from_text_with_config(
            &text_from_str("CATAGA").unwrap(),
            FmBuildConfig {
                occ_sample_rate: 2,
                sa_sample_rate: 2,
                ..FmBuildConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn fig3_counts() {
        let fm = fig3_index();
        assert_eq!(fm.count(&parse_bases("A").unwrap()), 3);
        assert_eq!(fm.count(&parse_bases("TA").unwrap()), 1);
        assert_eq!(fm.count(&parse_bases("AGA").unwrap()), 1);
        assert_eq!(fm.count(&parse_bases("CATAGA").unwrap()), 1);
        assert_eq!(fm.count(&parse_bases("GG").unwrap()), 0);
        assert_eq!(fm.count(&parse_bases("TT").unwrap()), 0);
    }

    #[test]
    fn fig3_locate() {
        let fm = fig3_index();
        assert_eq!(fm.locate(&parse_bases("A").unwrap()), vec![1, 3, 5]);
        assert_eq!(fm.locate(&parse_bases("CATAGA").unwrap()), vec![0]);
        assert_eq!(fm.locate(&parse_bases("GG").unwrap()), Vec::<u32>::new());
    }

    #[test]
    fn locate_into_reuses_and_clears_the_buffer() {
        let fm = fig3_index();
        let mut buf = vec![99u32; 8]; // stale content must not survive
        fm.locate_into(&parse_bases("A").unwrap(), &mut buf);
        assert_eq!(buf, vec![1, 3, 5]);
        fm.locate_into(&parse_bases("GG").unwrap(), &mut buf);
        assert_eq!(buf, Vec::<u32>::new());
    }

    #[test]
    fn empty_pattern_matches_every_row() {
        let fm = fig3_index();
        assert_eq!(fm.backward_search(&[]), 0..7);
        assert_eq!(fm.count(&[]), 7);
    }

    #[test]
    fn lf_walk_spells_text_backwards() {
        // Repeated LF from the sentinel row visits the text right to left.
        let text = text_from_str("CATAGA").unwrap();
        let fm = FmIndex::from_text(&text);
        let mut row = 0; // row 0 is the sentinel suffix.
        let mut recovered = Vec::new();
        for _ in 0..text.len() - 1 {
            recovered.push(fm.occ.symbol(row));
            row = fm.lf(row);
        }
        recovered.reverse();
        let spelled: String = recovered.iter().map(|s| s.to_string()).collect();
        assert_eq!(spelled, "CATAGA");
    }

    #[test]
    fn pattern_longer_than_text_has_no_hits() {
        let fm = fig3_index();
        assert_eq!(fm.count(&parse_bases("CATAGACATAGA").unwrap()), 0);
    }

    #[test]
    fn capped_resolution_truncates_deterministically() {
        let text = text_from_str("CCATAGACATTAGACCATAGGACATAGACC").unwrap();
        let fm = FmIndex::from_text_with_config(
            &text,
            FmBuildConfig {
                occ_sample_rate: 7,
                sa_sample_rate: 5,
                ..FmBuildConfig::default()
            },
        )
        .unwrap();
        let rows = fm.backward_search(&parse_bases("A").unwrap());
        let full = fm.locate(&parse_bases("A").unwrap());
        assert!(full.len() >= 4);
        let mut out = Vec::new();
        // Cap at or above the hit count: identical to the uncapped path,
        // not truncated.
        for cap in [full.len() as u32, u32::MAX] {
            assert!(!fm.resolve_range_capped_into(rows.clone(), cap, &mut out));
            assert_eq!(out, full);
        }
        // Tight caps: exactly `cap` positions, sorted ascending, every
        // one a real hit.
        for cap in 0..full.len() as u32 {
            assert!(fm.resolve_range_capped_into(rows.clone(), cap, &mut out));
            assert_eq!(out.len(), cap as usize);
            assert!(out.windows(2).all(|w| w[0] < w[1]));
            assert!(out.iter().all(|p| full.contains(p)), "cap {cap}: {out:?}");
        }
    }

    #[test]
    fn resolve_row_with_steps_agrees_with_resolve_row() {
        let fm = fig3_index();
        for row in 0..fm.text_len() {
            let (pos, steps) = fm.resolve_row_with_steps(row);
            assert_eq!(pos, fm.resolve_row(row));
            assert!((steps as usize) < fm.sampled_sa().sample_rate());
        }
    }

    #[test]
    fn sampling_rates_do_not_change_answers() {
        let text = text_from_str("CCATAGACATTAGACCATAGGACATAGACC").unwrap();
        let reference = FmIndex::from_text_with_config(
            &text,
            FmBuildConfig {
                occ_sample_rate: 1,
                sa_sample_rate: 1,
                ..FmBuildConfig::default()
            },
        )
        .unwrap();
        for (occ_rate, sa_rate) in [(2, 3), (7, 5), (64, 32), (100, 100)] {
            let fm = FmIndex::from_text_with_config(
                &text,
                FmBuildConfig {
                    occ_sample_rate: occ_rate,
                    sa_sample_rate: sa_rate,
                    ..FmBuildConfig::default()
                },
            )
            .unwrap();
            for pat in ["A", "CAT", "TAGA", "CCATAG", "GGG"] {
                let p = parse_bases(pat).unwrap();
                assert_eq!(fm.count(&p), reference.count(&p), "count {pat}");
                assert_eq!(fm.locate(&p), reference.locate(&p), "locate {pat}");
            }
        }
    }
}
