//! # exma-index
//!
//! The FM-index exact-match engine of the EXMA reproduction. This crate is
//! the software baseline the paper accelerates: a sampled occurrence table
//! (checkpointed rank over the BWT), the C-array, LF-mapping, `count` by
//! backward search and `locate` through a sampled suffix array — built on
//! the suffix-array/BWT substrate of [`exma_genome`]. The k-step variant
//! ([`KStepFmIndex`]) widens the LF alphabet to k-mers (paper §III),
//! consuming k pattern symbols per refinement with answers byte-identical
//! to the 1-step index.
//!
//! ```
//! use exma_genome::{Genome, GenomeProfile};
//! use exma_index::{naive, FmIndex};
//!
//! let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
//! let fm = FmIndex::from_genome(&genome);
//!
//! // A 16-mer sampled from the reference is found where it came from...
//! let pattern = genome.seq().slice(1000, 16);
//! assert!(fm.locate(&pattern).contains(&1000));
//! // ...and the index agrees with a brute-force scan.
//! assert_eq!(fm.count(&pattern), naive::count(genome.seq(), &pattern));
//! ```

pub mod bidir;
pub mod fm;
pub mod interleave;
pub mod kocc;
pub mod kstep;
pub mod layout;
pub mod naive;
pub mod occ;
pub mod resolve;
pub mod sampled_sa;
pub mod snapshot;

pub use bidir::{decode_hit, doubled_text, encode_hit, is_palindromic, BidirFmIndex, Strand};
pub use fm::{FmBuildConfig, FmIndex};
pub use kocc::KmerOccTable;
pub use kstep::{KStepBuildConfig, KStepFmIndex, MAX_STEP};
pub use layout::{DeltaWidth, HeapBreakdown, IndexError};
pub use occ::OccTable;
pub use resolve::{
    resolve_capped_with_arena, BatchResolver, ResolveArena, ResolveConfig, ResolveStats,
    DEFAULT_RESOLVE_PREFETCH_DISTANCE, UNCAPPED,
};
pub use sampled_sa::{RankBits, SampledSuffixArray};
pub use snapshot::{
    decode_snapshot, encode_snapshot, load_snapshot, load_snapshot_expecting, write_snapshot,
    SnapshotError, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC,
};
