//! Cache-line-aligned backing storage for interleaved rank tables.
//!
//! The flat occurrence tables of earlier revisions kept symbol codes and
//! rank checkpoints in two separate allocations, so every `rank` paid two
//! distant memory round-trips — exactly the DRAM behaviour the paper
//! measures as the FM-index bottleneck (§II-C). The interleaved layout
//! used by [`crate::occ::OccTable`] and [`crate::kocc::KmerOccTable`]
//! instead packs each checkpoint row together with the codes it covers
//! into one *block*, sized to a whole number of 64-byte cache lines and
//! allocated line-aligned, so one `rank` touches one contiguous region.
//! This module holds the storage primitive those tables share: a `u32`
//! word buffer whose first word sits on a cache-line boundary, plus the
//! software-prefetch hint the batch scheduler uses to overlap block
//! fetches across queries.

/// One 64-byte cache line of sixteen `u32` words.
///
/// `repr(C, align(64))` pins both the size and the alignment, so a
/// `Vec<CacheLine>` is a contiguous, line-aligned `u32` buffer.
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheLine([u32; WORDS_PER_LINE]);

/// `u32` words per 64-byte cache line.
pub const WORDS_PER_LINE: usize = 16;

/// A line-aligned `u32` buffer: the backing store of interleaved tables.
///
/// Tables address it as a flat word slice via [`AlignedWords::words`];
/// the line granularity only matters at allocation time (the word count
/// is rounded up to whole lines) and for [`AlignedWords::prefetch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedWords {
    lines: Vec<CacheLine>,
    words: usize,
}

impl AlignedWords {
    /// An all-zero buffer of `words` `u32` words, padded to whole cache
    /// lines. The allocation is exact: capacity equals length, so
    /// `heap_bytes` reports true footprint.
    pub fn zeroed(words: usize) -> AlignedWords {
        let mut lines = vec![CacheLine([0; WORDS_PER_LINE]); words.div_ceil(WORDS_PER_LINE)];
        lines.shrink_to_fit();
        AlignedWords { lines, words }
    }

    /// Builds the buffer from `words`, padding the allocation to whole
    /// cache lines.
    pub fn from_words(words: &[u32]) -> AlignedWords {
        let mut buf = AlignedWords::zeroed(words.len());
        buf.words_mut()[..words.len()].copy_from_slice(words);
        buf
    }

    /// The buffer reinterpreted as a slice of `T` lanes.
    ///
    /// SAFETY (of callers below): `CacheLine` is `repr(C)` over
    /// `[u32; 16]` with no padding, so a contiguous `[CacheLine]` is
    /// bit-identical to a contiguous slice of any narrower integer lane;
    /// 64-byte alignment over-satisfies every lane type. Lane order
    /// within a word is the machine's native one — fine, because writers
    /// and readers of a given region always go through the *same* typed
    /// view.
    fn lanes<T>(&self) -> &[T] {
        let per_line = std::mem::size_of::<CacheLine>() / std::mem::size_of::<T>();
        unsafe {
            std::slice::from_raw_parts(self.lines.as_ptr().cast::<T>(), self.lines.len() * per_line)
        }
    }

    fn lanes_mut<T>(&mut self) -> &mut [T] {
        let per_line = std::mem::size_of::<CacheLine>() / std::mem::size_of::<T>();
        unsafe {
            std::slice::from_raw_parts_mut(
                self.lines.as_mut_ptr().cast::<T>(),
                self.lines.len() * per_line,
            )
        }
    }

    /// The buffer as a flat word slice (padding words included, zeroed).
    #[inline]
    pub fn words(&self) -> &[u32] {
        self.lanes::<u32>()
    }

    /// Mutable word view, for builders.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u32] {
        self.lanes_mut::<u32>()
    }

    /// The buffer as `u16` half-word lanes (two per word). Word `w` spans
    /// lanes `2w .. 2w + 2`; regions written through this view must be
    /// read through it too. The plain-slice element type is what lets
    /// rank scans over packed codes autovectorize.
    #[inline]
    pub fn halves(&self) -> &[u16] {
        self.lanes::<u16>()
    }

    /// Mutable half-word view, for builders.
    #[inline]
    pub fn halves_mut(&mut self) -> &mut [u16] {
        self.lanes_mut::<u16>()
    }

    /// The buffer as byte lanes (four per word). Word `w` spans bytes
    /// `4w .. 4w + 4`; same write/read-through-one-view rule as
    /// [`AlignedWords::halves`].
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.lanes::<u8>()
    }

    /// Mutable byte view, for builders.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.lanes_mut::<u8>()
    }

    /// Number of meaningful words (excluding line padding).
    pub fn len(&self) -> usize {
        self.words
    }

    /// `true` iff the buffer holds no words.
    pub fn is_empty(&self) -> bool {
        self.words == 0
    }

    /// Heap bytes of the backing allocation (padding included — it is
    /// real, resident memory).
    pub fn heap_bytes(&self) -> usize {
        self.lines.capacity() * std::mem::size_of::<CacheLine>()
    }

    /// Hints the CPU to pull the cache line holding word `index` toward
    /// L1. A no-op off x86-64 and for out-of-range indices; never faults.
    #[inline]
    pub fn prefetch(&self, index: usize) {
        prefetch_element(self.words(), index);
    }
}

/// Hints the CPU to pull the cache line holding `slice[index]` toward L1.
/// The unaligned sibling of [`AlignedWords::prefetch`], for structures
/// backed by ordinary `Vec`s (e.g. the sampled suffix array's rank bitset).
/// A no-op off x86-64 and for out-of-range indices; never faults.
#[inline]
pub fn prefetch_element<T>(slice: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if index < slice.len() {
        // SAFETY: the index is in bounds of the allocation and
        // `_mm_prefetch` is a hint with no architectural effect.
        unsafe {
            let ptr = slice.as_ptr().add(index);
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(ptr.cast());
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, index);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_is_cache_line_aligned() {
        let buf = AlignedWords::from_words(&[1, 2, 3]);
        assert_eq!(buf.words().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn words_round_trip_with_zero_padding() {
        let input: Vec<u32> = (0..21).collect();
        let buf = AlignedWords::from_words(&input);
        assert_eq!(buf.len(), 21);
        assert_eq!(&buf.words()[..21], &input[..]);
        assert_eq!(buf.words().len(), 32); // padded to two lines
        assert!(buf.words()[21..].iter().all(|&w| w == 0));
    }

    #[test]
    fn heap_is_exact_whole_lines() {
        assert_eq!(AlignedWords::from_words(&[]).heap_bytes(), 0);
        assert_eq!(AlignedWords::from_words(&[0; 16]).heap_bytes(), 64);
        assert_eq!(AlignedWords::from_words(&[0; 17]).heap_bytes(), 128);
    }

    #[test]
    fn typed_views_round_trip() {
        let mut buf = AlignedWords::zeroed(4);
        buf.words_mut()[0] = 0xdead_beef;
        buf.halves_mut()[2] = 0x1234; // first lane of word 1
        buf.halves_mut()[3] = 0x5678;
        buf.bytes_mut()[8] = 0x9a; // first lane of word 2
        assert_eq!(buf.words()[0], 0xdead_beef);
        assert_eq!(buf.halves()[2], 0x1234);
        assert_eq!(buf.halves()[3], 0x5678);
        assert_eq!(buf.bytes()[8], 0x9a);
        assert_eq!(buf.words().len(), 16);
        assert_eq!(buf.halves().len(), 32);
        assert_eq!(buf.bytes().len(), 64);
    }

    #[test]
    fn prefetch_tolerates_any_index() {
        let buf = AlignedWords::from_words(&[7; 40]);
        buf.prefetch(0);
        buf.prefetch(39);
        buf.prefetch(usize::MAX); // out of range: must not fault
    }

    #[test]
    fn slice_prefetch_tolerates_any_index() {
        let plain: Vec<u64> = vec![3; 10];
        prefetch_element(&plain, 0);
        prefetch_element(&plain, 9);
        prefetch_element(&plain, usize::MAX); // out of range: must not fault
        prefetch_element::<u32>(&[], 0); // empty: must not fault
    }
}
