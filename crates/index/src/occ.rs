//! The sampled occurrence (rank) table over the BWT.
//!
//! Backward search needs `Occ(s, i)` — the number of occurrences of symbol
//! `s` in `BWT[0..i]` — twice per pattern symbol. Storing all `5n` prefix
//! counts would dwarf the reference itself, so production FM-indexes (and
//! the paper's baseline, §II-B) checkpoint the counts every `sample_rate`
//! positions and reconstruct the remainder by scanning at most
//! `sample_rate - 1` BWT symbols. The sampling rate is the paper's central
//! memory/latency trade-off: EXMA's whole contribution is removing the
//! DRAM-unfriendly scan this table forces on a CPU.
//!
//! This revision interleaves the table (see [`crate::interleave`]): block
//! `b` packs the five checkpoint counters for prefix `b * sample_rate`
//! together with the `sample_rate` BWT codes they cover in one cache-line
//! -aligned region, so a `rank` touches one contiguous block instead of
//! the two distant arrays of the flat layout. At the default
//! [`crate::FmBuildConfig`] spacing of 44 the whole block — counters and
//! codes — is exactly one 64-byte cache line: one `rank`, one line.

use exma_genome::Symbol;

use crate::interleave::AlignedWords;

/// `u32` words occupied by a block's checkpoint row (one per symbol code).
const HEADER_WORDS: usize = 5;

/// Checkpointed rank structure over a BWT, interleaved per block.
///
/// Block `b` covers BWT positions `b * sample_rate ..` and lays out, in
/// `u32` words:
///
/// ```text
/// [ 5 checkpoint words | sample_rate codes, four u8 per word | pad ]
/// ```
///
/// padded so every block starts on a 64-byte cache-line boundary.
/// Checkpoints are `u32`: the workspace addresses texts through `u32`
/// suffix-array positions, so per-symbol counts always fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccTable {
    data: AlignedWords,
    /// Words per block: `5 + ceil(sample_rate / 4)`, line-rounded.
    block_words: usize,
    /// Length of the underlying BWT.
    len: usize,
    sample_rate: usize,
    /// Occurrences of every symbol in the full BWT: the O(1) answer to
    /// `rank(s, len)`, issued by every backward search's first step.
    totals: [u32; 5],
}

impl OccTable {
    /// Builds the table from a BWT with checkpoints every `sample_rate`
    /// symbols.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0` or the BWT is too long for `u32`
    /// counters.
    pub fn new(bwt: &[Symbol], sample_rate: usize) -> OccTable {
        assert!(sample_rate > 0, "sample rate must be positive");
        assert!(bwt.len() < u32::MAX as usize, "table too large for u32");
        let len = bwt.len();
        let blocks = len / sample_rate + 1;
        let block_words = (HEADER_WORDS + sample_rate.div_ceil(4))
            .next_multiple_of(crate::interleave::WORDS_PER_LINE);
        let mut data = AlignedWords::zeroed(blocks * block_words);
        let mut running = [0u32; 5];
        for (i, &s) in bwt.iter().enumerate() {
            let block = i / sample_rate;
            let offset = i - block * sample_rate;
            let base = block * block_words;
            if offset == 0 {
                data.words_mut()[base..base + HEADER_WORDS].copy_from_slice(&running);
            }
            // Codes live in the block's tail as plain byte lanes.
            data.bytes_mut()[(base + HEADER_WORDS) * 4 + offset] = s.code();
            running[s.code() as usize] += 1;
        }
        if len % sample_rate == 0 {
            // The final block covers zero codes; its checkpoint row (the
            // full counts) was never reached by the loop above.
            let base = (blocks - 1) * block_words;
            data.words_mut()[base..base + HEADER_WORDS].copy_from_slice(&running);
        }
        OccTable {
            data,
            block_words,
            len,
            sample_rate,
            totals: running,
        }
    }

    /// Length of the underlying BWT.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the BWT is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The checkpoint spacing this table was built with.
    pub fn sample_rate(&self) -> usize {
        self.sample_rate
    }

    /// The BWT symbol at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn symbol(&self, i: usize) -> Symbol {
        assert!(i < self.len, "symbol position {i} out of range");
        let block = i / self.sample_rate;
        let offset = i - block * self.sample_rate;
        Symbol::from_code(self.data.bytes()[(block * self.block_words + HEADER_WORDS) * 4 + offset])
    }

    /// `Occ(s, i)`: occurrences of `s` in `BWT[0..i]` (exclusive of `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i > self.len()`.
    #[inline]
    pub fn rank(&self, s: Symbol, i: usize) -> u64 {
        assert!(i <= self.len, "rank position {i} out of range");
        let code = s.code();
        if i == self.len {
            return u64::from(self.totals[code as usize]);
        }
        // The block's checkpoint word, then a short forward scan over the
        // codes interleaved right behind it — one contiguous region. The
        // codes are plain byte lanes, so the scan autovectorizes.
        let block = i / self.sample_rate;
        let base = block * self.block_words;
        let mut count = self.data.words()[base + code as usize];
        let scan = i - block * self.sample_rate;
        let code_base = (base + HEADER_WORDS) * 4;
        for &c in &self.data.bytes()[code_base..code_base + scan] {
            count += u32::from(c == code);
        }
        u64::from(count)
    }

    /// The BWT symbol at `i` together with `Occ(symbol, i)` — the two
    /// loads of one LF step fused into a single block visit: the symbol
    /// read, the checkpoint word, and the code scan all touch the same
    /// interleaved block, so deriving it once halves the per-step work of
    /// the locate resolver's LF-walks.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn lf_data(&self, i: usize) -> (Symbol, u64) {
        assert!(i < self.len, "LF position {i} out of range");
        let block = i / self.sample_rate;
        let base = block * self.block_words;
        let offset = i - block * self.sample_rate;
        let code_base = (base + HEADER_WORDS) * 4;
        let code = self.data.bytes()[code_base + offset];
        let mut count = self.data.words()[base + code as usize];
        for &c in &self.data.bytes()[code_base..code_base + offset] {
            count += u32::from(c == code);
        }
        (Symbol::from_code(code), u64::from(count))
    }

    /// Occurrences of every symbol in `BWT[0..i]`, one scan for all five.
    pub fn rank_all(&self, i: usize) -> [u64; 5] {
        assert!(i <= self.len, "rank position {i} out of range");
        if i == self.len {
            return self.totals.map(u64::from);
        }
        let block = i / self.sample_rate;
        let base = block * self.block_words;
        let mut counts: [u32; 5] = self.data.words()[base..base + HEADER_WORDS]
            .try_into()
            .unwrap();
        let scan = i - block * self.sample_rate;
        let code_base = (base + HEADER_WORDS) * 4;
        for &c in &self.data.bytes()[code_base..code_base + scan] {
            counts[c as usize] += 1;
        }
        counts.map(u64::from)
    }

    /// Hints the CPU to pull the block a later `rank(s, i)` will touch
    /// toward L1 — at the default spacing the whole block is one line.
    /// Never faults; a no-op off x86-64 and for the `i == len` totals
    /// fast path.
    #[inline]
    pub fn prefetch_rank(&self, _s: Symbol, i: usize) {
        if i >= self.len {
            return; // answered from `totals`, which stays cache-hot
        }
        // The five checkpoint words and the scan's first codes share the
        // block's first line, whichever symbol is asked for.
        self.data
            .prefetch((i / self.sample_rate) * self.block_words);
    }

    /// Heap bytes of the interleaved blocks.
    pub fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
    }
}

/// Reference O(n) rank used to validate the checkpointed table in tests.
pub fn naive_rank(bwt: &[Symbol], s: Symbol, i: usize) -> u64 {
    bwt[..i].iter().filter(|&&x| x == s).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::genome::text_from_str;
    use exma_genome::{bwt_from_sa, suffix_array, SYMBOL_ALPHABET};

    fn bwt_of(s: &str) -> Vec<Symbol> {
        let text = text_from_str(s).unwrap();
        let sa = suffix_array(&text);
        bwt_from_sa(&text, &sa)
    }

    #[test]
    fn rank_matches_naive_at_every_position() {
        let bwt = bwt_of("CATAGACATTAGACCATAGGA");
        for rate in [1, 2, 3, 5, 7, 16, 44, 64, 200] {
            let occ = OccTable::new(&bwt, rate);
            for i in 0..=bwt.len() {
                for &s in &SYMBOL_ALPHABET {
                    assert_eq!(
                        occ.rank(s, i),
                        naive_rank(&bwt, s, i),
                        "rate {rate}, symbol {s}, prefix {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn lf_data_fuses_symbol_and_rank() {
        let bwt = bwt_of("CATAGACATTAGACCATAGGA");
        for rate in [1, 3, 7, 44] {
            let occ = OccTable::new(&bwt, rate);
            for i in 0..bwt.len() {
                let (s, rank) = occ.lf_data(i);
                assert_eq!(s, occ.symbol(i), "rate {rate}, position {i}");
                assert_eq!(rank, occ.rank(s, i), "rate {rate}, position {i}");
            }
        }
    }

    #[test]
    fn rank_all_agrees_with_rank() {
        let bwt = bwt_of("GGGCCCAAATTTGGGCCCAAATTT");
        let occ = OccTable::new(&bwt, 4);
        for i in 0..=bwt.len() {
            let all = occ.rank_all(i);
            for &s in &SYMBOL_ALPHABET {
                assert_eq!(all[s.code() as usize], occ.rank(s, i));
            }
        }
    }

    #[test]
    fn symbols_round_trip() {
        let bwt = bwt_of("GATTACA");
        let occ = OccTable::new(&bwt, 3);
        assert_eq!(occ.len(), bwt.len());
        for (i, &s) in bwt.iter().enumerate() {
            assert_eq!(occ.symbol(i), s);
        }
    }

    #[test]
    fn default_rate_blocks_are_one_cache_line() {
        // 5 header words + ceil(44 / 4) code words = 16 words = 64 bytes.
        let bwt = bwt_of(&"ACGT".repeat(100));
        let occ = OccTable::new(&bwt, 44);
        assert_eq!(occ.heap_bytes(), (bwt.len() / 44 + 1) * 64);
    }

    #[test]
    fn prefetch_is_a_safe_no_op_everywhere() {
        let bwt = bwt_of("CATAGACATTAGACCATAGGA");
        let occ = OccTable::new(&bwt, 7);
        for i in [0usize, 3, 21, 22, 1000] {
            for &s in &SYMBOL_ALPHABET {
                occ.prefetch_rank(s, i); // must never fault or panic
            }
        }
    }

    #[test]
    fn coarser_sampling_uses_less_memory() {
        let bwt = bwt_of(&"ACGT".repeat(1000));
        let fine = OccTable::new(&bwt, 4);
        let coarse = OccTable::new(&bwt, 128);
        assert!(coarse.heap_bytes() < fine.heap_bytes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_past_end_panics() {
        let bwt = bwt_of("ACGT");
        let occ = OccTable::new(&bwt, 2);
        let _ = occ.rank(Symbol::Sentinel, bwt.len() + 1);
    }
}
