//! The sampled occurrence (rank) table over the BWT.
//!
//! Backward search needs `Occ(s, i)` — the number of occurrences of symbol
//! `s` in `BWT[0..i]` — twice per pattern symbol. Storing all `5n` prefix
//! counts would dwarf the reference itself, so production FM-indexes (and
//! the paper's baseline, §II-B) checkpoint the counts every `sample_rate`
//! positions and reconstruct the remainder by scanning at most
//! `sample_rate - 1` BWT symbols. The sampling rate is the paper's central
//! memory/latency trade-off: EXMA's whole contribution is removing the
//! DRAM-unfriendly scan this table forces on a CPU.
//!
//! This revision interleaves the table (see [`crate::interleave`]): block
//! `b` packs the checkpoint counters for prefix `b * sample_rate` together
//! with the `sample_rate` BWT codes they cover in one cache-line-aligned
//! region, so a `rank` touches one contiguous block instead of the two
//! distant arrays of the flat layout. The checkpoint row comes in two
//! layouts: flat `u32` counters (the historical default, one line per
//! block at spacing 44), or *two-level* — absolute `u32` superblock rows
//! every `superblock_rate` blocks in a separate small array, with `u16`
//! per-block deltas. The two-level header is half the size, so one line
//! fits 54 codes instead of 44; the delta width is fixed at `u16` and
//! proven safe at construction by bounding the superblock span.

use exma_genome::Symbol;

use crate::interleave::AlignedWords;
use crate::layout::{HeapBreakdown, IndexError};

/// Symbol codes per checkpoint row (one counter per alphabet symbol).
const HEADER_LANES: usize = 5;

/// Checkpointed rank structure over a BWT, interleaved per block.
///
/// Block `b` covers BWT positions `b * sample_rate ..` and lays out, in
/// bytes:
///
/// ```text
/// flat:      [ 5 u32 checkpoint counters | sample_rate codes | pad ]
/// two-level: [ 5 u16 delta counters      | sample_rate codes | pad ]
/// ```
///
/// padded so every block starts on a 64-byte cache-line boundary.
/// Checkpoints are `u32`: the workspace addresses texts through `u32`
/// suffix-array positions, so per-symbol counts always fit. Two-level
/// deltas are `u16` and relative to the nearest preceding superblock
/// row; [`OccTable::two_level`] proves at construction that one
/// superblock span cannot overflow them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccTable {
    data: AlignedWords,
    /// Absolute checkpoint rows, one 5-word group per `superblock_rate`
    /// blocks; empty in the flat layout.
    superblocks: AlignedWords,
    /// Words per block, line-rounded.
    block_words: usize,
    /// Bytes of a block taken by its counter row (20 flat, 10 two-level);
    /// the code lanes start right behind it.
    header_bytes: usize,
    /// Length of the underlying BWT.
    len: usize,
    sample_rate: usize,
    /// Blocks per superblock row; `0` in the flat layout.
    superblock_rate: usize,
    /// Occurrences of every symbol in the full BWT: the O(1) answer to
    /// `rank(s, len)`, issued by every backward search's first step.
    totals: [u32; 5],
}

impl OccTable {
    /// Builds the flat-layout table from a BWT with `u32` checkpoints
    /// every `sample_rate` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0` or the BWT is too long for `u32`
    /// counters.
    pub fn new(bwt: &[Symbol], sample_rate: usize) -> OccTable {
        OccTable::build(bwt, sample_rate, 0).expect("flat layout only fails on u32 overflow")
    }

    /// Builds the two-level table: `u16` per-block deltas off absolute
    /// superblock rows every `superblock_rate` blocks.
    ///
    /// # Errors
    ///
    /// [`IndexError::SuperblockSpanTooWide`] if
    /// `sample_rate * superblock_rate` exceeds 65 535 rows — the bound
    /// that *proves* no delta can overflow, whatever the text — and
    /// [`IndexError::IndexTooLarge`] if the BWT outgrows `u32` counters.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0` or `superblock_rate == 0`.
    pub fn two_level(
        bwt: &[Symbol],
        sample_rate: usize,
        superblock_rate: usize,
    ) -> Result<OccTable, IndexError> {
        assert!(superblock_rate > 0, "superblock rate must be positive");
        OccTable::build(bwt, sample_rate, superblock_rate)
    }

    /// Shared builder; `superblock_rate == 0` selects the flat layout.
    fn build(
        bwt: &[Symbol],
        sample_rate: usize,
        superblock_rate: usize,
    ) -> Result<OccTable, IndexError> {
        assert!(sample_rate > 0, "sample rate must be positive");
        if bwt.len() >= u32::MAX as usize {
            return Err(IndexError::IndexTooLarge { rows: bwt.len() });
        }
        let two_level = superblock_rate > 0;
        if two_level {
            let span = sample_rate.saturating_mul(superblock_rate);
            if span > u16::MAX as usize {
                return Err(IndexError::SuperblockSpanTooWide {
                    sample_rate,
                    superblock_rate,
                    max_span: u16::MAX as usize,
                });
            }
        }
        let len = bwt.len();
        let blocks = len / sample_rate + 1;
        let header_bytes = if two_level { 2 } else { 4 } * HEADER_LANES;
        let block_words = (header_bytes + sample_rate)
            .div_ceil(4)
            .next_multiple_of(crate::interleave::WORDS_PER_LINE);
        let groups = if two_level {
            blocks.div_ceil(superblock_rate)
        } else {
            0
        };
        let mut data = AlignedWords::zeroed(blocks * block_words);
        let mut superblocks = AlignedWords::zeroed(groups * HEADER_LANES);
        let mut running = [0u32; 5];
        let mut group_row = [0u32; 5];
        for block in 0..blocks {
            let base = block * block_words;
            if two_level {
                if block % superblock_rate == 0 {
                    let g = (block / superblock_rate) * HEADER_LANES;
                    superblocks.words_mut()[g..g + HEADER_LANES].copy_from_slice(&running);
                    group_row = running;
                }
                for (lane, (&now, &at_group)) in running.iter().zip(group_row.iter()).enumerate() {
                    // The span bound above proves this cast lossless.
                    data.halves_mut()[base * 2 + lane] = (now - at_group) as u16;
                }
            } else {
                data.words_mut()[base..base + HEADER_LANES].copy_from_slice(&running);
            }
            // Codes live in the block's tail as plain byte lanes.
            let code_base = base * 4 + header_bytes;
            let lo = block * sample_rate;
            let hi = (lo + sample_rate).min(len);
            for (offset, &s) in bwt[lo..hi].iter().enumerate() {
                data.bytes_mut()[code_base + offset] = s.code();
                running[s.code() as usize] += 1;
            }
        }
        Ok(OccTable {
            data,
            superblocks,
            block_words,
            header_bytes,
            len,
            sample_rate,
            superblock_rate,
            totals: running,
        })
    }

    /// Length of the underlying BWT.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the BWT is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The checkpoint spacing this table was built with.
    pub fn sample_rate(&self) -> usize {
        self.sample_rate
    }

    /// Blocks per superblock row; `0` means the flat `u32` layout.
    pub fn superblock_rate(&self) -> usize {
        self.superblock_rate
    }

    /// The absolute count of symbol code `code` at `block`'s checkpoint.
    #[inline]
    fn checkpoint(&self, block: usize, code: usize) -> u32 {
        let base = block * self.block_words;
        // `superblock_rate == 0` encodes the flat layout, so checked_div
        // doubles as the layout dispatch.
        match block.checked_div(self.superblock_rate) {
            None => self.data.words()[base + code],
            Some(group) => {
                self.superblocks.words()[group * HEADER_LANES + code]
                    + u32::from(self.data.halves()[base * 2 + code])
            }
        }
    }

    /// The BWT symbol at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn symbol(&self, i: usize) -> Symbol {
        assert!(i < self.len, "symbol position {i} out of range");
        let block = i / self.sample_rate;
        let offset = i - block * self.sample_rate;
        Symbol::from_code(
            self.data.bytes()[block * self.block_words * 4 + self.header_bytes + offset],
        )
    }

    /// `Occ(s, i)`: occurrences of `s` in `BWT[0..i]` (exclusive of `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i > self.len()`.
    #[inline]
    pub fn rank(&self, s: Symbol, i: usize) -> u64 {
        assert!(i <= self.len, "rank position {i} out of range");
        let code = s.code();
        if i == self.len {
            return u64::from(self.totals[code as usize]);
        }
        // The block's checkpoint counter, then a short forward scan over
        // the codes interleaved right behind it — one contiguous region.
        // The codes are plain byte lanes, so the scan autovectorizes.
        let block = i / self.sample_rate;
        let mut count = self.checkpoint(block, code as usize);
        let scan = i - block * self.sample_rate;
        let code_base = block * self.block_words * 4 + self.header_bytes;
        for &c in &self.data.bytes()[code_base..code_base + scan] {
            count += u32::from(c == code);
        }
        u64::from(count)
    }

    /// The BWT symbol at `i` together with `Occ(symbol, i)` — the two
    /// loads of one LF step fused into a single block visit: the symbol
    /// read, the checkpoint counter, and the code scan all touch the same
    /// interleaved block, so deriving it once halves the per-step work of
    /// the locate resolver's LF-walks.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn lf_data(&self, i: usize) -> (Symbol, u64) {
        assert!(i < self.len, "LF position {i} out of range");
        let block = i / self.sample_rate;
        let offset = i - block * self.sample_rate;
        let code_base = block * self.block_words * 4 + self.header_bytes;
        let code = self.data.bytes()[code_base + offset];
        let mut count = self.checkpoint(block, code as usize);
        for &c in &self.data.bytes()[code_base..code_base + offset] {
            count += u32::from(c == code);
        }
        (Symbol::from_code(code), u64::from(count))
    }

    /// Occurrences of every symbol in `BWT[0..i]`, one scan for all five.
    pub fn rank_all(&self, i: usize) -> [u64; 5] {
        assert!(i <= self.len, "rank position {i} out of range");
        if i == self.len {
            return self.totals.map(u64::from);
        }
        let block = i / self.sample_rate;
        let mut counts = [0u32; 5];
        for (code, count) in counts.iter_mut().enumerate() {
            *count = self.checkpoint(block, code);
        }
        let scan = i - block * self.sample_rate;
        let code_base = block * self.block_words * 4 + self.header_bytes;
        for &c in &self.data.bytes()[code_base..code_base + scan] {
            counts[c as usize] += 1;
        }
        counts.map(u64::from)
    }

    /// Hints the CPU to pull the block a later `rank(s, i)` will touch
    /// toward L1 — at the default spacings the whole block is one line —
    /// plus, two-level, the superblock row it is relative to. Never
    /// faults; a no-op off x86-64 and for the `i == len` totals fast
    /// path.
    #[inline]
    pub fn prefetch_rank(&self, _s: Symbol, i: usize) {
        if i >= self.len {
            return; // answered from `totals`, which stays cache-hot
        }
        // The checkpoint counters and the scan's first codes share the
        // block's first line, whichever symbol is asked for.
        let block = i / self.sample_rate;
        self.data.prefetch(block * self.block_words);
        // checked_div: rate 0 is the flat layout with no superblocks.
        if let Some(group) = block.checked_div(self.superblock_rate) {
            self.superblocks.prefetch(group * HEADER_LANES);
        }
    }

    /// Heap bytes attributed under [`HeapBreakdown::one_step_occ`]:
    /// interleaved blocks plus (two-level) the superblock rows.
    pub fn heap_breakdown(&self) -> HeapBreakdown {
        HeapBreakdown {
            one_step_occ: self.data.heap_bytes() + self.superblocks.heap_bytes(),
            ..HeapBreakdown::default()
        }
    }

    /// Heap bytes of the interleaved blocks and superblock rows.
    pub fn heap_bytes(&self) -> usize {
        self.heap_breakdown().total()
    }
}

/// Reference O(n) rank used to validate the checkpointed table in tests.
pub fn naive_rank(bwt: &[Symbol], s: Symbol, i: usize) -> u64 {
    bwt[..i].iter().filter(|&&x| x == s).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::genome::text_from_str;
    use exma_genome::{bwt_from_sa, suffix_array, SYMBOL_ALPHABET};

    fn bwt_of(s: &str) -> Vec<Symbol> {
        let text = text_from_str(s).unwrap();
        let sa = suffix_array(&text);
        bwt_from_sa(&text, &sa)
    }

    /// Both layouts at a given spacing: flat and a few superblock rates.
    fn layouts(bwt: &[Symbol], rate: usize) -> Vec<OccTable> {
        let mut tables = vec![OccTable::new(bwt, rate)];
        for sb in [2, 8, 64] {
            tables.push(OccTable::two_level(bwt, rate, sb).unwrap());
        }
        tables
    }

    #[test]
    fn rank_matches_naive_at_every_position() {
        let bwt = bwt_of("CATAGACATTAGACCATAGGA");
        for rate in [1, 2, 3, 5, 7, 16, 44, 54, 64, 200] {
            for occ in layouts(&bwt, rate) {
                let sb = occ.superblock_rate();
                for i in 0..=bwt.len() {
                    for &s in &SYMBOL_ALPHABET {
                        assert_eq!(
                            occ.rank(s, i),
                            naive_rank(&bwt, s, i),
                            "rate {rate}, sb {sb}, symbol {s}, prefix {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lf_data_fuses_symbol_and_rank() {
        let bwt = bwt_of("CATAGACATTAGACCATAGGA");
        for rate in [1, 3, 7, 44, 54] {
            for occ in layouts(&bwt, rate) {
                let sb = occ.superblock_rate();
                for i in 0..bwt.len() {
                    let (s, rank) = occ.lf_data(i);
                    assert_eq!(s, occ.symbol(i), "rate {rate}, sb {sb}, position {i}");
                    assert_eq!(rank, occ.rank(s, i), "rate {rate}, sb {sb}, position {i}");
                }
            }
        }
    }

    #[test]
    fn rank_all_agrees_with_rank() {
        let bwt = bwt_of("GGGCCCAAATTTGGGCCCAAATTT");
        for occ in layouts(&bwt, 4) {
            for i in 0..=bwt.len() {
                let all = occ.rank_all(i);
                for &s in &SYMBOL_ALPHABET {
                    assert_eq!(all[s.code() as usize], occ.rank(s, i));
                }
            }
        }
    }

    #[test]
    fn symbols_round_trip() {
        let bwt = bwt_of("GATTACA");
        for occ in layouts(&bwt, 3) {
            assert_eq!(occ.len(), bwt.len());
            for (i, &s) in bwt.iter().enumerate() {
                assert_eq!(occ.symbol(i), s);
            }
        }
    }

    #[test]
    fn default_rate_blocks_are_one_cache_line() {
        // Flat: 20 header bytes + 44 codes = 64. Two-level: 10 header
        // bytes + 54 codes = 64 — ten more codes in the same line.
        let bwt = bwt_of(&"ACGT".repeat(100));
        let flat = OccTable::new(&bwt, 44);
        assert_eq!(flat.heap_bytes(), (bwt.len() / 44 + 1) * 64);
        let two = OccTable::two_level(&bwt, 54, 32).unwrap();
        let blocks = bwt.len() / 54 + 1;
        let sb_lines = blocks
            .div_ceil(32)
            .saturating_mul(HEADER_LANES)
            .div_ceil(16);
        assert_eq!(two.heap_bytes(), blocks * 64 + sb_lines * 64);
    }

    #[test]
    fn too_wide_superblock_span_is_a_typed_error() {
        let bwt = bwt_of("ACGT");
        let err = OccTable::two_level(&bwt, 44, 4096).unwrap_err();
        assert_eq!(
            err,
            IndexError::SuperblockSpanTooWide {
                sample_rate: 44,
                superblock_rate: 4096,
                max_span: 65_535,
            }
        );
        // 44 * 1489 = 65516 <= 65535: the widest legal spacing builds.
        assert!(OccTable::two_level(&bwt, 44, 1489).is_ok());
    }

    #[test]
    fn prefetch_is_a_safe_no_op_everywhere() {
        let bwt = bwt_of("CATAGACATTAGACCATAGGA");
        for occ in layouts(&bwt, 7) {
            for i in [0usize, 3, 21, 22, 1000] {
                for &s in &SYMBOL_ALPHABET {
                    occ.prefetch_rank(s, i); // must never fault or panic
                }
            }
        }
    }

    #[test]
    fn coarser_sampling_uses_less_memory() {
        let bwt = bwt_of(&"ACGT".repeat(1000));
        let fine = OccTable::new(&bwt, 4);
        let coarse = OccTable::new(&bwt, 128);
        assert!(coarse.heap_bytes() < fine.heap_bytes());
        // And at matched spacing, halving the header does not cost more
        // than the superblock rows it adds.
        let flat = OccTable::new(&bwt, 54);
        let two = OccTable::two_level(&bwt, 54, 32).unwrap();
        assert!(two.heap_bytes() <= flat.heap_bytes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_past_end_panics() {
        let bwt = bwt_of("ACGT");
        let occ = OccTable::new(&bwt, 2);
        let _ = occ.rank(Symbol::Sentinel, bwt.len() + 1);
    }
}
