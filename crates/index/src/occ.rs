//! The sampled occurrence (rank) table over the BWT.
//!
//! Backward search needs `Occ(s, i)` — the number of occurrences of symbol
//! `s` in `BWT[0..i]` — twice per pattern symbol. Storing all `5n` prefix
//! counts would dwarf the reference itself, so production FM-indexes (and
//! the paper's baseline, §II-B) checkpoint the counts every `sample_rate`
//! positions and reconstruct the remainder by scanning at most
//! `sample_rate - 1` BWT symbols. The sampling rate is the paper's central
//! memory/latency trade-off: EXMA's whole contribution is removing the
//! DRAM-unfriendly scan this table forces on a CPU.

use exma_genome::Symbol;

/// Checkpointed rank structure over a BWT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccTable {
    /// BWT symbol codes (`0..=4`), one byte per symbol.
    bwt: Vec<u8>,
    /// `checkpoints[b][c]` = occurrences of code `c` in `bwt[0 .. b * rate]`.
    checkpoints: Vec<[u64; 5]>,
    sample_rate: usize,
}

impl OccTable {
    /// Builds the table from a BWT with checkpoints every `sample_rate`
    /// symbols.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0`.
    pub fn new(bwt: &[Symbol], sample_rate: usize) -> OccTable {
        assert!(sample_rate > 0, "sample rate must be positive");
        let codes: Vec<u8> = bwt.iter().map(|s| s.code()).collect();
        let mut checkpoints = Vec::with_capacity(codes.len() / sample_rate + 1);
        let mut running = [0u64; 5];
        for (i, &c) in codes.iter().enumerate() {
            if i % sample_rate == 0 {
                checkpoints.push(running);
            }
            running[c as usize] += 1;
        }
        // A final checkpoint at position n makes rank(s, n) O(1) too.
        checkpoints.push(running);
        OccTable {
            bwt: codes,
            checkpoints,
            sample_rate,
        }
    }

    /// Length of the underlying BWT.
    pub fn len(&self) -> usize {
        self.bwt.len()
    }

    /// `true` iff the BWT is empty.
    pub fn is_empty(&self) -> bool {
        self.bwt.is_empty()
    }

    /// The checkpoint spacing this table was built with.
    pub fn sample_rate(&self) -> usize {
        self.sample_rate
    }

    /// The BWT symbol at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn symbol(&self, i: usize) -> Symbol {
        Symbol::from_code(self.bwt[i])
    }

    /// `Occ(s, i)`: occurrences of `s` in `BWT[0..i]` (exclusive of `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i > self.len()`.
    pub fn rank(&self, s: Symbol, i: usize) -> u64 {
        assert!(i <= self.bwt.len(), "rank position {i} out of range");
        let code = s.code();
        // The nearest checkpoint at or below i, then a short forward scan.
        // `checkpoints[n / rate + 1]` (the final one) is only reachable via
        // i == n when n % rate == 0; min() keeps the block index valid.
        let block = (i / self.sample_rate).min(self.checkpoints.len() - 1);
        let mut count = self.checkpoints[block][code as usize];
        for &c in &self.bwt[block * self.sample_rate..i] {
            count += u64::from(c == code);
        }
        count
    }

    /// Occurrences of every symbol in `BWT[0..i]`, one scan for all five.
    pub fn rank_all(&self, i: usize) -> [u64; 5] {
        assert!(i <= self.bwt.len(), "rank position {i} out of range");
        let block = (i / self.sample_rate).min(self.checkpoints.len() - 1);
        let mut counts = self.checkpoints[block];
        for &c in &self.bwt[block * self.sample_rate..i] {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Heap bytes used by the BWT and its checkpoints.
    pub fn heap_bytes(&self) -> usize {
        self.bwt.capacity() + self.checkpoints.capacity() * std::mem::size_of::<[u64; 5]>()
    }
}

/// Reference O(n) rank used to validate the checkpointed table in tests.
pub fn naive_rank(bwt: &[Symbol], s: Symbol, i: usize) -> u64 {
    bwt[..i].iter().filter(|&&x| x == s).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::genome::text_from_str;
    use exma_genome::{bwt_from_sa, suffix_array, SYMBOL_ALPHABET};

    fn bwt_of(s: &str) -> Vec<Symbol> {
        let text = text_from_str(s).unwrap();
        let sa = suffix_array(&text);
        bwt_from_sa(&text, &sa)
    }

    #[test]
    fn rank_matches_naive_at_every_position() {
        let bwt = bwt_of("CATAGACATTAGACCATAGGA");
        for rate in [1, 2, 3, 7, 64] {
            let occ = OccTable::new(&bwt, rate);
            for i in 0..=bwt.len() {
                for &s in &SYMBOL_ALPHABET {
                    assert_eq!(
                        occ.rank(s, i),
                        naive_rank(&bwt, s, i),
                        "rate {rate}, symbol {s}, prefix {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_all_agrees_with_rank() {
        let bwt = bwt_of("GGGCCCAAATTTGGGCCCAAATTT");
        let occ = OccTable::new(&bwt, 4);
        for i in 0..=bwt.len() {
            let all = occ.rank_all(i);
            for &s in &SYMBOL_ALPHABET {
                assert_eq!(all[s.code() as usize], occ.rank(s, i));
            }
        }
    }

    #[test]
    fn symbols_round_trip() {
        let bwt = bwt_of("GATTACA");
        let occ = OccTable::new(&bwt, 3);
        assert_eq!(occ.len(), bwt.len());
        for (i, &s) in bwt.iter().enumerate() {
            assert_eq!(occ.symbol(i), s);
        }
    }

    #[test]
    fn coarser_sampling_uses_less_memory() {
        let bwt = bwt_of(&"ACGT".repeat(1000));
        let fine = OccTable::new(&bwt, 4);
        let coarse = OccTable::new(&bwt, 128);
        assert!(coarse.heap_bytes() < fine.heap_bytes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_past_end_panics() {
        let bwt = bwt_of("ACGT");
        let occ = OccTable::new(&bwt, 2);
        let _ = occ.rank(Symbol::Sentinel, bwt.len() + 1);
    }
}
