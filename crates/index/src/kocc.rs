//! The sampled occurrence table over the *k-step* BWT.
//!
//! The k-step FM-index (paper §III) widens the LF alphabet from single
//! symbols to k-mers: row `i` of the k-BWT holds the k symbols that
//! cyclically precede suffix `SA[i]`, packed into one code over the
//! expanded alphabet of `4^k` base-only k-mers. Contexts that cross the
//! sentinel cannot equal any query k-mer, so they all share a single
//! out-of-alphabet code.
//!
//! Rank is checkpointed every `sample_rate` rows inside cache-line-aligned
//! interleaved blocks (see [`crate::interleave`]): block `b` packs the
//! checkpoint row for prefix `b * sample_rate` together with the
//! `sample_rate` codes it covers, so one `rank` touches one contiguous
//! block. Flat `u32` checkpoint rows dominate memory at k = 4 — 1 KiB of
//! counters ahead of every few hundred bytes of codes — so this revision
//! compresses them *two-level*: sparse absolute `u32` *superblock* rows
//! every [`superblock_rate`](KmerOccTable::superblock_rate) blocks live in
//! a separate (small) array, and each block keeps only narrow
//! [`DeltaWidth`] counters relative to its superblock. A rank now reads
//! superblock word + delta lane + code scan; the superblock array is tiny
//! and hot, and [`KmerOccTable::prefetch_rank`] hints its line alongside
//! the block's, the same trick `resolve.rs` plays for RankBits words.
//! [`DeltaWidth::U32`] opts back into the flat absolute rows (and skips
//! the superblock array entirely).

use crate::interleave::AlignedWords;
use crate::layout::{DeltaWidth, HeapBreakdown, IndexError};

/// Checkpointed rank structure over k-BWT codes, interleaved per block.
///
/// Valid codes are `0 .. stride` (k-mer lexicographic ranks); the value
/// `stride` itself marks a sentinel-crossing context and is never ranked.
///
/// Block `b` covers code positions `b * sample_rate ..` and lays out, in
/// bytes:
///
/// ```text
/// [ stride delta counters (u8/u16/u32) | sample_rate codes | pad ]
/// ```
///
/// padded so every block starts on a 64-byte cache-line boundary. Code
/// lanes are one byte when `stride <= 256` and two bytes otherwise. With
/// narrow deltas, absolute rows live in a separate superblock array, one
/// `stride`-word row per `superblock_rate` blocks; with
/// [`DeltaWidth::U32`] the "delta" counters *are* the absolute rows and
/// no superblock array exists.
///
/// One wrinkle at `stride == 256` exactly: the sentinel-crossing marker
/// code (`stride`) does not fit a one-byte lane. Those rows — at most
/// k of them exist — store a placeholder `0` lane and are remembered in
/// a sorted side list; the table counts placeholders like real zeros
/// internally and subtracts the side list from every `rank(0, ..)`
/// answer, keeping checkpoints, scans, and answers consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmerOccTable {
    data: AlignedWords,
    /// Absolute checkpoint rows, one `stride`-word group per
    /// `superblock_rate` blocks; empty with [`DeltaWidth::U32`].
    superblocks: AlignedWords,
    /// Words per block, line-rounded.
    block_words: usize,
    /// Bytes of a block taken by its delta (or absolute) counter row;
    /// the code lanes start right behind it.
    delta_bytes: usize,
    /// Number of blocks, `len / sample_rate + 1` (the last may cover
    /// fewer than `sample_rate` codes — possibly zero).
    blocks: usize,
    /// Number of code positions (the k-BWT length).
    len: usize,
    /// Size of the expanded alphabet, `4^k`.
    stride: usize,
    sample_rate: usize,
    /// Blocks per superblock (absolute checkpoint row).
    superblock_rate: usize,
    delta_width: DeltaWidth,
    /// Rows whose one-byte code lane holds a placeholder `0` because the
    /// sentinel marker `256` does not fit it (`stride == 256` only).
    /// Sorted; at most k entries.
    exceptions: Vec<u32>,
    /// Occurrences of every code in the full table: the O(1) answer to
    /// `rank(r, len)`, which every backward search issues on its first
    /// refinement (`hi = n`).
    totals: Vec<u32>,
}

impl KmerOccTable {
    /// Builds the table with checkpoints every `sample_rate` rows,
    /// absolute superblock rows every `superblock_rate` blocks, and
    /// `delta_width` per-block counters ([`DeltaWidth::U32`] means flat
    /// absolute rows; `superblock_rate` is then ignored). Takes the codes
    /// by value: at reference scale they are tens of megabytes, and the
    /// sole builder has no further use for them.
    ///
    /// # Errors
    ///
    /// [`IndexError::IndexTooLarge`] if the table would overflow its
    /// `u32` counters; [`IndexError::DeltaOverflow`] if some code occurs
    /// more often within one superblock span than `delta_width` can
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0`, `superblock_rate == 0`, `stride`
    /// does not fit the code type, or any code exceeds `stride` — all
    /// programming errors of the (internal) caller, not data-dependent
    /// conditions.
    pub fn new(
        codes: Vec<u16>,
        stride: usize,
        sample_rate: usize,
        delta_width: DeltaWidth,
        superblock_rate: usize,
    ) -> Result<KmerOccTable, IndexError> {
        assert!(sample_rate > 0, "sample rate must be positive");
        assert!(superblock_rate > 0, "superblock rate must be positive");
        assert!(
            stride > 0 && stride < u16::MAX as usize,
            "stride {stride} out of range"
        );
        if codes.len() >= u32::MAX as usize {
            return Err(IndexError::IndexTooLarge { rows: codes.len() });
        }
        let len = codes.len();
        let blocks = len / sample_rate + 1;
        let code_bytes: usize = if stride > 256 { 2 } else { 1 };
        // Two-byte code lanes are indexed as u16 halves, so the delta row
        // must end on an even byte (strides that need padding here are
        // exotic: real strides are powers of four).
        let delta_bytes = (stride * delta_width.bytes()).next_multiple_of(code_bytes);
        let block_words = (delta_bytes + sample_rate * code_bytes)
            .div_ceil(4)
            .next_multiple_of(crate::interleave::WORDS_PER_LINE);
        let groups = if delta_width.is_absolute() {
            0
        } else {
            blocks.div_ceil(superblock_rate)
        };
        let mut data = AlignedWords::zeroed(blocks * block_words);
        let mut superblocks = AlignedWords::zeroed(groups * stride);
        let mut running = vec![0u32; stride];
        let mut group_row = vec![0u32; stride];
        let mut exceptions: Vec<u32> = Vec::new();
        // `stride` (the sentinel marker) does not fit a one-byte lane
        // only when stride == 256 exactly; see the struct docs.
        let masked_marker = stride == 256;

        for block in 0..blocks {
            // The checkpoint row for prefix `block * sample_rate`: counts
            // accumulated so far, absolute or relative to the superblock.
            let base = block * block_words;
            if delta_width.is_absolute() {
                data.words_mut()[base..base + stride].copy_from_slice(&running);
            } else {
                if block % superblock_rate == 0 {
                    let g = (block / superblock_rate) * stride;
                    superblocks.words_mut()[g..g + stride].copy_from_slice(&running);
                    group_row.copy_from_slice(&running);
                }
                let max = delta_width.max_delta();
                for (code, (&now, &at_group)) in running.iter().zip(group_row.iter()).enumerate() {
                    let delta = now - at_group;
                    if delta > max {
                        return Err(IndexError::DeltaOverflow {
                            block,
                            code,
                            delta,
                            max,
                        });
                    }
                    match delta_width {
                        DeltaWidth::U8 => data.bytes_mut()[base * 4 + code] = delta as u8,
                        _ => data.halves_mut()[base * 2 + code] = delta as u16,
                    }
                }
            }
            // The codes this block covers, as plain narrow lanes behind
            // the counter row.
            let code_base = base * 4 + delta_bytes;
            let lo = block * sample_rate;
            let hi = (lo + sample_rate).min(len);
            for (offset, &c) in codes[lo..hi].iter().enumerate() {
                assert!((c as usize) <= stride, "code {c} exceeds stride {stride}");
                if code_bytes == 2 {
                    data.halves_mut()[code_base / 2 + offset] = c;
                } else if masked_marker && c as usize == stride {
                    exceptions.push((lo + offset) as u32);
                    // Placeholder 0 lane; counted like a real zero below
                    // so stored counts match what scans see.
                } else {
                    data.bytes_mut()[code_base + offset] = c as u8;
                }
                if (c as usize) < stride {
                    running[c as usize] += 1;
                } else if masked_marker {
                    running[0] += 1;
                }
            }
        }
        exceptions.shrink_to_fit();
        let mut totals = running;
        // `totals` answers rank(r, len) directly, so it stores *true*
        // counts: placeholders are not occurrences of code 0.
        totals[0] -= exceptions.len() as u32;
        Ok(KmerOccTable {
            data,
            superblocks,
            block_words,
            delta_bytes,
            blocks,
            len,
            stride,
            sample_rate,
            superblock_rate,
            delta_width,
            exceptions,
            totals,
        })
    }

    /// Number of rows (the k-BWT length).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the table covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The expanded-alphabet size `4^k` this table was built with.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The checkpoint spacing this table was built with.
    pub fn sample_rate(&self) -> usize {
        self.sample_rate
    }

    /// The per-block checkpoint counter width this table was built with.
    pub fn delta_width(&self) -> DeltaWidth {
        self.delta_width
    }

    /// Blocks per absolute superblock row (meaningless — and unused —
    /// with [`DeltaWidth::U32`]).
    pub fn superblock_rate(&self) -> usize {
        self.superblock_rate
    }

    /// `true` iff code lanes are two bytes wide (`stride > 256`).
    #[inline]
    fn wide_codes(&self) -> bool {
        self.stride > 256
    }

    /// The k-BWT code at row `i` (`stride` for sentinel-crossing contexts).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn code(&self, i: usize) -> u16 {
        assert!(i < self.len, "code position {i} out of range");
        if !self.exceptions.is_empty() && self.exceptions.binary_search(&(i as u32)).is_ok() {
            return self.stride as u16;
        }
        let block = i / self.sample_rate;
        let offset = i - block * self.sample_rate;
        let code_base = block * self.block_words * 4 + self.delta_bytes;
        if self.wide_codes() {
            self.data.halves()[code_base / 2 + offset]
        } else {
            u16::from(self.data.bytes()[code_base + offset])
        }
    }

    /// Occurrences of code `r` among lanes `from..to` of `block`'s code
    /// region. A plain slice scan, so it autovectorizes.
    #[inline]
    fn matches(&self, block: usize, from: usize, to: usize, r: u16) -> u32 {
        let start = block * self.block_words * 4 + self.delta_bytes;
        let mut count = 0u32;
        if self.wide_codes() {
            let a = start / 2;
            for &code in &self.data.halves()[a + from..a + to] {
                count += u32::from(code == r);
            }
        } else {
            let r = r as u8; // r < stride <= 256
            for &code in &self.data.bytes()[start + from..start + to] {
                count += u32::from(code == r);
            }
        }
        count
    }

    /// The absolute (physical) count of code `r` at `block`'s checkpoint:
    /// the `u32` row directly, or superblock word + narrow delta.
    #[inline]
    fn checkpoint(&self, block: usize, r: usize) -> u32 {
        let base = block * self.block_words;
        match self.delta_width {
            DeltaWidth::U32 => self.data.words()[base + r],
            DeltaWidth::U16 => {
                self.superblock_word(block, r) + u32::from(self.data.halves()[base * 2 + r])
            }
            DeltaWidth::U8 => {
                self.superblock_word(block, r) + u32::from(self.data.bytes()[base * 4 + r])
            }
        }
    }

    /// The absolute superblock counter `block`'s checkpoint is relative
    /// to. The group index is derived per block: a backward count that
    /// reads `block + 1` may cross into the next superblock group.
    #[inline]
    fn superblock_word(&self, block: usize, r: usize) -> u32 {
        self.superblocks.words()[(block / self.superblock_rate) * self.stride + r]
    }

    /// Corrects a physical count (which treats placeholder lanes as code
    /// 0) down to the true rank of `r` in `0..i`. Free unless `r == 0`
    /// on a table that actually has exceptions.
    #[inline]
    fn corrected(&self, physical: u32, r: u16, i: usize) -> u32 {
        if r == 0 && !self.exceptions.is_empty() {
            physical - self.exceptions.partition_point(|&e| (e as usize) < i) as u32
        } else {
            physical
        }
    }

    /// `true` iff position `i`'s rank is cheaper counted *down* from the
    /// next block's checkpoint than up from its own: the block is past
    /// its midpoint and the next checkpoint exists (its block covers
    /// positions ending at or before `len`).
    #[inline]
    fn backward_cheaper(&self, block: usize, offset: usize) -> bool {
        self.sample_rate - offset < offset && (block + 1) * self.sample_rate <= self.len
    }

    /// `Occ_k(r, i)`: occurrences of k-mer code `r` in rows `0..i`
    /// (exclusive of `i`).
    ///
    /// Counts from the nearer checkpoint: forward from the block's own
    /// row, or backward from the next block's, halving the average scan.
    ///
    /// # Panics
    ///
    /// Panics if `i > self.len()` or `r` is not a valid k-mer code.
    #[inline]
    pub fn rank(&self, r: u16, i: usize) -> u32 {
        assert!(i <= self.len, "rank position {i} out of range");
        assert!((r as usize) < self.stride, "code {r} out of alphabet");
        if i == self.len {
            return self.totals[r as usize];
        }
        let block = i / self.sample_rate;
        let offset = i - block * self.sample_rate;
        let physical = if self.backward_cheaper(block, offset) {
            self.checkpoint(block + 1, r as usize)
                - self.matches(block, offset, self.sample_rate, r)
        } else {
            self.checkpoint(block, r as usize) + self.matches(block, 0, offset, r)
        };
        self.corrected(physical, r, i)
    }

    /// `(rank(r, lo), rank(r, hi))` in one pass: when both positions fall
    /// in the same block — the common case once a backward search has
    /// narrowed its interval below `sample_rate` — the shared scan prefix
    /// is counted once instead of twice.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, `hi > self.len()`, or `r` is invalid.
    #[inline]
    pub fn rank_pair(&self, r: u16, lo: usize, hi: usize) -> (u32, u32) {
        assert!(lo <= hi, "rank pair {lo}..{hi} inverted");
        let (block, offset_hi) = (hi / self.sample_rate, hi % self.sample_rate);
        if hi >= self.len || lo / self.sample_rate != block {
            return (self.rank(r, lo), self.rank(r, hi));
        }
        assert!((r as usize) < self.stride, "code {r} out of alphabet");
        let offset_lo = lo - block * self.sample_rate;
        let between = self.matches(block, offset_lo, offset_hi, r);
        // Beyond `between` (shared by both directions), forward costs
        // `offset_lo` more lanes and backward `sample_rate - offset_hi`
        // more; equivalently, pick backward when the total backward span
        // `sample_rate - offset_lo` undercuts the forward span `offset_hi`.
        let backward =
            self.sample_rate - offset_lo < offset_hi && (block + 1) * self.sample_rate <= self.len;
        let (lo_physical, hi_physical) = if backward {
            let hi_count = self.checkpoint(block + 1, r as usize)
                - self.matches(block, offset_hi, self.sample_rate, r);
            (hi_count - between, hi_count)
        } else {
            let lo_count =
                self.checkpoint(block, r as usize) + self.matches(block, 0, offset_lo, r);
            (lo_count, lo_count + between)
        };
        (
            self.corrected(lo_physical, r, lo),
            self.corrected(hi_physical, r, hi),
        )
    }

    /// Hints the CPU to pull what a later `rank(r, i)` will touch first
    /// toward L1: the line holding the checkpoint counter it will read
    /// (plus, two-level, the superblock line it is relative to — that
    /// array is small enough to mostly live in cache anyway) and the line
    /// where its code scan starts — mirroring `rank`'s forward/backward
    /// choice. The rest of the scan is sequential, which the hardware
    /// prefetcher follows on its own; issuing more hints here costs more
    /// than it hides. Never faults; a no-op off x86-64 and for the
    /// `i == len` totals fast path.
    #[inline]
    pub fn prefetch_rank(&self, r: u16, i: usize) {
        if i >= self.len {
            return; // answered from `totals`, which stays cache-hot
        }
        let block = i / self.sample_rate;
        let offset = i - block * self.sample_rate;
        let r = (r as usize).min(self.stride - 1);
        if self.backward_cheaper(block, offset) {
            self.prefetch_checkpoint(block + 1, r);
            self.prefetch_scan(block, offset);
        } else {
            self.prefetch_checkpoint(block, r);
            self.prefetch_scan(block, 0);
        }
    }

    /// [`KmerOccTable::prefetch_rank`] for both ends of an interval, as
    /// later consumed by a `rank_pair(r, lo, hi)`: two hints when the
    /// ends fall in different blocks; in the same-block case (the
    /// narrow-interval common path) it mirrors `rank_pair`'s own
    /// direction test — which weighs the *pair*, not either endpoint
    /// alone — so the hinted checkpoint line is the one the fused rank
    /// will actually read.
    #[inline]
    pub fn prefetch_rank_pair(&self, r: u16, lo: usize, hi: usize) {
        let block = lo / self.sample_rate;
        if hi >= self.len || hi / self.sample_rate != block {
            self.prefetch_rank(r, lo);
            self.prefetch_rank(r, hi);
            return;
        }
        let offset_lo = lo - block * self.sample_rate;
        let offset_hi = hi - block * self.sample_rate;
        let r = (r as usize).min(self.stride - 1);
        if self.sample_rate - offset_lo < offset_hi && (block + 1) * self.sample_rate <= self.len {
            // Backward fused scan: next block's checkpoint, lanes
            // `offset_lo .. sample_rate`.
            self.prefetch_checkpoint(block + 1, r);
            self.prefetch_scan(block, offset_lo);
        } else {
            // Forward fused scan: own checkpoint, lanes `0 .. offset_hi`.
            self.prefetch_checkpoint(block, r);
            self.prefetch_scan(block, 0);
        }
    }

    /// Hints the line(s) `checkpoint(block, r)` will read.
    #[inline]
    fn prefetch_checkpoint(&self, block: usize, r: usize) {
        let base = block * self.block_words;
        match self.delta_width {
            DeltaWidth::U32 => self.data.prefetch(base + r),
            DeltaWidth::U16 => {
                self.data.prefetch(base + r / 2);
                self.superblocks
                    .prefetch((block / self.superblock_rate) * self.stride + r);
            }
            DeltaWidth::U8 => {
                self.data.prefetch(base + r / 4);
                self.superblocks
                    .prefetch((block / self.superblock_rate) * self.stride + r);
            }
        }
    }

    /// Hints the line where `block`'s code scan starts at lane `offset`.
    #[inline]
    fn prefetch_scan(&self, block: usize, offset: usize) {
        let code_bytes = if self.wide_codes() { 2 } else { 1 };
        let byte = block * self.block_words * 4 + self.delta_bytes + offset * code_bytes;
        self.data.prefetch(byte / 4);
    }

    /// Heap bytes attributed to checkpoints (absolute rows), deltas,
    /// and code lanes. Exact: `total()` is the allocation-true footprint.
    pub fn heap_breakdown(&self) -> HeapBreakdown {
        let delta_total = self.blocks * self.delta_bytes;
        let (checkpoints, deltas) = if self.delta_width.is_absolute() {
            (delta_total, 0)
        } else {
            (self.superblocks.heap_bytes(), delta_total)
        };
        HeapBreakdown {
            k_occ_checkpoints: checkpoints,
            k_occ_deltas: deltas,
            k_occ_codes: self.data.heap_bytes() - delta_total + self.totals.capacity() * 4,
            other: self.exceptions.capacity() * 4,
            ..HeapBreakdown::default()
        }
    }

    /// Heap bytes of the interleaved blocks, superblock rows, and the
    /// totals row.
    pub fn heap_bytes(&self) -> usize {
        self.heap_breakdown().total()
    }
}

/// Reference O(n) rank used to validate the checkpointed table in tests.
pub fn naive_krank(codes: &[u16], r: u16, i: usize) -> u32 {
    codes[..i].iter().filter(|&&c| c == r).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every layout the property tests cross: the absolute baseline plus
    /// {u8, u16} deltas x {2, 8, 64} superblock spacings.
    const LAYOUTS: [(DeltaWidth, usize); 7] = [
        (DeltaWidth::U32, 16),
        (DeltaWidth::U8, 2),
        (DeltaWidth::U8, 8),
        (DeltaWidth::U8, 64),
        (DeltaWidth::U16, 2),
        (DeltaWidth::U16, 8),
        (DeltaWidth::U16, 64),
    ];

    /// A small deterministic code stream over a stride-9 alphabet with some
    /// out-of-alphabet (sentinel-crossing) entries.
    fn fixture(len: usize, stride: u16) -> Vec<u16> {
        (0..len)
            .map(|i| {
                let x = (i * 7 + i / 3) % (stride as usize + 1);
                x as u16
            })
            .collect()
    }

    fn build(codes: Vec<u16>, stride: usize, rate: usize) -> KmerOccTable {
        KmerOccTable::new(codes, stride, rate, DeltaWidth::U16, 16).unwrap()
    }

    #[test]
    fn rank_matches_naive_across_widths_spacings_and_rates() {
        let codes = fixture(137, 9);
        for (width, sb) in LAYOUTS {
            for rate in [1, 5, 44, 200] {
                let occ = KmerOccTable::new(codes.clone(), 9, rate, width, sb).unwrap();
                for i in 0..=codes.len() {
                    for r in 0..9u16 {
                        assert_eq!(
                            occ.rank(r, i),
                            naive_krank(&codes, r, i),
                            "{width}/sb{sb}, rate {rate}, code {r}, prefix {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rank_pair_matches_naive_across_widths_spacings_and_rates() {
        let codes = fixture(137, 9);
        for (width, sb) in LAYOUTS {
            for rate in [1, 5, 44, 200] {
                let occ = KmerOccTable::new(codes.clone(), 9, rate, width, sb).unwrap();
                for lo in 0..=codes.len() {
                    for hi in lo..=codes.len() {
                        for r in [0u16, 3, 8] {
                            assert_eq!(
                                occ.rank_pair(r, lo, hi),
                                (naive_krank(&codes, r, lo), naive_krank(&codes, r, hi)),
                                "{width}/sb{sb}, rate {rate}, code {r}, interval {lo}..{hi}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn codes_round_trip_through_the_interleaved_layout() {
        let codes = fixture(137, 9);
        for (width, sb) in LAYOUTS {
            for rate in [1, 2, 5, 16, 200] {
                let occ = KmerOccTable::new(codes.clone(), 9, rate, width, sb).unwrap();
                for (i, &c) in codes.iter().enumerate() {
                    assert_eq!(occ.code(i), c, "{width}/sb{sb}, rate {rate}, position {i}");
                }
            }
        }
    }

    #[test]
    fn wide_strides_use_two_byte_code_lanes() {
        // stride 1024 (k = 5) forces u16 lanes; markers store literally.
        let codes: Vec<u16> = (0..300).map(|i| (i * 37) % 1025).collect();
        for (width, sb) in [(DeltaWidth::U16, 8), (DeltaWidth::U32, 16)] {
            let occ = KmerOccTable::new(codes.clone(), 1024, 7, width, sb).unwrap();
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(occ.code(i), c, "{width}, position {i}");
            }
            for r in [0u16, 36, 1023] {
                for i in 0..=codes.len() {
                    assert_eq!(occ.rank(r, i), naive_krank(&codes, r, i), "{width}");
                }
            }
        }
    }

    #[test]
    fn invalid_codes_are_stored_but_never_counted() {
        let occ = build(vec![0u16, 4, 1, 4, 2], 4, 2);
        assert_eq!(occ.code(1), 4);
        assert_eq!(occ.rank(0, 5), 1);
        assert_eq!(occ.rank(1, 5), 1);
        assert_eq!(occ.rank(2, 5), 1);
        assert_eq!(occ.rank(3, 5), 0);
    }

    #[test]
    fn stride_256_markers_round_trip_and_never_count() {
        // At stride 256 the marker (256) does not fit a byte lane and
        // takes the exception path: placeholder-0 lanes, corrected ranks.
        let codes: Vec<u16> = (0..600)
            .map(|i| if i % 151 == 3 { 256 } else { (i * 31) % 256 })
            .collect();
        for (width, sb) in LAYOUTS {
            let occ = KmerOccTable::new(codes.clone(), 256, 7, width, sb).unwrap();
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(occ.code(i), c, "{width}/sb{sb}, position {i}");
            }
            // Code 0 is the corrected path; spot-check others too.
            for r in [0u16, 1, 93, 255] {
                for i in 0..=codes.len() {
                    assert_eq!(
                        occ.rank(r, i),
                        naive_krank(&codes, r, i),
                        "{width}/sb{sb}, code {r}, prefix {i}"
                    );
                }
                for lo in (0..codes.len()).step_by(41) {
                    for hi in (lo..=codes.len()).step_by(13) {
                        assert_eq!(
                            occ.rank_pair(r, lo, hi),
                            (naive_krank(&codes, r, lo), naive_krank(&codes, r, hi)),
                            "{width}/sb{sb}, code {r}, interval {lo}..{hi}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_marker_rows_still_build() {
        // A text shorter than k makes *every* row sentinel-crossing.
        let occ = KmerOccTable::new(vec![256, 256, 256], 256, 2, DeltaWidth::U16, 16).unwrap();
        assert_eq!(occ.code(1), 256);
        for r in [0u16, 255] {
            assert_eq!(occ.rank(r, 3), 0);
        }
    }

    #[test]
    fn delta_saturating_exactly_at_the_width_still_builds() {
        // 255 zeros then a tail: at rate 5 the block-52 checkpoint stores
        // delta 255 for code 0 — exactly u8::MAX, the last legal value.
        let mut codes = vec![0u16; 255];
        codes.extend([1, 1, 1, 1, 1]);
        let occ = KmerOccTable::new(codes.clone(), 4, 5, DeltaWidth::U8, 64).unwrap();
        for i in 0..=codes.len() {
            assert_eq!(occ.rank(0, i), naive_krank(&codes, 0, i), "prefix {i}");
            assert_eq!(occ.rank(1, i), naive_krank(&codes, 1, i), "prefix {i}");
        }
    }

    #[test]
    fn delta_overflowing_just_before_the_superblock_is_a_typed_error() {
        // One more zero: the block-52 delta becomes 256, which u8 cannot
        // store, and block 52 is still 12 blocks shy of the superblock
        // boundary at 64.
        let mut codes = vec![0u16; 256];
        codes.extend([1, 1, 1, 1]);
        let err = KmerOccTable::new(codes, 4, 5, DeltaWidth::U8, 64).unwrap_err();
        assert_eq!(
            err,
            IndexError::DeltaOverflow {
                block: 52,
                code: 0,
                delta: 256,
                max: 255,
            }
        );
    }

    #[test]
    fn tighter_superblocks_absorb_the_same_overflow() {
        // The same 256-zero text builds when the superblock boundary
        // lands at block 52: the delta resets there instead of saturating.
        let mut codes = vec![0u16; 256];
        codes.extend([1, 1, 1, 1]);
        let occ = KmerOccTable::new(codes.clone(), 4, 5, DeltaWidth::U8, 52).unwrap();
        for i in 0..=codes.len() {
            assert_eq!(occ.rank(0, i), naive_krank(&codes, 0, i), "prefix {i}");
        }
    }

    #[test]
    fn prefetch_is_a_safe_no_op_everywhere() {
        for (width, sb) in LAYOUTS {
            let occ = KmerOccTable::new(fixture(137, 9), 9, 16, width, sb).unwrap();
            for i in [0usize, 1, 16, 136, 137, 500] {
                for r in 0..9u16 {
                    occ.prefetch_rank(r, i); // must never fault or panic
                    occ.prefetch_rank_pair(r, i / 2, i);
                }
            }
        }
        let occ = build(fixture(137, 9), 9, 16);
        assert_eq!(occ.rank(3, 137), naive_krank(&fixture(137, 9), 3, 137));
    }

    #[test]
    fn coarser_sampling_uses_less_memory() {
        let codes = fixture(4096, 16);
        let fine = build(codes.clone(), 16, 4);
        let coarse = build(codes, 16, 256);
        assert!(coarse.heap_bytes() < fine.heap_bytes());
    }

    #[test]
    fn narrow_deltas_use_less_memory_than_absolute_rows() {
        let codes = fixture(8192, 256);
        let flat = KmerOccTable::new(codes.clone(), 256, 44, DeltaWidth::U32, 16).unwrap();
        let two_level = KmerOccTable::new(codes.clone(), 256, 44, DeltaWidth::U16, 16).unwrap();
        let tight = KmerOccTable::new(codes, 256, 44, DeltaWidth::U8, 16).unwrap();
        assert!(two_level.heap_bytes() < flat.heap_bytes());
        assert!(tight.heap_bytes() < two_level.heap_bytes());
    }

    #[test]
    fn heap_breakdown_is_exact() {
        // stride 4, rate 3, u16 deltas, superblocks every 2 blocks:
        // 8 delta bytes + 3 code bytes = 11 -> one line per block;
        // 10 codes at rate 3 -> 4 blocks; 2 superblock groups of 4 words
        // round to one 64-byte line; totals is 4 words.
        let occ = KmerOccTable::new(fixture(10, 4), 4, 3, DeltaWidth::U16, 2).unwrap();
        let heap = occ.heap_breakdown();
        assert_eq!(heap.k_occ_checkpoints, 64);
        assert_eq!(heap.k_occ_deltas, 4 * 8);
        assert_eq!(heap.k_occ_codes, 4 * 64 - 4 * 8 + 4 * 4);
        assert_eq!(heap.other, 0);
        assert_eq!(heap.total(), occ.heap_bytes());

        // The absolute layout books every row as checkpoints, no deltas,
        // and allocates no superblocks: 16 delta bytes + 3 code bytes.
        let flat = KmerOccTable::new(fixture(10, 4), 4, 3, DeltaWidth::U32, 2).unwrap();
        let heap = flat.heap_breakdown();
        assert_eq!(heap.k_occ_checkpoints, 4 * 16);
        assert_eq!(heap.k_occ_deltas, 0);
        assert_eq!(heap.total(), flat.heap_bytes());
        assert_eq!(heap.total(), 4 * 64 + 4 * 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_past_end_panics() {
        let occ = build(vec![0, 1, 2], 4, 2);
        let _ = occ.rank(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of alphabet")]
    fn rank_of_invalid_code_panics() {
        let occ = build(vec![0, 1, 2], 4, 2);
        let _ = occ.rank(4, 2);
    }
}
