//! The sampled occurrence table over the *k-step* BWT.
//!
//! The k-step FM-index (paper §III) widens the LF alphabet from single
//! symbols to k-mers: row `i` of the k-BWT holds the k symbols that
//! cyclically precede suffix `SA[i]`, packed into one code over the
//! expanded alphabet of `4^k` base-only k-mers. Contexts that cross the
//! sentinel cannot equal any query k-mer, so they all share a single
//! out-of-alphabet code.
//!
//! Rank is checkpointed every `sample_rate` rows, but unlike the flat
//! two-allocation layout of earlier revisions, checkpoints and codes are
//! *interleaved*: block `b` packs the `4^k` checkpoint counters for prefix
//! `b * sample_rate` together with the `sample_rate` codes they cover, in
//! one cache-line-aligned region (see [`crate::interleave`]). One `rank`
//! therefore touches one contiguous block — a checkpoint word plus a short
//! forward code scan — instead of two distant arrays, and the block a
//! future `rank` will touch can be software-prefetched with
//! [`KmerOccTable::prefetch_rank`].

use crate::interleave::AlignedWords;

/// Checkpointed rank structure over k-BWT codes, interleaved per block.
///
/// Valid codes are `0 .. stride` (k-mer lexicographic ranks); the value
/// `stride` itself marks a sentinel-crossing context and is never ranked.
///
/// Block `b` covers code positions `b * sample_rate ..` and lays out, in
/// `u32` words:
///
/// ```text
/// [ stride checkpoint words | sample_rate codes, two u16 per word | pad ]
/// ```
///
/// padded so every block starts on a 64-byte cache-line boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmerOccTable {
    data: AlignedWords,
    /// Words per block: `stride + ceil(sample_rate / 2)`, line-rounded.
    block_words: usize,
    /// Number of blocks, `len / sample_rate + 1` (the last may cover
    /// fewer than `sample_rate` codes — possibly zero).
    blocks: usize,
    /// Number of code positions (the k-BWT length).
    len: usize,
    /// Size of the expanded alphabet, `4^k`.
    stride: usize,
    sample_rate: usize,
    /// Occurrences of every code in the full table: the O(1) answer to
    /// `rank(r, len)`, which every backward search issues on its first
    /// refinement (`hi = n`).
    totals: Vec<u32>,
}

impl KmerOccTable {
    /// Builds the table with checkpoints every `sample_rate` rows. Takes
    /// the codes by value: at reference scale they are tens of megabytes,
    /// and the sole builder has no further use for them.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0`, `stride` does not fit the code type,
    /// any code exceeds `stride`, or the table would overflow its `u32`
    /// counters.
    pub fn new(codes: Vec<u16>, stride: usize, sample_rate: usize) -> KmerOccTable {
        assert!(sample_rate > 0, "sample rate must be positive");
        assert!(
            stride > 0 && stride < u16::MAX as usize,
            "stride {stride} out of range"
        );
        assert!(codes.len() < u32::MAX as usize, "table too large for u32");
        let len = codes.len();
        let blocks = len / sample_rate + 1;
        let block_words =
            (stride + sample_rate.div_ceil(2)).next_multiple_of(crate::interleave::WORDS_PER_LINE);
        let mut data = AlignedWords::zeroed(blocks * block_words);
        let mut running = vec![0u32; stride];
        for (i, &c) in codes.iter().enumerate() {
            assert!((c as usize) <= stride, "code {c} exceeds stride {stride}");
            let block = i / sample_rate;
            let offset = i - block * sample_rate;
            let base = block * block_words;
            if offset == 0 {
                data.words_mut()[base..base + stride].copy_from_slice(&running);
            }
            // Codes live in the block's tail as plain u16 lanes.
            data.halves_mut()[(base + stride) * 2 + offset] = c;
            if (c as usize) < stride {
                running[c as usize] += 1;
            }
        }
        if len % sample_rate == 0 {
            // The final block covers zero codes; its checkpoint row (the
            // full counts) was never reached by the loop above.
            let base = (blocks - 1) * block_words;
            data.words_mut()[base..base + stride].copy_from_slice(&running);
        }
        KmerOccTable {
            data,
            block_words,
            blocks,
            len,
            stride,
            sample_rate,
            totals: running,
        }
    }

    /// Number of rows (the k-BWT length).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the table covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The expanded-alphabet size `4^k` this table was built with.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The checkpoint spacing this table was built with.
    pub fn sample_rate(&self) -> usize {
        self.sample_rate
    }

    /// The k-BWT code at row `i` (`stride` for sentinel-crossing contexts).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn code(&self, i: usize) -> u16 {
        assert!(i < self.len, "code position {i} out of range");
        let block = i / self.sample_rate;
        let offset = i - block * self.sample_rate;
        self.data.halves()[(block * self.block_words + self.stride) * 2 + offset]
    }

    /// Occurrences of code `r` among the u16 lanes `a..b` of the backing
    /// buffer. A plain slice scan, so it autovectorizes.
    #[inline]
    fn matches(&self, a: usize, b: usize, r: u16) -> u32 {
        let mut count = 0u32;
        for &code in &self.data.halves()[a..b] {
            count += u32::from(code == r);
        }
        count
    }

    /// `true` iff position `i`'s rank is cheaper counted *down* from the
    /// next block's checkpoint than up from its own: the block is past
    /// its midpoint and the next checkpoint exists (its block covers
    /// positions ending at or before `len`).
    #[inline]
    fn backward_cheaper(&self, block: usize, offset: usize) -> bool {
        self.sample_rate - offset < offset && (block + 1) * self.sample_rate <= self.len
    }

    /// `Occ_k(r, i)`: occurrences of k-mer code `r` in rows `0..i`
    /// (exclusive of `i`).
    ///
    /// Counts from the nearer checkpoint: forward from the block's own
    /// row, or backward from the next block's, halving the average scan.
    ///
    /// # Panics
    ///
    /// Panics if `i > self.len()` or `r` is not a valid k-mer code.
    #[inline]
    pub fn rank(&self, r: u16, i: usize) -> u32 {
        assert!(i <= self.len, "rank position {i} out of range");
        assert!((r as usize) < self.stride, "code {r} out of alphabet");
        if i == self.len {
            return self.totals[r as usize];
        }
        let block = i / self.sample_rate;
        let base = block * self.block_words;
        let offset = i - block * self.sample_rate;
        let code_base = (base + self.stride) * 2;
        if self.backward_cheaper(block, offset) {
            let next = self.data.words()[base + self.block_words + r as usize];
            next - self.matches(code_base + offset, code_base + self.sample_rate, r)
        } else {
            self.data.words()[base + r as usize] + self.matches(code_base, code_base + offset, r)
        }
    }

    /// `(rank(r, lo), rank(r, hi))` in one pass: when both positions fall
    /// in the same block — the common case once a backward search has
    /// narrowed its interval below `sample_rate` — the shared scan prefix
    /// is counted once instead of twice.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, `hi > self.len()`, or `r` is invalid.
    #[inline]
    pub fn rank_pair(&self, r: u16, lo: usize, hi: usize) -> (u32, u32) {
        assert!(lo <= hi, "rank pair {lo}..{hi} inverted");
        let (block, offset_hi) = (hi / self.sample_rate, hi % self.sample_rate);
        if hi >= self.len || lo / self.sample_rate != block {
            return (self.rank(r, lo), self.rank(r, hi));
        }
        assert!((r as usize) < self.stride, "code {r} out of alphabet");
        let base = block * self.block_words;
        let offset_lo = lo - block * self.sample_rate;
        let code_base = (base + self.stride) * 2;
        let between = self.matches(code_base + offset_lo, code_base + offset_hi, r);
        // Beyond `between` (shared by both directions), forward costs
        // `offset_lo` more lanes and backward `sample_rate - offset_hi`
        // more; equivalently, pick backward when the total backward span
        // `sample_rate - offset_lo` undercuts the forward span `offset_hi`.
        let backward =
            self.sample_rate - offset_lo < offset_hi && (block + 1) * self.sample_rate <= self.len;
        if backward {
            let next = self.data.words()[base + self.block_words + r as usize];
            let hi_count =
                next - self.matches(code_base + offset_hi, code_base + self.sample_rate, r);
            (hi_count - between, hi_count)
        } else {
            let lo_count = self.data.words()[base + r as usize]
                + self.matches(code_base, code_base + offset_lo, r);
            (lo_count, lo_count + between)
        }
    }

    /// Hints the CPU to pull what a later `rank(r, i)` will touch first
    /// toward L1: the cache line holding the checkpoint word it will read
    /// and the line where its code scan starts — mirroring `rank`'s
    /// forward/backward choice. The rest of the scan is sequential, which
    /// the hardware prefetcher follows on its own; issuing more hints
    /// here costs more than it hides. Never faults; a no-op off x86-64
    /// and for the `i == len` totals fast path.
    #[inline]
    pub fn prefetch_rank(&self, r: u16, i: usize) {
        if i >= self.len {
            return; // answered from `totals`, which stays cache-hot
        }
        let block = i / self.sample_rate;
        let base = block * self.block_words;
        let offset = i - block * self.sample_rate;
        let r = (r as usize).min(self.stride - 1);
        let code_words = base + self.stride;
        if self.backward_cheaper(block, offset) {
            self.data.prefetch(base + self.block_words + r);
            self.data.prefetch(code_words + offset / 2);
        } else {
            self.data.prefetch(base + r);
            self.data.prefetch(code_words);
        }
    }

    /// [`KmerOccTable::prefetch_rank`] for both ends of an interval, as
    /// later consumed by a `rank_pair(r, lo, hi)`: two hints when the
    /// ends fall in different blocks; in the same-block case (the
    /// narrow-interval common path) it mirrors `rank_pair`'s own
    /// direction test — which weighs the *pair*, not either endpoint
    /// alone — so the hinted checkpoint line is the one the fused rank
    /// will actually read.
    #[inline]
    pub fn prefetch_rank_pair(&self, r: u16, lo: usize, hi: usize) {
        let block = lo / self.sample_rate;
        if hi >= self.len || hi / self.sample_rate != block {
            self.prefetch_rank(r, lo);
            self.prefetch_rank(r, hi);
            return;
        }
        let base = block * self.block_words;
        let offset_lo = lo - block * self.sample_rate;
        let offset_hi = hi - block * self.sample_rate;
        let r = (r as usize).min(self.stride - 1);
        let code_words = base + self.stride;
        if self.sample_rate - offset_lo < offset_hi && (block + 1) * self.sample_rate <= self.len {
            // Backward fused scan: next block's checkpoint, lanes
            // `offset_lo .. sample_rate`.
            self.data.prefetch(base + self.block_words + r);
            self.data.prefetch(code_words + offset_lo / 2);
        } else {
            // Forward fused scan: own checkpoint, lanes `0 .. offset_hi`.
            self.data.prefetch(base + r);
            self.data.prefetch(code_words);
        }
    }

    /// Heap bytes of the interleaved blocks and the totals row.
    pub fn heap_bytes(&self) -> usize {
        self.data.heap_bytes() + self.totals.capacity() * 4
    }
}

/// Reference O(n) rank used to validate the checkpointed table in tests.
pub fn naive_krank(codes: &[u16], r: u16, i: usize) -> u32 {
    codes[..i].iter().filter(|&&c| c == r).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small deterministic code stream over a stride-9 alphabet with some
    /// out-of-alphabet (sentinel-crossing) entries.
    fn fixture(len: usize, stride: u16) -> Vec<u16> {
        (0..len)
            .map(|i| {
                let x = (i * 7 + i / 3) % (stride as usize + 1);
                x as u16
            })
            .collect()
    }

    #[test]
    fn rank_matches_naive_at_every_position() {
        let codes = fixture(137, 9);
        for rate in [1, 2, 5, 16, 200] {
            let occ = KmerOccTable::new(codes.clone(), 9, rate);
            for i in 0..=codes.len() {
                for r in 0..9u16 {
                    assert_eq!(
                        occ.rank(r, i),
                        naive_krank(&codes, r, i),
                        "rate {rate}, code {r}, prefix {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_pair_matches_naive_at_every_interval() {
        let codes = fixture(137, 9);
        for rate in [1, 2, 5, 16, 200] {
            let occ = KmerOccTable::new(codes.clone(), 9, rate);
            for lo in 0..=codes.len() {
                for hi in lo..=codes.len() {
                    for r in [0u16, 3, 8] {
                        assert_eq!(
                            occ.rank_pair(r, lo, hi),
                            (naive_krank(&codes, r, lo), naive_krank(&codes, r, hi)),
                            "rate {rate}, code {r}, interval {lo}..{hi}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn codes_round_trip_through_the_interleaved_layout() {
        let codes = fixture(137, 9);
        for rate in [1, 2, 5, 16, 200] {
            let occ = KmerOccTable::new(codes.clone(), 9, rate);
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(occ.code(i), c, "rate {rate}, position {i}");
            }
        }
    }

    #[test]
    fn invalid_codes_are_stored_but_never_counted() {
        let occ = KmerOccTable::new(vec![0u16, 4, 1, 4, 2], 4, 2);
        assert_eq!(occ.code(1), 4);
        assert_eq!(occ.rank(0, 5), 1);
        assert_eq!(occ.rank(1, 5), 1);
        assert_eq!(occ.rank(2, 5), 1);
        assert_eq!(occ.rank(3, 5), 0);
    }

    #[test]
    fn prefetch_is_a_safe_no_op_everywhere() {
        let occ = KmerOccTable::new(fixture(137, 9), 9, 16);
        for i in [0usize, 1, 16, 136, 137, 500] {
            for r in 0..9u16 {
                occ.prefetch_rank(r, i); // must never fault or panic
            }
        }
        assert_eq!(occ.rank(3, 137), naive_krank(&fixture(137, 9), 3, 137));
    }

    #[test]
    fn coarser_sampling_uses_less_memory() {
        let codes = fixture(4096, 16);
        let fine = KmerOccTable::new(codes.clone(), 16, 4);
        let coarse = KmerOccTable::new(codes, 16, 256);
        assert!(coarse.heap_bytes() < fine.heap_bytes());
    }

    #[test]
    fn heap_is_exact_block_multiples() {
        // stride 4 + ceil(3/2) = 6 words -> one line per block; 10 codes at
        // rate 3 -> 4 blocks -> 256 bytes, plus the 4-word totals row.
        let occ = KmerOccTable::new(fixture(10, 4), 4, 3);
        assert_eq!(occ.heap_bytes(), 4 * 64 + 4 * 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_past_end_panics() {
        let occ = KmerOccTable::new(vec![0, 1, 2], 4, 2);
        let _ = occ.rank(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of alphabet")]
    fn rank_of_invalid_code_panics() {
        let occ = KmerOccTable::new(vec![0, 1, 2], 4, 2);
        let _ = occ.rank(4, 2);
    }
}
