//! The sampled occurrence table over the *k-step* BWT.
//!
//! The k-step FM-index (paper §III) widens the LF alphabet from single
//! symbols to k-mers: row `i` of the k-BWT holds the k symbols that
//! cyclically precede suffix `SA[i]`, packed into one code over the
//! expanded alphabet of `4^k` base-only k-mers. Contexts that cross the
//! sentinel cannot equal any query k-mer, so they all share a single
//! out-of-alphabet code. Rank over these codes is checkpointed exactly like
//! [`crate::occ::OccTable`], except a checkpoint stores `4^k` counters —
//! the memory/latency trade-off the paper's hardware layout is built
//! around.

/// Checkpointed rank structure over k-BWT codes.
///
/// Valid codes are `0 .. stride` (k-mer lexicographic ranks); the value
/// `stride` itself marks a sentinel-crossing context and is never ranked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmerOccTable {
    /// One k-mer code per BWT row; `stride` = sentinel-crossing.
    codes: Vec<u16>,
    /// Flattened checkpoints: `checkpoints[b * stride + r]` = occurrences
    /// of code `r` in `codes[0 .. b * rate]`.
    checkpoints: Vec<u32>,
    /// Size of the expanded alphabet, `4^k`.
    stride: usize,
    sample_rate: usize,
}

impl KmerOccTable {
    /// Builds the table with checkpoints every `sample_rate` rows. Takes
    /// the codes by value: at reference scale they are tens of megabytes,
    /// and the sole builder has no further use for them.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0`, `stride` does not fit the code type,
    /// or any code exceeds `stride`.
    pub fn new(codes: Vec<u16>, stride: usize, sample_rate: usize) -> KmerOccTable {
        assert!(sample_rate > 0, "sample rate must be positive");
        assert!(
            stride > 0 && stride < u16::MAX as usize,
            "stride {stride} out of range"
        );
        let mut checkpoints = Vec::with_capacity((codes.len() / sample_rate + 2) * stride);
        let mut running = vec![0u32; stride];
        for (i, &c) in codes.iter().enumerate() {
            assert!((c as usize) <= stride, "code {c} exceeds stride {stride}");
            if i % sample_rate == 0 {
                checkpoints.extend_from_slice(&running);
            }
            if (c as usize) < stride {
                running[c as usize] += 1;
            }
        }
        // A final checkpoint at position n makes rank(r, n) O(1) too.
        checkpoints.extend_from_slice(&running);
        KmerOccTable {
            codes,
            checkpoints,
            stride,
            sample_rate,
        }
    }

    /// Number of rows (the k-BWT length).
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` iff the table covers no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The expanded-alphabet size `4^k` this table was built with.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The checkpoint spacing this table was built with.
    pub fn sample_rate(&self) -> usize {
        self.sample_rate
    }

    /// The k-BWT code at row `i` (`stride` for sentinel-crossing contexts).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn code(&self, i: usize) -> u16 {
        self.codes[i]
    }

    /// `Occ_k(r, i)`: occurrences of k-mer code `r` in rows `0..i`
    /// (exclusive of `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i > self.len()` or `r` is not a valid k-mer code.
    #[inline]
    pub fn rank(&self, r: u16, i: usize) -> u32 {
        assert!(i <= self.codes.len(), "rank position {i} out of range");
        assert!((r as usize) < self.stride, "code {r} out of alphabet");
        // The nearest checkpoint at or below i, then a short forward scan
        // (same block arithmetic as OccTable::rank).
        let blocks = self.checkpoints.len() / self.stride;
        let block = (i / self.sample_rate).min(blocks - 1);
        let mut count = self.checkpoints[block * self.stride + r as usize];
        for &c in &self.codes[block * self.sample_rate..i] {
            count += u32::from(c == r);
        }
        count
    }

    /// Heap bytes used by the codes and checkpoints.
    pub fn heap_bytes(&self) -> usize {
        self.codes.capacity() * 2 + self.checkpoints.capacity() * 4
    }
}

/// Reference O(n) rank used to validate the checkpointed table in tests.
pub fn naive_krank(codes: &[u16], r: u16, i: usize) -> u32 {
    codes[..i].iter().filter(|&&c| c == r).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small deterministic code stream over a stride-9 alphabet with some
    /// out-of-alphabet (sentinel-crossing) entries.
    fn fixture(len: usize, stride: u16) -> Vec<u16> {
        (0..len)
            .map(|i| {
                let x = (i * 7 + i / 3) % (stride as usize + 1);
                x as u16
            })
            .collect()
    }

    #[test]
    fn rank_matches_naive_at_every_position() {
        let codes = fixture(137, 9);
        for rate in [1, 2, 5, 16, 200] {
            let occ = KmerOccTable::new(codes.clone(), 9, rate);
            for i in 0..=codes.len() {
                for r in 0..9u16 {
                    assert_eq!(
                        occ.rank(r, i),
                        naive_krank(&codes, r, i),
                        "rate {rate}, code {r}, prefix {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_codes_are_stored_but_never_counted() {
        let occ = KmerOccTable::new(vec![0u16, 4, 1, 4, 2], 4, 2);
        assert_eq!(occ.code(1), 4);
        assert_eq!(occ.rank(0, 5), 1);
        assert_eq!(occ.rank(1, 5), 1);
        assert_eq!(occ.rank(2, 5), 1);
        assert_eq!(occ.rank(3, 5), 0);
    }

    #[test]
    fn coarser_sampling_uses_less_memory() {
        let codes = fixture(4096, 16);
        let fine = KmerOccTable::new(codes.clone(), 16, 4);
        let coarse = KmerOccTable::new(codes, 16, 256);
        assert!(coarse.heap_bytes() < fine.heap_bytes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_past_end_panics() {
        let occ = KmerOccTable::new(vec![0, 1, 2], 4, 2);
        let _ = occ.rank(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of alphabet")]
    fn rank_of_invalid_code_panics() {
        let occ = KmerOccTable::new(vec![0, 1, 2], 4, 2);
        let _ = occ.rank(4, 2);
    }
}
