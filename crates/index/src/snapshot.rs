//! Crash-safe, checksummed snapshots of a built [`KStepFmIndex`].
//!
//! Rebuilding an FM-index costs a suffix-array construction — the bulk
//! of a server's startup on real genomes — while everything the suffix
//! array *produced* is linear to re-derive. A snapshot therefore
//! persists the four text-derived components the index cannot cheaply
//! recover (the BWT symbol stream, the k-BWT code stream, the sampled
//! suffix array, and the expanded-alphabet C-array) together with the
//! full build recipe, and a load replays the deterministic linear
//! constructors over them. That buys three guarantees for free: every
//! structural invariant holds because the ordinary constructors enforce
//! it, the 64-byte [`AlignedWords`](crate::interleave::AlignedWords)
//! alignment is preserved because the same allocator path produces it,
//! and the reloaded index is *equal* to a cold build — byte-identical
//! query results and an allocation-exact
//! [`HeapBreakdown`](crate::HeapBreakdown).
//!
//! # On-disk format (versions 1 and 2, all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"EXMASNAP"
//!      8     4  format version (1 or 2)
//!     12     4  k
//!     16     4  occ_sample_rate
//!     20     4  sa_sample_rate
//!     24     4  k_occ_sample_rate
//!     28     4  delta width code (0 = u8, 1 = u16, 2 = u32)
//!     32     4  superblock_rate
//!     36     8  text length n (sentinel included)
//!     44     4  section count (= 4)
//!   [ 48     4  recipe flags (version 2 only; bit 0 = bidirectional) ]
//!      …     …  4 sections, each:
//!                 tag u32 | payload length u64 | payload CRC32 | payload
//!      …     4  whole-file CRC32 over every preceding byte
//! ```
//!
//! Version 2 exists solely to carry the bidirectional recipe marker (a
//! doubled-text index is table-identical to a forward-only one, so the
//! flag cannot be recovered from the payloads). Forward-only indexes
//! still encode as version 1, byte-identical to what earlier builds
//! wrote; only a bidirectional index produces a version-2 image, and
//! this build reads both.
//!
//! Sections, in order: `1` BWT (n one-byte symbol codes), `2` k-BWT
//! codes (n u16 k-mer codes), `3` sampled suffix array (sample count
//! u64, then `⌈n/64⌉` mark words, then the u32 samples), `4` the
//! expanded C-array (`4^k` u32 bucket starts).
//!
//! # Verification before construction
//!
//! A load verifies *everything* before building anything: magic,
//! version, recipe sanity, structural bounds, every section checksum,
//! the whole-file checksum (which covers the header and section
//! framing), and finally the semantic range/consistency of each decoded
//! payload. Every failure is a typed [`SnapshotError`]; a corrupted
//! file can never panic the loader and never yields an index. The
//! checksums are the corruption defense — a file that collides CRC32 on
//! every region it mutated is outside the threat model (that is an
//! adversarially *crafted* file, not a corrupted one), and even then
//! the semantic validation keeps every table access in bounds.
//!
//! # Crash-safe writes
//!
//! [`write_snapshot`] writes the full image to `path.tmp`, fsyncs it,
//! atomically renames it over `path`, and fsyncs the directory: a crash
//! at any point leaves either the old snapshot or the new one, never a
//! torn file at `path`. A torn `path.tmp` that somehow gets renamed by
//! hand is still caught by the length and checksum verification above.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use exma_genome::{count_table, Symbol};

use crate::fm::FmIndex;
use crate::kocc::KmerOccTable;
use crate::kstep::{KStepBuildConfig, KStepFmIndex, MAX_STEP};
use crate::layout::DeltaWidth;
use crate::occ::OccTable;
use crate::sampled_sa::{RankBits, SampledSuffixArray};

/// The leading eight bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"EXMASNAP";

/// The newest on-disk format version this build writes and reads.
/// Version 1 (no recipe-flags word) is still read, and still written for
/// forward-only indexes.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;

const HEADER_LEN: usize = 48;
/// The version-2 recipe-flags word appended after the v1 header.
const FLAGS_LEN: usize = 4;
/// Bit 0 of the recipe-flags word: the index covers the bidirectional
/// doubled text.
const FLAG_BIDIRECTIONAL: u32 = 1;
const SECTION_HEADER_LEN: usize = 16;
const SECTION_COUNT: usize = 4;
const SECTION_NAMES: [&str; SECTION_COUNT] = ["bwt", "k-codes", "sampled-sa", "k-starts"];

/// Why a snapshot could not be written or loaded. Every load-side
/// failure is typed and total: corrupted input yields an error, never a
/// panic and never an index.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's format version is not the one this build reads.
    VersionMismatch { found: u32, supported: u32 },
    /// A CRC32 did not match: `section` names the covered region
    /// (a payload section, or `"file"` for the whole-file trailer).
    ChecksumMismatch { section: &'static str },
    /// The file ends before the bytes its own framing promises.
    Truncated { needed: u64, len: u64 },
    /// The snapshot's build recipe differs from the one the caller
    /// requires (e.g. the serving builder's layout).
    LayoutMismatch {
        expected: KStepBuildConfig,
        found: KStepBuildConfig,
    },
    /// A checksum-valid region decoded to a semantically impossible
    /// value; `field` names it.
    Malformed { field: &'static str },
    /// The underlying filesystem operation failed.
    Io { kind: io::ErrorKind },
}

fn write_config(f: &mut fmt::Formatter<'_>, c: &KStepBuildConfig) -> fmt::Result {
    write!(
        f,
        "k{}_occ{}_sa{}_kocc{}_{}_sb{}",
        c.k,
        c.occ_sample_rate,
        c.sa_sample_rate,
        c.k_occ_sample_rate,
        c.delta_width,
        c.superblock_rate
    )?;
    if c.bidirectional {
        write!(f, "_bidir")?;
    }
    Ok(())
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an EXMA index snapshot (bad magic)"),
            SnapshotError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format v{found} is not readable by this build (supports v{supported})"
            ),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in snapshot {section} region")
            }
            SnapshotError::Truncated { needed, len } => {
                write!(f, "snapshot truncated: needs {needed} bytes, has {len}")
            }
            SnapshotError::LayoutMismatch { expected, found } => {
                write!(f, "snapshot layout mismatch: expected ")?;
                write_config(f, expected)?;
                write!(f, ", found ")?;
                write_config(f, found)
            }
            SnapshotError::Malformed { field } => {
                write!(f, "malformed snapshot: invalid {field}")
            }
            SnapshotError::Io { kind } => write!(f, "snapshot I/O error: {kind}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io { kind: e.kind() }
    }
}

/// CRC32 (IEEE 802.3), table-driven; the table is const-evaluated so
/// the implementation stays dependency-free.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC32 checksum guarding every snapshot region.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn delta_width_code(width: DeltaWidth) -> u32 {
    match width {
        DeltaWidth::U8 => 0,
        DeltaWidth::U16 => 1,
        DeltaWidth::U32 => 2,
    }
}

fn delta_width_from_code(code: u32) -> Option<DeltaWidth> {
    match code {
        0 => Some(DeltaWidth::U8),
        1 => Some(DeltaWidth::U16),
        2 => Some(DeltaWidth::U32),
        _ => None,
    }
}

fn u32_at(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"))
}

fn u64_at(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

fn need(bytes: &[u8], needed: usize) -> Result<(), SnapshotError> {
    if bytes.len() < needed {
        return Err(SnapshotError::Truncated {
            needed: needed as u64,
            len: bytes.len() as u64,
        });
    }
    Ok(())
}

fn malformed(field: &'static str) -> SnapshotError {
    SnapshotError::Malformed { field }
}

/// Serializes `index` into its snapshot image, checksums included — the
/// pure counterpart of [`write_snapshot`]. Forward-only indexes encode
/// as version 1 (byte-identical to earlier builds); bidirectional
/// indexes as version 2 with the recipe-flags word.
pub fn encode_snapshot(index: &KStepFmIndex) -> Vec<u8> {
    let config = index.build_config();
    let (version, flags_len) = if config.bidirectional {
        (SNAPSHOT_FORMAT_VERSION, FLAGS_LEN)
    } else {
        (1, 0)
    };
    let n = index.text_len();
    let stride = 1usize << (2 * config.k);
    let occ = index.base_index().occ();
    let kocc = index.kmer_occ();
    let ssa = index.base_index().sampled_sa();

    // Section payloads: the canonical linear inputs the constructors
    // replay on load.
    let mut bwt = Vec::with_capacity(n);
    for i in 0..n {
        bwt.push(occ.symbol(i).code());
    }
    let mut kcodes = Vec::with_capacity(2 * n);
    for i in 0..n {
        kcodes.extend_from_slice(&kocc.code(i).to_le_bytes());
    }
    let words = ssa.marks().word_slice();
    let samples = ssa.sample_slice();
    let mut ssa_payload = Vec::with_capacity(8 + 8 * words.len() + 4 * samples.len());
    ssa_payload.extend_from_slice(&(samples.len() as u64).to_le_bytes());
    for &w in words {
        ssa_payload.extend_from_slice(&w.to_le_bytes());
    }
    for &s in samples {
        ssa_payload.extend_from_slice(&s.to_le_bytes());
    }
    let mut kstarts = Vec::with_capacity(4 * stride);
    for &start in index.kstart_slice() {
        kstarts.extend_from_slice(&start.to_le_bytes());
    }

    let sections = [bwt, kcodes, ssa_payload, kstarts];
    let total = HEADER_LEN
        + flags_len
        + sections
            .iter()
            .map(|s| SECTION_HEADER_LEN + s.len())
            .sum::<usize>()
        + 4;
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(config.k as u32).to_le_bytes());
    out.extend_from_slice(&(config.occ_sample_rate as u32).to_le_bytes());
    out.extend_from_slice(&(config.sa_sample_rate as u32).to_le_bytes());
    out.extend_from_slice(&(config.k_occ_sample_rate as u32).to_le_bytes());
    out.extend_from_slice(&delta_width_code(config.delta_width).to_le_bytes());
    out.extend_from_slice(&(config.superblock_rate as u32).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
    if flags_len > 0 {
        out.extend_from_slice(&FLAG_BIDIRECTIONAL.to_le_bytes());
    }
    for (i, payload) in sections.iter().enumerate() {
        out.extend_from_slice(&(i as u32 + 1).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    let file_crc = crc32(&out);
    out.extend_from_slice(&file_crc.to_le_bytes());
    out
}

/// Writes `index` to `path` crash-safely: full image to `path.tmp`,
/// fsync, atomic rename over `path`, directory fsync. A crash at any
/// point leaves either the previous snapshot or the complete new one.
///
/// # Errors
///
/// [`SnapshotError::Io`] if any filesystem step fails; the partial
/// `path.tmp` is best-effort removed on failure.
pub fn write_snapshot(index: &KStepFmIndex, path: &Path) -> Result<(), SnapshotError> {
    let bytes = encode_snapshot(index);
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let result = (|| -> io::Result<()> {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        // The rename is only durable once the directory entry is.
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            File::open(dir)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result.map_err(SnapshotError::from)
}

/// Loads and fully verifies the snapshot at `path`.
///
/// # Errors
///
/// Any [`SnapshotError`]; see [`decode_snapshot`] for the verification
/// contract.
pub fn load_snapshot(path: &Path) -> Result<KStepFmIndex, SnapshotError> {
    load_snapshot_expecting(path, None)
}

/// [`load_snapshot`], additionally requiring the snapshot's embedded
/// build recipe to equal `expected` — the warm-start compatibility
/// check, performed on the header before any payload work.
pub fn load_snapshot_expecting(
    path: &Path,
    expected: Option<&KStepBuildConfig>,
) -> Result<KStepFmIndex, SnapshotError> {
    let bytes = fs::read(path)?;
    decode_snapshot(&bytes, expected)
}

/// Decodes a snapshot image, verifying everything before constructing
/// anything: magic, version, recipe sanity, structural bounds, the four
/// section checksums, the whole-file checksum, and the semantic
/// consistency of every decoded payload. Returns a typed error — never
/// panics, never yields a partially-verified index.
pub fn decode_snapshot(
    bytes: &[u8],
    expected: Option<&KStepBuildConfig>,
) -> Result<KStepFmIndex, SnapshotError> {
    need(bytes, 8)?;
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    need(bytes, 12)?;
    let version = u32_at(bytes, 8);
    if !(1..=SNAPSHOT_FORMAT_VERSION).contains(&version) {
        return Err(SnapshotError::VersionMismatch {
            found: version,
            supported: SNAPSHOT_FORMAT_VERSION,
        });
    }
    // Version 1 has no recipe-flags word; sections start right after the
    // common header.
    let header_len = if version >= 2 {
        HEADER_LEN + FLAGS_LEN
    } else {
        HEADER_LEN
    };
    need(bytes, header_len)?;
    let k = u32_at(bytes, 12) as usize;
    let occ_rate = u32_at(bytes, 16) as usize;
    let sa_rate = u32_at(bytes, 20) as usize;
    let kocc_rate = u32_at(bytes, 24) as usize;
    let width_code = u32_at(bytes, 28);
    let superblock_rate = u32_at(bytes, 32) as usize;
    let text_len = u64_at(bytes, 36);
    let section_count = u32_at(bytes, 44) as usize;
    let flags = if version >= 2 { u32_at(bytes, 48) } else { 0 };
    if flags & !FLAG_BIDIRECTIONAL != 0 {
        return Err(malformed("recipe flags"));
    }
    let bidirectional = flags & FLAG_BIDIRECTIONAL != 0;

    if !(1..=MAX_STEP).contains(&k) {
        return Err(malformed("step width k"));
    }
    let delta_width = delta_width_from_code(width_code).ok_or(malformed("delta width code"))?;
    if occ_rate == 0 || sa_rate == 0 || kocc_rate == 0 || superblock_rate == 0 {
        return Err(malformed("zero sample rate"));
    }
    if text_len == 0 || text_len >= u64::from(u32::MAX) {
        return Err(malformed("text length"));
    }
    if section_count != SECTION_COUNT {
        return Err(malformed("section count"));
    }
    if !delta_width.is_absolute() && occ_rate.saturating_mul(superblock_rate) > u16::MAX as usize {
        return Err(malformed("occ superblock span"));
    }
    let config = KStepBuildConfig {
        k,
        occ_sample_rate: occ_rate,
        sa_sample_rate: sa_rate,
        k_occ_sample_rate: kocc_rate,
        delta_width,
        superblock_rate,
        bidirectional,
    };
    if let Some(expected) = expected {
        if *expected != config {
            return Err(SnapshotError::LayoutMismatch {
                expected: *expected,
                found: config,
            });
        }
    }

    let n = text_len as usize;
    let stride = 1usize << (2 * k);

    // Structural walk: every section header and payload must lie within
    // the buffer, in tag order, with exactly the 4-byte file checksum
    // after the last.
    let mut offset = header_len;
    let mut sections: [(usize, usize); SECTION_COUNT] = [(0, 0); SECTION_COUNT];
    let mut section_crcs = [0u32; SECTION_COUNT];
    for (i, span) in sections.iter_mut().enumerate() {
        need(bytes, offset + SECTION_HEADER_LEN)?;
        let tag = u32_at(bytes, offset) as usize;
        let payload_len = u64_at(bytes, offset + 4);
        section_crcs[i] = u32_at(bytes, offset + 12);
        if tag != i + 1 {
            return Err(malformed("section tag"));
        }
        let payload_len = usize::try_from(payload_len).map_err(|_| SnapshotError::Truncated {
            needed: u64::MAX,
            len: bytes.len() as u64,
        })?;
        let start = offset + SECTION_HEADER_LEN;
        let end = start
            .checked_add(payload_len)
            .ok_or(SnapshotError::Truncated {
                needed: u64::MAX,
                len: bytes.len() as u64,
            })?;
        need(bytes, end)?;
        *span = (start, end);
        offset = end;
    }
    match bytes.len().cmp(&(offset + 4)) {
        std::cmp::Ordering::Less => {
            return Err(SnapshotError::Truncated {
                needed: (offset + 4) as u64,
                len: bytes.len() as u64,
            })
        }
        std::cmp::Ordering::Greater => return Err(malformed("file length")),
        std::cmp::Ordering::Equal => {}
    }

    // Integrity: each section's own checksum, then the whole-file
    // checksum (which also covers the header and section framing — a
    // flipped sample rate must never silently rebuild a different
    // index).
    for (i, &(start, end)) in sections.iter().enumerate() {
        if crc32(&bytes[start..end]) != section_crcs[i] {
            return Err(SnapshotError::ChecksumMismatch {
                section: SECTION_NAMES[i],
            });
        }
    }
    if crc32(&bytes[..offset]) != u32_at(bytes, offset) {
        return Err(SnapshotError::ChecksumMismatch { section: "file" });
    }

    // Semantic decode, every value range-checked before any constructor
    // that could assert sees it.
    let (bwt_start, bwt_end) = sections[0];
    if bwt_end - bwt_start != n {
        return Err(malformed("bwt length"));
    }
    let mut bwt = Vec::with_capacity(n);
    for &b in &bytes[bwt_start..bwt_end] {
        if b > 4 {
            return Err(malformed("bwt symbol code"));
        }
        bwt.push(Symbol::from_code(b));
    }

    let (kc_start, kc_end) = sections[1];
    if kc_end - kc_start != 2 * n {
        return Err(malformed("k-codes length"));
    }
    let mut codes = Vec::with_capacity(n);
    for pair in bytes[kc_start..kc_end].chunks_exact(2) {
        let c = u16::from_le_bytes([pair[0], pair[1]]);
        if usize::from(c) > stride {
            return Err(malformed("k-mer code"));
        }
        codes.push(c);
    }

    let (ssa_start, ssa_end) = sections[2];
    let word_count = n.div_ceil(64);
    if ssa_end - ssa_start < 8 {
        return Err(malformed("sampled-sa length"));
    }
    let sample_count = u64_at(bytes, ssa_start);
    let sample_count = usize::try_from(sample_count).map_err(|_| malformed("sample count"))?;
    if ssa_end - ssa_start != 8 + 8 * word_count + 4 * sample_count {
        return Err(malformed("sampled-sa length"));
    }
    if sample_count == 0 {
        // Text position 0 is always 0 (mod rate), so a real index
        // always marks at least one row; zero marks would make locate's
        // LF walk endless.
        return Err(malformed("sample count"));
    }
    let words_bytes = &bytes[ssa_start + 8..ssa_start + 8 + 8 * word_count];
    let mut words = Vec::with_capacity(word_count);
    for chunk in words_bytes.chunks_exact(8) {
        words.push(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
    if n % 64 != 0 {
        if let Some(&last) = words.last() {
            if last >> (n % 64) != 0 {
                return Err(malformed("mark padding bits"));
            }
        }
    }
    let marks = RankBits::from_words(words, n);
    if marks.rank(n) != sample_count {
        return Err(malformed("sample count"));
    }
    let mut samples = Vec::with_capacity(sample_count);
    for chunk in bytes[ssa_start + 8 + 8 * word_count..ssa_end].chunks_exact(4) {
        let v = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        if v as usize >= n || v as usize % sa_rate != 0 {
            return Err(malformed("suffix-array sample"));
        }
        samples.push(v);
    }
    let ssa = SampledSuffixArray::from_parts(marks, samples, sa_rate);

    let (ks_start, ks_end) = sections[3];
    if ks_end - ks_start != 4 * stride {
        return Err(malformed("k-starts length"));
    }
    let mut kstarts = Vec::with_capacity(stride);
    let mut previous = 0u32;
    for chunk in bytes[ks_start..ks_end].chunks_exact(4) {
        let v = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        if v < previous || v as usize > n {
            return Err(malformed("k-starts entry"));
        }
        kstarts.push(v);
        previous = v;
    }

    // Replay the cold-build constructors over the verified inputs. The
    // recipe sanity checks above make the remaining constructor errors
    // (delta overflow on crafted code streams) typed, not panics.
    let occ = if delta_width.is_absolute() {
        OccTable::new(&bwt, occ_rate)
    } else {
        OccTable::two_level(&bwt, occ_rate, superblock_rate).map_err(|_| malformed("occ layout"))?
    };
    // The BWT is a permutation of the text, so symbol frequencies — all
    // the C-array depends on — are identical.
    let counts = count_table(&bwt);
    let base = FmIndex::from_parts(counts, occ, ssa);
    let kocc = KmerOccTable::new(codes, stride, kocc_rate, delta_width, superblock_rate)
        .map_err(|_| malformed("k-occ layout"))?;
    // Bucket bounds: `kstart(r) + rank(r, n) <= n` keeps every interval
    // a k-step refinement can produce inside `0..n`, so no later rank
    // call can assert out of range even on a crafted-but-checksummed
    // file.
    for (r, &start) in kstarts.iter().enumerate() {
        if start as usize + kocc.rank(r as u16, n) as usize > n {
            return Err(malformed("k-starts bucket"));
        }
    }
    Ok(KStepFmIndex::from_parts(
        k,
        base,
        kstarts,
        kocc,
        bidirectional,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::{Genome, GenomeProfile};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn toy_index(k: usize) -> KStepFmIndex {
        let mut profile = GenomeProfile::toy();
        profile.len = 3000;
        let genome = Genome::synthesize(&profile, 7);
        KStepFmIndex::from_text(&genome.text_with_sentinel(), k)
    }

    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "exma_snapshot_{}_{}_{tag}.exma",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        path
    }

    #[test]
    fn round_trip_reproduces_the_index_exactly() {
        for k in [1, 2, 4] {
            let index = toy_index(k);
            let bytes = encode_snapshot(&index);
            let loaded = decode_snapshot(&bytes, None).expect("valid snapshot");
            assert_eq!(loaded, index, "k={k}");
            // Allocation-exact: the warm server's heap attribution must
            // equal the cold one's, capacity for capacity.
            assert_eq!(loaded.heap_breakdown(), index.heap_breakdown());
            assert_eq!(loaded.build_config(), index.build_config());
        }
    }

    #[test]
    fn round_trip_through_the_filesystem() {
        let index = toy_index(4);
        let path = temp_path("fs_round_trip");
        write_snapshot(&index, &path).expect("write");
        // The tmp staging file never survives a successful write.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists());
        let loaded = load_snapshot(&path).expect("load");
        assert_eq!(loaded, index);
        // Rewriting over an existing snapshot is the normal cold-start
        // refresh path.
        write_snapshot(&index, &path).expect("rewrite");
        assert_eq!(load_snapshot(&path).expect("reload"), index);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = load_snapshot(Path::new("/nonexistent/dir/snap.exma")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io { .. }), "{err}");
    }

    #[test]
    fn bad_magic_and_stale_version_are_typed() {
        let bytes = encode_snapshot(&toy_index(2));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            decode_snapshot(&bad, None).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut stale = bytes.clone();
        stale[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_snapshot(&stale, None).unwrap_err(),
            SnapshotError::VersionMismatch {
                found: 99,
                supported: SNAPSHOT_FORMAT_VERSION
            }
        );
    }

    #[test]
    fn every_truncation_point_is_typed_and_total() {
        let bytes = encode_snapshot(&toy_index(2));
        for keep in [
            0,
            4,
            8,
            11,
            20,
            HEADER_LEN,
            HEADER_LEN + 7,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            let err = decode_snapshot(&bytes[..keep], None).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "keep {keep}: {err}"
            );
        }
    }

    #[test]
    fn payload_corruption_names_the_section() {
        let index = toy_index(2);
        let bytes = encode_snapshot(&index);
        // One byte inside the first section's payload.
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN + SECTION_HEADER_LEN] ^= 0x40;
        assert_eq!(
            decode_snapshot(&corrupt, None).unwrap_err(),
            SnapshotError::ChecksumMismatch { section: "bwt" }
        );
        // A header flip that stays structurally sane (the occ sample
        // rate) is caught by the whole-file checksum — it must never
        // silently rebuild a differently-shaped index.
        let mut resampled = bytes.clone();
        resampled[16] ^= 0x01;
        assert_eq!(
            decode_snapshot(&resampled, None).unwrap_err(),
            SnapshotError::ChecksumMismatch { section: "file" }
        );
        // Trailing garbage after the file checksum.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            decode_snapshot(&padded, None).unwrap_err(),
            SnapshotError::Malformed {
                field: "file length"
            }
        );
    }

    #[test]
    fn layout_mismatch_is_checked_on_the_header() {
        let index = toy_index(4);
        let bytes = encode_snapshot(&index);
        let mut expected = index.build_config();
        expected.k = 2;
        expected.k_occ_sample_rate = 128;
        let err = decode_snapshot(&bytes, Some(&expected)).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::LayoutMismatch {
                expected,
                found: index.build_config()
            }
        );
        // The matching recipe loads.
        assert!(decode_snapshot(&bytes, Some(&index.build_config())).is_ok());
    }

    fn toy_bidir_index(k: usize) -> KStepFmIndex {
        let mut profile = GenomeProfile::toy();
        profile.len = 1500;
        let genome = Genome::synthesize(&profile, 7);
        let doubled = crate::bidir::doubled_text(&genome.text_with_sentinel());
        let config = KStepBuildConfig {
            bidirectional: true,
            ..KStepBuildConfig::for_k(k)
        };
        KStepFmIndex::from_text_with_config(&doubled, config).unwrap()
    }

    #[test]
    fn forward_only_snapshots_stay_version_one() {
        // A forward-only index must encode byte-identically to what
        // earlier builds wrote: version 1, no flags word.
        let bytes = encode_snapshot(&toy_index(2));
        assert_eq!(u32_at(&bytes, 8), 1);
        // The first section tag sits right at the v1 header boundary.
        assert_eq!(u32_at(&bytes, HEADER_LEN), 1);
    }

    #[test]
    fn bidir_snapshots_round_trip_at_version_two() {
        for k in [1, 2, 4] {
            let index = toy_bidir_index(k);
            let bytes = encode_snapshot(&index);
            assert_eq!(u32_at(&bytes, 8), SNAPSHOT_FORMAT_VERSION, "k={k}");
            assert_eq!(u32_at(&bytes, HEADER_LEN), FLAG_BIDIRECTIONAL, "k={k}");
            let loaded = decode_snapshot(&bytes, None).expect("valid snapshot");
            assert_eq!(loaded, index, "k={k}");
            assert!(loaded.is_bidirectional());
            assert_eq!(loaded.heap_breakdown(), index.heap_breakdown());
            assert_eq!(loaded.build_config(), index.build_config());
        }
    }

    #[test]
    fn bidir_and_forward_recipes_gate_each_other_as_layout_mismatch() {
        let index = toy_bidir_index(2);
        let bytes = encode_snapshot(&index);
        let mut forward = index.build_config();
        forward.bidirectional = false;
        let err = decode_snapshot(&bytes, Some(&forward)).unwrap_err();
        assert!(matches!(err, SnapshotError::LayoutMismatch { .. }), "{err}");
        let rendered = format!("{err}");
        assert!(rendered.contains("_bidir"), "{rendered}");
        assert!(decode_snapshot(&bytes, Some(&index.build_config())).is_ok());
    }

    #[test]
    fn unknown_recipe_flags_are_malformed() {
        let mut bytes = encode_snapshot(&toy_bidir_index(2));
        bytes[48..52].copy_from_slice(&0b110u32.to_le_bytes());
        assert_eq!(
            decode_snapshot(&bytes, None).unwrap_err(),
            SnapshotError::Malformed {
                field: "recipe flags"
            }
        );
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
