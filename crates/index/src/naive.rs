//! Brute-force exact matching, the oracle every index answer is checked
//! against.
//!
//! An O(nm) scan is hopeless at reference scale but trivially correct,
//! which makes it the right ground truth for property tests — the same way
//! the paper validates EXMA output against unaccelerated FM-index queries.

use exma_genome::{Base, PackedSeq};

/// All starting positions (sorted ascending) where `pattern` occurs in
/// `seq`. The empty pattern occurs at every position `0..=seq.len()`.
pub fn occurrences(seq: &PackedSeq, pattern: &[Base]) -> Vec<u32> {
    if pattern.len() > seq.len() {
        return Vec::new();
    }
    (0..=seq.len() - pattern.len())
        .filter(|&start| {
            pattern
                .iter()
                .enumerate()
                .all(|(k, &b)| seq.get(start + k) == b)
        })
        .map(|start| start as u32)
        .collect()
}

/// Number of occurrences of `pattern` in `seq`.
pub fn count(seq: &PackedSeq, pattern: &[Base]) -> usize {
    occurrences(seq, pattern).len()
}

/// All strand-agnostic occurrences of `pattern` in `seq`, as
/// [`crate::bidir`] encoded strand-hits sorted ascending: forward
/// occurrences tagged [`crate::bidir::Strand::Forward`], plus — for
/// non-palindromic patterns — every occurrence of `revcomp(pattern)`
/// tagged [`crate::bidir::Strand::Reverse`] at the forward coordinate of
/// the matched window. Palindromic patterns (the empty pattern included)
/// report forward hits only: their reverse hits mirror the forward set
/// site for site, and the dedup rule keeps the forward tag.
pub fn occurrences_both(seq: &PackedSeq, pattern: &[Base]) -> Vec<u32> {
    use crate::bidir::{encode_hit, is_palindromic, revcomp, Strand};

    let mut hits: Vec<u32> = occurrences(seq, pattern)
        .into_iter()
        .map(|p| encode_hit(p, Strand::Forward))
        .collect();
    if !is_palindromic(pattern) {
        hits.extend(
            occurrences(seq, &revcomp(pattern))
                .into_iter()
                .map(|p| encode_hit(p, Strand::Reverse)),
        );
    }
    hits.sort_unstable();
    hits
}

/// Number of strand-agnostic occurrences of `pattern` in `seq`.
pub fn count_both(seq: &PackedSeq, pattern: &[Base]) -> usize {
    occurrences_both(seq, pattern).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::alphabet::parse_bases;

    #[test]
    fn finds_overlapping_occurrences() {
        let seq: PackedSeq = "AAAA".parse().unwrap();
        assert_eq!(
            occurrences(&seq, &parse_bases("AA").unwrap()),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn absent_pattern_yields_nothing() {
        let seq: PackedSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(count(&seq, &parse_bases("GGG").unwrap()), 0);
    }

    #[test]
    fn pattern_longer_than_text_yields_nothing() {
        let seq: PackedSeq = "ACG".parse().unwrap();
        assert_eq!(count(&seq, &parse_bases("ACGT").unwrap()), 0);
    }

    #[test]
    fn whole_text_matches_once() {
        let seq: PackedSeq = "GATTACA".parse().unwrap();
        assert_eq!(occurrences(&seq, &parse_bases("GATTACA").unwrap()), vec![0]);
    }

    #[test]
    fn both_strand_oracle_tags_each_strand() {
        use crate::bidir::{decode_hit, Strand};
        // "AC" occurs forward at 0; its revcomp "GT" occurs at 2 — one hit
        // per strand, forward (even encoding) sorting first at equal
        // positions.
        let seq: PackedSeq = "ACGTAC".parse().unwrap();
        let hits = occurrences_both(&seq, &parse_bases("AC").unwrap());
        let decoded: Vec<(u32, Strand)> = hits.iter().map(|&h| decode_hit(h)).collect();
        assert_eq!(
            decoded,
            vec![
                (0, Strand::Forward),
                (2, Strand::Reverse),
                (4, Strand::Forward)
            ]
        );
    }

    #[test]
    fn palindromic_patterns_report_forward_only() {
        use crate::bidir::{decode_hit, Strand};
        let seq: PackedSeq = "ACGTACGT".parse().unwrap();
        // "ACGT" is its own reverse complement.
        let hits = occurrences_both(&seq, &parse_bases("ACGT").unwrap());
        assert_eq!(
            hits.iter().map(|&h| decode_hit(h)).collect::<Vec<_>>(),
            vec![(0, Strand::Forward), (4, Strand::Forward)]
        );
        // The empty pattern is palindromic: every position, forward only.
        let empty = occurrences_both(&seq, &[]);
        assert_eq!(empty.len(), seq.len() + 1);
        assert!(empty.iter().all(|&h| decode_hit(h).1 == Strand::Forward));
    }

    #[test]
    fn both_strand_counts_add_up() {
        let seq: PackedSeq = "ACGTAC".parse().unwrap();
        let p = parse_bases("AC").unwrap();
        let rc = crate::bidir::revcomp(&p);
        assert_eq!(count_both(&seq, &p), count(&seq, &p) + count(&seq, &rc));
    }
}
