//! Brute-force exact matching, the oracle every index answer is checked
//! against.
//!
//! An O(nm) scan is hopeless at reference scale but trivially correct,
//! which makes it the right ground truth for property tests — the same way
//! the paper validates EXMA output against unaccelerated FM-index queries.

use exma_genome::{Base, PackedSeq};

/// All starting positions (sorted ascending) where `pattern` occurs in
/// `seq`. The empty pattern occurs at every position `0..=seq.len()`.
pub fn occurrences(seq: &PackedSeq, pattern: &[Base]) -> Vec<u32> {
    if pattern.len() > seq.len() {
        return Vec::new();
    }
    (0..=seq.len() - pattern.len())
        .filter(|&start| {
            pattern
                .iter()
                .enumerate()
                .all(|(k, &b)| seq.get(start + k) == b)
        })
        .map(|start| start as u32)
        .collect()
}

/// Number of occurrences of `pattern` in `seq`.
pub fn count(seq: &PackedSeq, pattern: &[Base]) -> usize {
    occurrences(seq, pattern).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exma_genome::alphabet::parse_bases;

    #[test]
    fn finds_overlapping_occurrences() {
        let seq: PackedSeq = "AAAA".parse().unwrap();
        assert_eq!(
            occurrences(&seq, &parse_bases("AA").unwrap()),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn absent_pattern_yields_nothing() {
        let seq: PackedSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(count(&seq, &parse_bases("GGG").unwrap()), 0);
    }

    #[test]
    fn pattern_longer_than_text_yields_nothing() {
        let seq: PackedSeq = "ACG".parse().unwrap();
        assert_eq!(count(&seq, &parse_bases("ACGT").unwrap()), 0);
    }

    #[test]
    fn whole_text_matches_once() {
        let seq: PackedSeq = "GATTACA".parse().unwrap();
        assert_eq!(occurrences(&seq, &parse_bases("GATTACA").unwrap()), vec![0]);
    }
}
