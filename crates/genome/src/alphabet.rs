//! The DNA alphabet and its sentinel-extended variant.
//!
//! EXMA (like every FM-Index system) works over the four-letter DNA alphabet
//! `{A, C, G, T}` extended with a sentinel `$` that terminates the reference
//! and is lexicographically smaller than every base. Throughout the
//! workspace, plain references and reads are sequences of [`Base`]; texts fed
//! to suffix-array/BWT construction are sequences of [`Symbol`].

use std::fmt;

/// Integer code of the sentinel `$` in the 5-symbol alphabet.
pub const SENTINEL_CODE: u8 = 0;

/// The full symbol alphabet in lexicographic order: `$ < A < C < G < T`.
pub const SYMBOL_ALPHABET: [Symbol; 5] = [
    Symbol::Sentinel,
    Symbol::Base(Base::A),
    Symbol::Base(Base::C),
    Symbol::Base(Base::G),
    Symbol::Base(Base::T),
];

/// A single DNA nucleotide.
///
/// Bases order `A < C < G < T`, matching both ASCII order and the
/// lexicographic conventions of the paper (Fig. 3). The discriminants are the
/// 2-bit packed codes used by [`crate::seq::PackedSeq`] and
/// [`crate::kmer::Kmer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code 0).
    A = 0,
    /// Cytosine (code 1).
    C = 1,
    /// Guanine (code 2).
    G = 2,
    /// Thymine (code 3).
    T = 3,
}

impl Base {
    /// All four bases in lexicographic order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Builds a base from its 2-bit code.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            _ => panic!("invalid 2-bit base code {code}"),
        }
    }

    /// The 2-bit packed code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses an ASCII nucleotide (case-insensitive). Returns `None` for
    /// non-ACGT characters (including IUPAC ambiguity codes).
    #[inline]
    pub fn from_ascii(ch: u8) -> Option<Base> {
        match ch {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// The ASCII letter for this base.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson-Crick complement (`A<->T`, `C<->G`).
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }

    /// `true` for G or C; used by the GC-bias knob of the genome generator.
    #[inline]
    pub fn is_gc(self) -> bool {
        matches!(self, Base::G | Base::C)
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

impl From<Base> for char {
    fn from(b: Base) -> char {
        b.to_ascii() as char
    }
}

/// A symbol of the sentinel-extended alphabet `{$, A, C, G, T}`.
///
/// Ordering places the sentinel first: `$ < A < C < G < T` (the paper's
/// convention, Fig. 3a). [`Symbol::code`] maps to `0..=4` accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symbol {
    /// The terminator `$`, lexicographically smallest.
    Sentinel,
    /// A regular nucleotide.
    Base(Base),
}

impl Symbol {
    /// Builds a symbol from its 3-bit code (`0 => $`, `1..=4 => A..T`).
    ///
    /// # Panics
    ///
    /// Panics if `code > 4`.
    #[inline]
    pub fn from_code(code: u8) -> Symbol {
        match code {
            0 => Symbol::Sentinel,
            c @ 1..=4 => Symbol::Base(Base::from_code(c - 1)),
            _ => panic!("invalid symbol code {code}"),
        }
    }

    /// The code in `0..=4` (`$` is 0, bases are `base.code() + 1`).
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            Symbol::Sentinel => SENTINEL_CODE,
            Symbol::Base(b) => b.code() + 1,
        }
    }

    /// Returns the inner base, or `None` for the sentinel.
    #[inline]
    pub fn base(self) -> Option<Base> {
        match self {
            Symbol::Sentinel => None,
            Symbol::Base(b) => Some(b),
        }
    }

    /// `true` iff this symbol is the sentinel.
    #[inline]
    pub fn is_sentinel(self) -> bool {
        matches!(self, Symbol::Sentinel)
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.code().cmp(&other.code())
    }
}

impl From<Base> for Symbol {
    fn from(b: Base) -> Symbol {
        Symbol::Base(b)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::Sentinel => write!(f, "$"),
            Symbol::Base(b) => write!(f, "{b}"),
        }
    }
}

/// Parses an ASCII string of `ACGT` letters into bases.
///
/// # Errors
///
/// Returns the byte offset of the first non-ACGT character.
pub fn parse_bases(s: &str) -> Result<Vec<Base>, usize> {
    s.bytes()
        .enumerate()
        .map(|(i, ch)| Base::from_ascii(ch).ok_or(i))
        .collect()
}

/// Renders a base slice as an ASCII string.
pub fn bases_to_string(bases: &[Base]) -> String {
    bases.iter().map(|&b| b.to_ascii() as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_codes_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
    }

    #[test]
    fn base_ordering_is_lexicographic() {
        assert!(Base::A < Base::C && Base::C < Base::G && Base::G < Base::T);
    }

    #[test]
    fn symbol_codes_round_trip() {
        for code in 0..=4u8 {
            assert_eq!(Symbol::from_code(code).code(), code);
        }
    }

    #[test]
    fn sentinel_is_smallest() {
        for b in Base::ALL {
            assert!(Symbol::Sentinel < Symbol::Base(b));
        }
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn gc_classification() {
        assert!(Base::G.is_gc() && Base::C.is_gc());
        assert!(!Base::A.is_gc() && !Base::T.is_gc());
    }

    #[test]
    fn parse_rejects_ambiguity_codes() {
        assert_eq!(parse_bases("ACGT").unwrap().len(), 4);
        assert_eq!(parse_bases("ACNGT"), Err(2));
    }

    #[test]
    fn display_round_trip() {
        let bases = parse_bases("GATTACA").unwrap();
        assert_eq!(bases_to_string(&bases), "GATTACA");
    }

    #[test]
    #[should_panic(expected = "invalid 2-bit base code")]
    fn from_code_rejects_out_of_range() {
        let _ = Base::from_code(4);
    }
}
