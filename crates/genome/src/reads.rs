//! Read simulation with the error profiles used in the paper.
//!
//! EXMA's workloads are seeding queries from short reads (DWGSIM-simulated
//! Illumina) and long reads (PBSIM-simulated PacBio CLR and Oxford
//! Nanopore). This module re-implements both simulators against our
//! synthetic genomes with the published per-technology error rates, and
//! records each read's true origin so mapping results can be verified
//! against ground truth.

use crate::alphabet::Base;
use crate::genome::Genome;
use crate::rng::SeededRng;
use crate::seq::PackedSeq;

/// Per-base error rates of a sequencing technology.
///
/// Rates are independent per-base probabilities; a read simulator walks the
/// template and at each base may delete it, insert a random base before it,
/// or substitute it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProfile {
    /// Probability a template base is replaced by a different base.
    pub substitution: f64,
    /// Probability a random base is inserted before a template base.
    pub insertion: f64,
    /// Probability a template base is dropped.
    pub deletion: f64,
}

impl ErrorProfile {
    /// No errors: reads are exact substrings (or reverse complements) of
    /// the reference. Exact-match seeding workloads use this profile.
    pub fn error_free() -> ErrorProfile {
        ErrorProfile {
            substitution: 0.0,
            insertion: 0.0,
            deletion: 0.0,
        }
    }

    /// Illumina short reads: ~0.1% substitutions, indels an order of
    /// magnitude rarer (the DWGSim defaults used by the paper).
    pub fn illumina() -> ErrorProfile {
        ErrorProfile {
            substitution: 0.001,
            insertion: 0.0001,
            deletion: 0.0001,
        }
    }

    /// PacBio CLR long reads: ~15% total error, dominated by insertions
    /// (the PBSIM CLR model).
    pub fn pacbio() -> ErrorProfile {
        ErrorProfile {
            substitution: 0.014,
            insertion: 0.110,
            deletion: 0.040,
        }
    }

    /// Oxford Nanopore long reads: ~13% total error, deletion-leaning.
    pub fn ont() -> ErrorProfile {
        ErrorProfile {
            substitution: 0.030,
            insertion: 0.040,
            deletion: 0.060,
        }
    }

    /// Sum of the three per-base error rates.
    pub fn total(&self) -> f64 {
        self.substitution + self.insertion + self.deletion
    }
}

/// Ground truth for a simulated read: the reference window it was drawn
/// from and the strand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOrigin {
    /// Start of the template window in the reference (0-based).
    pub start: usize,
    /// Length of the template window (before sequencing errors).
    pub template_len: usize,
    /// `true` if the read is the reverse complement of the window.
    pub reverse: bool,
}

/// A simulated read: error-bearing bases plus ground-truth origin.
#[derive(Debug, Clone, PartialEq)]
pub struct Read {
    /// Index of the read within its simulation batch.
    pub id: u64,
    /// The (possibly error-mutated) read sequence.
    pub bases: PackedSeq,
    /// Where the template window came from.
    pub origin: ReadOrigin,
}

impl Read {
    /// Read length in bases (after errors; may differ from the template).
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// `true` iff the read has no bases.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }
}

impl ReadOrigin {
    /// The error-free template this origin denotes: the reference window,
    /// reverse-complemented for reverse-strand origins.
    pub fn template(&self, genome: &Genome) -> Vec<Base> {
        if self.reverse {
            genome.revcomp_window(self.start, self.template_len)
        } else {
            genome.seq().slice(self.start, self.template_len)
        }
    }
}

/// Reads `origin`'s template out of the genome and applies per-base errors.
fn sequence_template(
    genome: &Genome,
    origin: ReadOrigin,
    profile: &ErrorProfile,
    rng: &mut SeededRng,
) -> PackedSeq {
    let template = origin.template(genome);
    let mut out = PackedSeq::with_capacity(template.len());
    for &b in &template {
        // One roll per template base selects among the disjoint error bands
        // [0, del) | [del, del+ins) | [del+ins, del+ins+sub) | rest = exact.
        let mut roll = rng.f64();
        if roll < profile.deletion {
            continue;
        }
        roll -= profile.deletion;
        if roll < profile.insertion {
            out.push(rng.base());
            out.push(b);
            continue;
        }
        roll -= profile.insertion;
        if roll < profile.substitution {
            out.push(rng.base_other_than(b));
        } else {
            out.push(b);
        }
    }
    out
}

/// Uniformly samples a template window of `len` bases and a strand.
fn sample_origin(genome: &Genome, len: usize, rng: &mut SeededRng) -> ReadOrigin {
    ReadOrigin {
        start: rng.range(0, genome.len() - len + 1),
        template_len: len,
        reverse: rng.chance(0.5),
    }
}

/// Fixed-length short-read simulator (Illumina-style).
#[derive(Debug, Clone)]
pub struct ShortReadSimulator {
    read_len: usize,
    profile: ErrorProfile,
}

impl ShortReadSimulator {
    /// A simulator producing reads of exactly `read_len` template bases.
    pub fn new(read_len: usize, profile: ErrorProfile) -> ShortReadSimulator {
        assert!(read_len > 0, "read length must be positive");
        ShortReadSimulator { read_len, profile }
    }

    /// Template read length.
    pub fn read_len(&self) -> usize {
        self.read_len
    }

    /// The error profile applied to each read.
    pub fn profile(&self) -> &ErrorProfile {
        &self.profile
    }

    /// Simulates `count` reads from uniformly random positions and strands.
    ///
    /// # Panics
    ///
    /// Panics if the genome is shorter than the read length.
    pub fn simulate(&self, genome: &Genome, count: usize, seed: u64) -> Vec<Read> {
        assert!(
            genome.len() >= self.read_len,
            "genome ({} bp) shorter than read length ({})",
            genome.len(),
            self.read_len
        );
        let mut rng = SeededRng::new(seed);
        (0..count as u64)
            .map(|id| {
                let mut read_rng = rng.fork();
                let origin = sample_origin(genome, self.read_len, &mut read_rng);
                let bases = sequence_template(genome, origin, &self.profile, &mut read_rng);
                Read { id, bases, origin }
            })
            .collect()
    }
}

/// Variable-length long-read simulator (PacBio/ONT-style).
///
/// Template lengths are `min_len` plus an exponential tail with the given
/// mean, truncated to the genome length — the standard PBSIM length model.
#[derive(Debug, Clone)]
pub struct LongReadSimulator {
    mean_len: usize,
    min_len: usize,
    profile: ErrorProfile,
}

impl LongReadSimulator {
    /// A simulator with mean template length `mean_len` (must be at least
    /// `min_len`, the shortest read emitted).
    pub fn new(mean_len: usize, min_len: usize, profile: ErrorProfile) -> LongReadSimulator {
        assert!(min_len > 0, "minimum read length must be positive");
        assert!(mean_len >= min_len, "mean length below minimum");
        LongReadSimulator {
            mean_len,
            min_len,
            profile,
        }
    }

    /// Mean template length.
    pub fn mean_len(&self) -> usize {
        self.mean_len
    }

    /// Shortest template length emitted.
    pub fn min_len(&self) -> usize {
        self.min_len
    }

    /// The error profile applied to each read.
    pub fn profile(&self) -> &ErrorProfile {
        &self.profile
    }

    /// Draws a template length: `min_len + Exp(mean_len - min_len)`.
    fn sample_len(&self, rng: &mut SeededRng, max: usize) -> usize {
        let tail = (self.mean_len - self.min_len) as f64;
        let draw = if tail > 0.0 {
            // Inverse-CDF sample of an exponential; f64() < 1 keeps ln finite.
            (-tail * (1.0 - rng.f64()).ln()).round() as usize
        } else {
            0
        };
        (self.min_len + draw).min(max)
    }

    /// Simulates `count` reads from uniformly random positions and strands.
    ///
    /// # Panics
    ///
    /// Panics if the genome is shorter than the minimum read length.
    pub fn simulate(&self, genome: &Genome, count: usize, seed: u64) -> Vec<Read> {
        assert!(
            genome.len() >= self.min_len,
            "genome ({} bp) shorter than minimum read length ({})",
            genome.len(),
            self.min_len
        );
        let mut rng = SeededRng::new(seed);
        (0..count as u64)
            .map(|id| {
                let mut read_rng = rng.fork();
                let len = self.sample_len(&mut read_rng, genome.len());
                let origin = sample_origin(genome, len, &mut read_rng);
                let bases = sequence_template(genome, origin, &self.profile, &mut read_rng);
                Read { id, bases, origin }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GenomeProfile;

    fn toy_genome() -> Genome {
        Genome::synthesize(&GenomeProfile::toy(), 42)
    }

    #[test]
    fn error_free_short_reads_match_reference() {
        let genome = toy_genome();
        let sim = ShortReadSimulator::new(100, ErrorProfile::error_free());
        for read in sim.simulate(&genome, 50, 7) {
            assert_eq!(read.len(), 100);
            let expect = read.origin.template(&genome);
            assert_eq!(read.bases.to_vec(), expect, "read {}", read.id);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let genome = toy_genome();
        let sim = ShortReadSimulator::new(75, ErrorProfile::illumina());
        assert_eq!(sim.simulate(&genome, 20, 9), sim.simulate(&genome, 20, 9));
    }

    #[test]
    fn origins_stay_in_bounds() {
        let genome = toy_genome();
        let sim = LongReadSimulator::new(2_000, 500, ErrorProfile::pacbio());
        for read in sim.simulate(&genome, 50, 3) {
            assert!(read.origin.start + read.origin.template_len <= genome.len());
            assert!(read.origin.template_len >= 500);
        }
    }

    #[test]
    fn illumina_error_rate_is_low() {
        // With 0.12% total error, 100 reads x 100 bp ≈ 12 errored bases;
        // mismatches against the template must stay well under 1%.
        let genome = toy_genome();
        let sim = ShortReadSimulator::new(100, ErrorProfile::illumina());
        let reads = sim.simulate(&genome, 100, 11);
        let mut mismatches = 0usize;
        let mut total = 0usize;
        for read in &reads {
            let template = read.origin.template(&genome);
            // Illumina indels are rare enough that most reads align 1:1.
            if read.len() == template.len() {
                total += template.len();
                mismatches += template
                    .iter()
                    .zip(read.bases.iter())
                    .filter(|(&t, r)| t != *r)
                    .count();
            }
        }
        assert!(total > 0);
        let rate = mismatches as f64 / total as f64;
        assert!(rate < 0.01, "observed substitution rate {rate}");
    }

    #[test]
    fn pacbio_reads_carry_heavy_errors() {
        // 15%+ per-base error must leave visible length drift (insertions
        // dominate, so reads run longer than their templates on average).
        let genome = toy_genome();
        let sim = LongReadSimulator::new(1_000, 200, ErrorProfile::pacbio());
        let reads = sim.simulate(&genome, 100, 13);
        let grew = reads
            .iter()
            .filter(|r| r.len() > r.origin.template_len)
            .count();
        assert!(
            grew > 60,
            "only {grew}/100 reads grew under the CLR profile"
        );
    }

    #[test]
    fn long_read_lengths_vary() {
        let genome = toy_genome();
        let sim = LongReadSimulator::new(1_500, 300, ErrorProfile::error_free());
        let reads = sim.simulate(&genome, 100, 17);
        let lens: std::collections::HashSet<usize> =
            reads.iter().map(|r| r.origin.template_len).collect();
        assert!(
            lens.len() > 10,
            "length model collapsed to {} values",
            lens.len()
        );
    }

    #[test]
    fn both_strands_are_sampled() {
        let genome = toy_genome();
        let sim = ShortReadSimulator::new(50, ErrorProfile::error_free());
        let reads = sim.simulate(&genome, 100, 19);
        let reverse = reads.iter().filter(|r| r.origin.reverse).count();
        assert!((20..=80).contains(&reverse), "strand balance {reverse}/100");
    }

    #[test]
    fn published_profiles_have_expected_magnitudes() {
        assert!(ErrorProfile::illumina().total() < 0.01);
        assert!((0.10..=0.20).contains(&ErrorProfile::pacbio().total()));
        assert!((0.10..=0.20).contains(&ErrorProfile::ont().total()));
        assert_eq!(ErrorProfile::error_free().total(), 0.0);
    }
}
