//! Synthetic reference genomes.
//!
//! The EXMA paper evaluates on human (3 Gbp), picea (20 Gbp) and pinus
//! (31 Gbp) references. Those datasets are not redistributable, so this
//! module synthesizes references with the two properties that actually
//! drive FM-index behaviour: base composition (GC bias) and repeat
//! structure (repeats make suffix-array intervals wide and `locate` heavy).
//! Profiles reproduce the paper's genomes at matched *relative* sizes —
//! `human_rel()` is 3 Mbp to the real 3 Gbp, a fixed 1:1000 scale — and all
//! synthesis is reproducible from a single `u64` seed.

use crate::alphabet::{parse_bases, Base, Symbol};
use crate::rng::SeededRng;
use crate::seq::PackedSeq;

/// Scale factor between a `*_rel()` profile and the genome it models.
pub const REL_SCALE: usize = 1000;

/// A recipe for synthesizing a reference genome.
///
/// `repeat_fraction` of the genome (approximately) is covered by diverged
/// copies of a small library of repeat units — the synthetic analogue of
/// transposable-element families like Alu/LINE-1 that dominate real
/// references and stress FM-index `locate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenomeProfile {
    /// Human-readable profile name, carried into [`Genome`].
    pub name: String,
    /// Target length in bases (excluding the sentinel).
    pub len: usize,
    /// Probability that a background base is G or C.
    pub gc_content: f64,
    /// Approximate fraction of the genome covered by repeat copies.
    pub repeat_fraction: f64,
    /// Length of each repeat unit in the library.
    pub repeat_unit_len: usize,
    /// Number of distinct repeat units ("families") in the library.
    pub repeat_families: usize,
    /// Per-base substitution probability applied to each repeat copy, so
    /// copies diverge from their family consensus as real repeats do.
    pub repeat_divergence: f64,
}

impl GenomeProfile {
    /// A tiny profile (10 kbp) for unit tests and doctests; builds in
    /// microseconds yet still has enough repeat structure to exercise
    /// multi-occurrence patterns.
    pub fn toy() -> GenomeProfile {
        GenomeProfile {
            name: "toy".to_string(),
            len: 10_000,
            gc_content: 0.41,
            repeat_fraction: 0.30,
            repeat_unit_len: 200,
            repeat_families: 4,
            repeat_divergence: 0.02,
        }
    }

    /// Human at 1:1000 relative scale — 3 Mbp, 41% GC, ~45% repetitive
    /// with Alu-sized (300 bp) units.
    pub fn human_rel() -> GenomeProfile {
        GenomeProfile {
            name: "human_rel".to_string(),
            len: 3_000_000,
            gc_content: 0.41,
            repeat_fraction: 0.45,
            repeat_unit_len: 300,
            repeat_families: 8,
            repeat_divergence: 0.10,
        }
    }

    /// Picea abies (Norway spruce) at 1:1000 relative scale — 20 Mbp,
    /// conifer genomes are ~38% GC and extremely repeat-rich.
    pub fn picea_rel() -> GenomeProfile {
        GenomeProfile {
            name: "picea_rel".to_string(),
            len: 20_000_000,
            gc_content: 0.38,
            repeat_fraction: 0.70,
            repeat_unit_len: 400,
            repeat_families: 12,
            repeat_divergence: 0.12,
        }
    }

    /// Pinus taeda (loblolly pine) at 1:1000 relative scale — 31 Mbp, the
    /// largest reference in the paper.
    pub fn pinus_rel() -> GenomeProfile {
        GenomeProfile {
            name: "pinus_rel".to_string(),
            len: 31_000_000,
            gc_content: 0.38,
            repeat_fraction: 0.75,
            repeat_unit_len: 400,
            repeat_families: 12,
            repeat_divergence: 0.12,
        }
    }
}

/// A synthesized reference genome: a 2-bit packed sequence plus the profile
/// and seed that produced it (so any genome can be regenerated exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct Genome {
    profile: GenomeProfile,
    seed: u64,
    seq: PackedSeq,
}

impl Genome {
    /// Synthesizes a genome from `profile` with the given seed.
    ///
    /// Synthesis alternates background stretches with diverged repeat
    /// copies: each segment is a repeat copy with probability
    /// `repeat_fraction`, so repeats cover approximately that fraction of
    /// the final sequence.
    ///
    /// ```
    /// use exma_genome::{Genome, GenomeProfile};
    ///
    /// let g = Genome::synthesize(&GenomeProfile::toy(), 42);
    /// assert_eq!(g.len(), GenomeProfile::toy().len);
    /// // Deterministic: same profile + seed => same sequence.
    /// assert_eq!(g, Genome::synthesize(&GenomeProfile::toy(), 42));
    /// ```
    pub fn synthesize(profile: &GenomeProfile, seed: u64) -> Genome {
        assert!(profile.len > 0, "profile length must be positive");
        assert!(
            profile.repeat_unit_len > 0,
            "repeat unit length must be positive"
        );
        assert!(
            profile.repeat_families > 0,
            "need at least one repeat family"
        );
        let mut rng = SeededRng::new(seed);

        // Build the repeat library from its own fork so the background
        // stream is independent of the library size.
        let mut lib_rng = rng.fork();
        let library: Vec<Vec<Base>> = (0..profile.repeat_families)
            .map(|_| {
                (0..profile.repeat_unit_len)
                    .map(|_| lib_rng.base_gc(profile.gc_content))
                    .collect()
            })
            .collect();

        let mut seq = PackedSeq::with_capacity(profile.len);
        while seq.len() < profile.len {
            let remaining = profile.len - seq.len();
            let segment = profile.repeat_unit_len.min(remaining);
            if rng.chance(profile.repeat_fraction) {
                // Emit a diverged copy of a random family.
                let unit = &library[rng.range(0, library.len())];
                for &consensus in unit.iter().take(segment) {
                    let base = if rng.chance(profile.repeat_divergence) {
                        rng.base_other_than(consensus)
                    } else {
                        consensus
                    };
                    seq.push(base);
                }
            } else {
                // Emit GC-biased background.
                for _ in 0..segment {
                    seq.push(rng.base_gc(profile.gc_content));
                }
            }
        }

        Genome {
            profile: profile.clone(),
            seed,
            seq,
        }
    }

    /// Wraps an explicit sequence (e.g. a parsed test string) in a genome.
    pub fn from_bases(name: &str, bases: &[Base]) -> Genome {
        Genome {
            profile: GenomeProfile {
                name: name.to_string(),
                len: bases.len(),
                gc_content: 0.0,
                repeat_fraction: 0.0,
                repeat_unit_len: 1,
                repeat_families: 1,
                repeat_divergence: 0.0,
            },
            seed: 0,
            seq: PackedSeq::from_bases(bases),
        }
    }

    /// The profile this genome was synthesized from.
    pub fn profile(&self) -> &GenomeProfile {
        &self.profile
    }

    /// The seed this genome was synthesized with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The packed reference sequence.
    pub fn seq(&self) -> &PackedSeq {
        &self.seq
    }

    /// Reference length in bases (excluding the sentinel).
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// `true` iff the reference is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Observed G+C fraction of the synthesized sequence.
    pub fn gc_fraction(&self) -> f64 {
        if self.seq.is_empty() {
            return 0.0;
        }
        let gc = self.seq.iter().filter(|b| b.is_gc()).count();
        gc as f64 / self.seq.len() as f64
    }

    /// The sentinel-terminated symbol text fed to suffix-array and BWT
    /// construction: every base as a [`Symbol`] plus a trailing `$`.
    pub fn text_with_sentinel(&self) -> Vec<Symbol> {
        text_from_bases(&self.seq.to_vec())
    }

    /// The reverse complement of the window `start..start + len` — what a
    /// reverse-strand read of that template reports. The one place the
    /// workspace derives a reverse complement of reference coordinates, so
    /// read simulation and both-strand oracles agree by construction.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the reference (same contract as
    /// [`PackedSeq::slice`]).
    pub fn revcomp_window(&self, start: usize, len: usize) -> Vec<Base> {
        let mut window = self.seq.slice(start, len);
        window.reverse();
        for base in &mut window {
            *base = base.complement();
        }
        window
    }
}

/// Converts a base slice into a sentinel-terminated symbol text.
pub fn text_from_bases(bases: &[Base]) -> Vec<Symbol> {
    let mut text: Vec<Symbol> = bases.iter().map(|&b| Symbol::Base(b)).collect();
    text.push(Symbol::Sentinel);
    text
}

/// Parses an ACGT string into a sentinel-terminated symbol text.
///
/// # Errors
///
/// Returns the byte offset of the first non-ACGT character.
///
/// ```
/// use exma_genome::genome::text_from_str;
///
/// let text = text_from_str("CATAGA").unwrap();
/// assert_eq!(text.len(), 7); // six bases + sentinel
/// assert!(text.last().unwrap().is_sentinel());
/// ```
pub fn text_from_str(s: &str) -> Result<Vec<Symbol>, usize> {
    Ok(text_from_bases(&parse_bases(s)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let p = GenomeProfile::toy();
        assert_eq!(Genome::synthesize(&p, 1), Genome::synthesize(&p, 1));
    }

    #[test]
    fn different_seeds_differ() {
        let p = GenomeProfile::toy();
        assert_ne!(Genome::synthesize(&p, 1), Genome::synthesize(&p, 2));
    }

    #[test]
    fn length_matches_profile() {
        for len in [1usize, 7, 199, 200, 201, 10_000] {
            let p = GenomeProfile {
                len,
                ..GenomeProfile::toy()
            };
            assert_eq!(Genome::synthesize(&p, 3).len(), len);
        }
    }

    #[test]
    fn gc_bias_is_respected() {
        let rich = GenomeProfile {
            gc_content: 0.70,
            repeat_fraction: 0.0,
            ..GenomeProfile::toy()
        };
        let poor = GenomeProfile {
            gc_content: 0.20,
            repeat_fraction: 0.0,
            ..GenomeProfile::toy()
        };
        let g_rich = Genome::synthesize(&rich, 5).gc_fraction();
        let g_poor = Genome::synthesize(&poor, 5).gc_fraction();
        assert!((g_rich - 0.70).abs() < 0.03, "observed GC {g_rich}");
        assert!((g_poor - 0.20).abs() < 0.03, "observed GC {g_poor}");
    }

    #[test]
    fn repeats_create_recurring_kmers() {
        // With 30% repeat coverage from 4 families of 200 bp units, many
        // 32-mers must occur more than once; a repeat-free random genome of
        // the same size has essentially none.
        use crate::kmer::kmers_of;
        use std::collections::HashMap;

        let count_dups = |g: &Genome| {
            let mut seen: HashMap<u64, u32> = HashMap::new();
            for km in kmers_of(g.seq(), 31) {
                *seen.entry(km.rank()).or_insert(0) += 1;
            }
            seen.values().filter(|&&c| c > 1).count()
        };

        let repetitive = Genome::synthesize(&GenomeProfile::toy(), 8);
        let plain = Genome::synthesize(
            &GenomeProfile {
                repeat_fraction: 0.0,
                ..GenomeProfile::toy()
            },
            8,
        );
        assert!(count_dups(&repetitive) > 20, "expected recurring 31-mers");
        assert_eq!(
            count_dups(&plain),
            0,
            "random genome should not repeat 31-mers"
        );
    }

    #[test]
    fn text_with_sentinel_terminates() {
        let g = Genome::synthesize(&GenomeProfile::toy(), 2);
        let text = g.text_with_sentinel();
        assert_eq!(text.len(), g.len() + 1);
        assert!(text.last().unwrap().is_sentinel());
        assert!(text[..text.len() - 1].iter().all(|s| !s.is_sentinel()));
    }

    #[test]
    fn text_from_str_rejects_bad_chars() {
        assert_eq!(text_from_str("ACGNT"), Err(3));
    }

    #[test]
    fn revcomp_window_matches_hand_derivation() {
        let g = Genome::from_bases("fixture", &crate::alphabet::parse_bases("GATTACA").unwrap());
        assert_eq!(
            crate::alphabet::bases_to_string(&g.revcomp_window(0, 7)),
            "TGTAATC"
        );
        assert_eq!(
            crate::alphabet::bases_to_string(&g.revcomp_window(1, 3)),
            "AAT"
        );
        assert!(g.revcomp_window(3, 0).is_empty());
    }

    #[test]
    fn double_revcomp_is_identity_on_random_windows() {
        // Property: revcomp(revcomp(w)) == w for random windows of a
        // synthesized genome.
        let g = Genome::synthesize(&GenomeProfile::toy(), 11);
        let mut rng = SeededRng::new(0xABCD);
        for _ in 0..200 {
            let len = rng.range(0, 64);
            let start = rng.range(0, g.len() - len + 1);
            let window = g.seq().slice(start, len);
            let rc = g.revcomp_window(start, len);
            let mut rc_rc = rc.clone();
            rc_rc.reverse();
            for base in &mut rc_rc {
                *base = base.complement();
            }
            assert_eq!(rc_rc, window, "start {start} len {len}");
        }
    }

    #[test]
    fn from_bases_round_trip() {
        let bases = crate::alphabet::parse_bases("GATTACA").unwrap();
        let g = Genome::from_bases("fixture", &bases);
        assert_eq!(g.len(), 7);
        assert_eq!(g.seq().to_vec(), bases);
        assert_eq!(g.text_with_sentinel(), text_from_str("GATTACA").unwrap());
    }
}
