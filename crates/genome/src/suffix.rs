//! Linear-time suffix-array construction (SA-IS).
//!
//! Every FM-Index structure in this workspace — the 1-step index, the k-step
//! index, LISA's IP-BWT, and the EXMA table itself — is derived from the
//! suffix array of the sentinel-terminated reference. References at the pinus
//! profile are ~32 Mbp, so an O(n log^2 n) comparison sort is not acceptable;
//! we implement the SA-IS induced-sorting algorithm (Nong, Zhang & Chan,
//! 2009), which is O(n) and the method used by production tools.
//!
//! Because the reference ends with a unique, lexicographically smallest
//! sentinel, sorting suffixes is equivalent to sorting the cyclic rotations
//! of the Burrows-Wheeler matrix in the paper's Fig. 3(a).

use crate::alphabet::Symbol;

const EMPTY: u32 = u32::MAX;

/// Builds the suffix array of `text`.
///
/// `text` must be a sentinel-terminated symbol string: the final symbol must
/// be `$` and `$` must not occur anywhere else. The returned vector `sa`
/// satisfies: `sa[i]` is the starting position of the i-th smallest suffix.
///
/// ```
/// use exma_genome::{suffix_array, Genome, GenomeProfile};
///
/// // G = CATAGA$ (the paper's Fig. 3 example)
/// let text = exma_genome::genome::text_from_str("CATAGA").unwrap();
/// assert_eq!(suffix_array(&text), vec![6, 5, 3, 1, 0, 4, 2]);
/// ```
///
/// # Panics
///
/// Panics if `text` is empty, does not end with the sentinel, or contains
/// the sentinel before the final position.
pub fn suffix_array(text: &[Symbol]) -> Vec<u32> {
    assert!(
        !text.is_empty(),
        "text must be sentinel-terminated, got empty"
    );
    assert!(
        text.last().unwrap().is_sentinel(),
        "text must end with the sentinel"
    );
    assert!(
        text[..text.len() - 1].iter().all(|s| !s.is_sentinel()),
        "sentinel must only appear at the final position"
    );
    assert!(
        text.len() < u32::MAX as usize,
        "text longer than u32 range is not supported"
    );
    let codes: Vec<u32> = text.iter().map(|s| s.code() as u32).collect();
    let mut sa = vec![EMPTY; codes.len()];
    sais(&codes, &mut sa, 5);
    sa
}

/// Core SA-IS recursion over an integer alphabet `0..sigma`.
///
/// `text` must end with a unique smallest symbol (0 by convention at the top
/// level; the recursion guarantees it internally).
fn sais(text: &[u32], sa: &mut [u32], sigma: usize) {
    let n = text.len();
    debug_assert_eq!(sa.len(), n);
    if n == 1 {
        sa[0] = 0;
        return;
    }
    if n == 2 {
        // The sentinel (last) is always the smaller suffix.
        sa[0] = 1;
        sa[1] = 0;
        return;
    }

    // --- classify suffixes: S-type (true) or L-type (false) ---
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // --- bucket boundaries per symbol ---
    let mut bucket_sizes = vec![0u32; sigma];
    for &c in text {
        bucket_sizes[c as usize] += 1;
    }
    let bucket_heads = |sizes: &[u32]| -> Vec<u32> {
        let mut heads = vec![0u32; sigma];
        let mut sum = 0;
        for (h, &s) in heads.iter_mut().zip(sizes) {
            *h = sum;
            sum += s;
        }
        heads
    };
    let bucket_tails = |sizes: &[u32]| -> Vec<u32> {
        let mut tails = vec![0u32; sigma];
        let mut sum = 0;
        for (t, &s) in tails.iter_mut().zip(sizes) {
            sum += s;
            *t = sum;
        }
        tails
    };

    // Induced sort: given LMS suffixes placed at bucket tails (in `sa`),
    // derive the order of all L-type then all S-type suffixes.
    let induce = |sa: &mut [u32]| {
        // L-type pass, left to right.
        let mut heads = bucket_heads(&bucket_sizes);
        for i in 0..n {
            let j = sa[i];
            if j != EMPTY && j > 0 && !is_s[(j - 1) as usize] {
                let c = text[(j - 1) as usize] as usize;
                sa[heads[c] as usize] = j - 1;
                heads[c] += 1;
            }
        }
        // S-type pass, right to left.
        let mut tails = bucket_tails(&bucket_sizes);
        for i in (0..n).rev() {
            let j = sa[i];
            if j != EMPTY && j > 0 && is_s[(j - 1) as usize] {
                let c = text[(j - 1) as usize] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = j - 1;
            }
        }
    };

    // --- pass 1: approximately sort LMS suffixes by their first symbol ---
    sa.fill(EMPTY);
    {
        let mut tails = bucket_tails(&bucket_sizes);
        for i in (1..n).rev() {
            if is_lms(i) {
                let c = text[i] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = i as u32;
            }
        }
    }
    induce(sa);

    // --- name LMS substrings in their sorted order ---
    let lms_count = (1..n).filter(|&i| is_lms(i)).count();
    // Sorted LMS positions, extracted from the induced SA.
    let mut sorted_lms = Vec::with_capacity(lms_count);
    for &j in sa.iter() {
        if j != EMPTY && is_lms(j as usize) {
            sorted_lms.push(j);
        }
    }
    debug_assert_eq!(sorted_lms.len(), lms_count);

    // Compare consecutive LMS substrings for equality to assign names.
    let lms_substring_end = |i: usize| -> usize {
        // The LMS substring starting at i runs to the next LMS position
        // (inclusive); the final sentinel is its own substring.
        if i == n - 1 {
            return n - 1;
        }
        let mut j = i + 1;
        while j < n && !is_lms(j) {
            j += 1;
        }
        j.min(n - 1)
    };
    let lms_equal = |a: usize, b: usize| -> bool {
        let (ea, eb) = (lms_substring_end(a), lms_substring_end(b));
        if ea - a != eb - b {
            return false;
        }
        for k in 0..=(ea - a) {
            if text[a + k] != text[b + k] || is_s[a + k] != is_s[b + k] {
                return false;
            }
        }
        true
    };

    let mut names = vec![EMPTY; n];
    let mut current = 0u32;
    let mut prev: Option<u32> = None;
    for &pos in &sorted_lms {
        if let Some(p) = prev {
            if !lms_equal(p as usize, pos as usize) {
                current += 1;
            }
        }
        names[pos as usize] = current;
        prev = Some(pos);
    }
    let name_count = (current + 1) as usize;

    // --- order LMS suffixes exactly ---
    // Reduced text: names of LMS substrings in text order.
    let lms_positions: Vec<u32> = (1..n).filter(|&i| is_lms(i)).map(|i| i as u32).collect();
    let lms_order: Vec<u32> = if name_count == lms_count {
        // Names are unique: the induced order is already exact.
        sorted_lms
    } else {
        let reduced: Vec<u32> = lms_positions.iter().map(|&p| names[p as usize]).collect();
        let mut reduced_sa = vec![EMPTY; reduced.len()];
        sais(&reduced, &mut reduced_sa, name_count);
        reduced_sa
            .iter()
            .map(|&r| lms_positions[r as usize])
            .collect()
    };

    // --- pass 2: final induced sort from the exact LMS order ---
    sa.fill(EMPTY);
    {
        let mut tails = bucket_tails(&bucket_sizes);
        for &pos in lms_order.iter().rev() {
            let c = text[pos as usize] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = pos;
        }
    }
    induce(sa);
}

/// Reference O(n^2 log n) suffix sort used to cross-check SA-IS in tests and
/// small examples. Exposed so downstream crates' tests can validate too.
pub fn naive_suffix_array(text: &[Symbol]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::text_from_str;

    #[test]
    fn paper_example_catagata() {
        // Fig. 3(a): G = CATAGA$, SA column = 6 5 3 1 0 4 2.
        let text = text_from_str("CATAGA").unwrap();
        assert_eq!(suffix_array(&text), vec![6, 5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn matches_naive_on_fixed_strings() {
        for s in [
            "A",
            "AAAA",
            "ACGT",
            "GATTACA",
            "TTTTTTTTTT",
            "ACGTACGTACGTACGT",
            "GGGCCCAAATTTGGGCCCAAATTT",
        ] {
            let text = text_from_str(s).unwrap();
            assert_eq!(suffix_array(&text), naive_suffix_array(&text), "text {s}");
        }
    }

    #[test]
    fn matches_naive_on_random_strings() {
        use crate::rng::SeededRng;
        let mut rng = SeededRng::new(7);
        for _ in 0..50 {
            let len = rng.range(1, 200);
            let s: String = (0..len).map(|_| char::from(rng.base())).collect();
            let text = text_from_str(&s).unwrap();
            assert_eq!(suffix_array(&text), naive_suffix_array(&text), "text {s}");
        }
    }

    #[test]
    fn sa_is_a_permutation() {
        let text = text_from_str("ACGTACGTTGCAACGT").unwrap();
        let mut sa = suffix_array(&text);
        sa.sort_unstable();
        let expect: Vec<u32> = (0..text.len() as u32).collect();
        assert_eq!(sa, expect);
    }

    #[test]
    fn handles_single_base() {
        let text = text_from_str("G").unwrap();
        assert_eq!(suffix_array(&text), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn rejects_missing_sentinel() {
        use crate::alphabet::{Base, Symbol};
        let _ = suffix_array(&[Symbol::Base(Base::A)]);
    }
}
