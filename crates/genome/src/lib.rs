//! # exma-genome
//!
//! Genomics substrate for the EXMA reproduction: DNA alphabet and 2-bit
//! packed sequences, k-mers, synthetic reference-genome generation, read
//! simulators with the error profiles used in the paper (Illumina, PacBio,
//! Oxford Nanopore), an O(n) SA-IS suffix-array builder and the
//! Burrows-Wheeler transform.
//!
//! The EXMA paper evaluates on real human (3 Gbp), picea (20 Gbp) and pinus
//! (31 Gbp) genomes sequenced with DWGSim/PBSIM-simulated reads. Those inputs
//! are not redistributable, so this crate generates synthetic genomes with
//! controlled GC bias and repeat structure at matched *relative* sizes, and
//! re-implements the read simulators with the paper's published error rates.
//!
//! ```
//! use exma_genome::{GenomeProfile, Genome, suffix_array, bwt_from_sa};
//!
//! let genome = Genome::synthesize(&GenomeProfile::toy(), 42);
//! let text = genome.text_with_sentinel();
//! let sa = suffix_array(&text);
//! let bwt = bwt_from_sa(&text, &sa);
//! assert_eq!(bwt.len(), text.len());
//! ```

pub mod alphabet;
pub mod bwt;
pub mod genome;
pub mod kmer;
pub mod reads;
pub mod rng;
pub mod seq;
pub mod suffix;

pub use alphabet::{Base, Symbol, SENTINEL_CODE, SYMBOL_ALPHABET};
pub use bwt::{bwt_from_sa, count_table, inverse_suffix_array, CountTable};
pub use genome::{Genome, GenomeProfile};
pub use kmer::{Kmer, KmerIter};
pub use reads::{ErrorProfile, LongReadSimulator, Read, ReadOrigin, ShortReadSimulator};
pub use rng::SeededRng;
pub use seq::PackedSeq;
pub use suffix::{naive_suffix_array, suffix_array};
