//! 2-bit packed DNA sequences.
//!
//! A reference genome at pinus scale (31 Mbp scaled, 31 Gbp full) is the
//! dominant memory consumer of the workspace, so references are stored 2 bits
//! per base, exactly as production FM-Index implementations (BWA, SGA) do.

use crate::alphabet::Base;

/// An immutable DNA sequence packed 2 bits per base.
///
/// Bases are stored little-endian within each `u64` word: base `i` occupies
/// bits `2*(i % 32) ..= 2*(i % 32) + 1` of word `i / 32`.
///
/// ```
/// use exma_genome::{PackedSeq, Base};
///
/// let seq: PackedSeq = "GATTACA".parse().unwrap();
/// assert_eq!(seq.len(), 7);
/// assert_eq!(seq.get(0), Base::G);
/// assert_eq!(seq.to_string(), "GATTACA");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Creates an empty sequence.
    pub fn new() -> PackedSeq {
        PackedSeq::default()
    }

    /// Creates an empty sequence with room for `cap` bases.
    pub fn with_capacity(cap: usize) -> PackedSeq {
        PackedSeq {
            words: Vec::with_capacity(cap.div_ceil(32)),
            len: 0,
        }
    }

    /// Packs a base slice.
    pub fn from_bases(bases: &[Base]) -> PackedSeq {
        let mut seq = PackedSeq::with_capacity(bases.len());
        for &b in bases {
            seq.push(b);
        }
        seq
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the sequence has no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a base.
    #[inline]
    pub fn push(&mut self, base: Base) {
        let (word, shift) = (self.len / 32, 2 * (self.len % 32));
        if shift == 0 {
            self.words.push(0);
        }
        self.words[word] |= (base.code() as u64) << shift;
        self.len += 1;
    }

    /// The base at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let code = (self.words[i / 32] >> (2 * (i % 32))) & 0b11;
        Base::from_code(code as u8)
    }

    /// The base at position `i`, or `None` past the end.
    #[inline]
    pub fn try_get(&self, i: usize) -> Option<Base> {
        (i < self.len).then(|| self.get(i))
    }

    /// Copies bases `start..start + len` into a fresh `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the sequence.
    pub fn slice(&self, start: usize, len: usize) -> Vec<Base> {
        assert!(
            start + len <= self.len,
            "slice {start}..{} out of bounds (len {})",
            start + len,
            self.len
        );
        (start..start + len).map(|i| self.get(i)).collect()
    }

    /// Iterates over all bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Unpacks the whole sequence.
    pub fn to_vec(&self) -> Vec<Base> {
        self.iter().collect()
    }

    /// Heap bytes used by the packed representation.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// Reverse complement of the sequence.
    pub fn reverse_complement(&self) -> PackedSeq {
        let mut out = PackedSeq::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.get(i).complement());
        }
        out
    }
}

impl std::str::FromStr for PackedSeq {
    type Err = usize;

    /// Parses an ACGT string; the error is the offset of the first bad byte.
    fn from_str(s: &str) -> Result<PackedSeq, usize> {
        let bases = crate::alphabet::parse_bases(s)?;
        Ok(PackedSeq::from_bases(&bases))
    }
}

impl std::fmt::Display for PackedSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<Base> for PackedSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> PackedSeq {
        let mut seq = PackedSeq::new();
        for b in iter {
            seq.push(b);
        }
        seq
    }
}

impl Extend<Base> for PackedSeq {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trip() {
        let bases: Vec<Base> = "ACGTACGTTGCA".parse::<PackedSeq>().unwrap().to_vec();
        let seq = PackedSeq::from_bases(&bases);
        for (i, &b) in bases.iter().enumerate() {
            assert_eq!(seq.get(i), b);
        }
    }

    #[test]
    fn crosses_word_boundaries() {
        let bases: Vec<Base> = (0..100).map(|i| Base::from_code((i % 4) as u8)).collect();
        let seq = PackedSeq::from_bases(&bases);
        assert_eq!(seq.len(), 100);
        assert_eq!(seq.to_vec(), bases);
    }

    #[test]
    fn packing_is_dense() {
        let bases: Vec<Base> = (0..1024).map(|i| Base::from_code((i % 4) as u8)).collect();
        let seq = PackedSeq::from_bases(&bases);
        // 1024 bases = 2048 bits = 32 u64 words.
        assert!(seq.heap_bytes() <= 64 * 8);
    }

    #[test]
    fn reverse_complement_round_trip() {
        let seq: PackedSeq = "GATTACA".parse().unwrap();
        assert_eq!(seq.reverse_complement().to_string(), "TGTAATC");
        assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn slice_extracts_window() {
        let seq: PackedSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(crate::alphabet::bases_to_string(&seq.slice(2, 4)), "GTAC");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_end_panics() {
        let seq: PackedSeq = "ACGT".parse().unwrap();
        let _ = seq.get(4);
    }

    #[test]
    fn try_get_past_end_is_none() {
        let seq: PackedSeq = "ACGT".parse().unwrap();
        assert_eq!(seq.try_get(3), Some(Base::T));
        assert_eq!(seq.try_get(4), None);
    }

    #[test]
    fn collect_from_iterator() {
        let seq: PackedSeq = "ACGT".parse::<PackedSeq>().unwrap().iter().collect();
        assert_eq!(seq.to_string(), "ACGT");
    }
}
