//! Fixed-length k-mers packed into a `u64`.
//!
//! The EXMA table (paper §IV-A) is keyed by k-mers: each of the `4^k`
//! possible k-mers owns a base pointer and a run of increments. [`Kmer`]
//! stores up to 31 bases, 2 bits each, such that the packed integer value
//! *is* the lexicographic rank — the property the EXMA base table relies on
//! for contiguous, row-buffer-friendly layout.

use crate::alphabet::Base;
use crate::seq::PackedSeq;
use std::fmt;

/// Maximum supported k (bases fit in a `u64` with 2 bits each).
pub const MAX_K: usize = 31;

/// A k-mer of `1..=31` bases packed big-endian (first base in the most
/// significant bit pair), so that integer order equals lexicographic order.
///
/// ```
/// use exma_genome::Kmer;
///
/// let aa: Kmer = "AA".parse().unwrap();
/// let ac: Kmer = "AC".parse().unwrap();
/// let tt: Kmer = "TT".parse().unwrap();
/// assert!(aa.rank() < ac.rank() && ac.rank() < tt.rank());
/// assert_eq!(tt.rank(), 15); // last of the 16 2-mers
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kmer {
    rank: u64,
    k: u8,
}

impl Kmer {
    /// Packs `bases` into a k-mer.
    ///
    /// # Panics
    ///
    /// Panics if `bases` is empty or longer than [`MAX_K`].
    pub fn from_bases(bases: &[Base]) -> Kmer {
        assert!(
            !bases.is_empty() && bases.len() <= MAX_K,
            "k must be in 1..={MAX_K}, got {}",
            bases.len()
        );
        let mut rank = 0u64;
        for &b in bases {
            rank = (rank << 2) | b.code() as u64;
        }
        Kmer {
            rank,
            k: bases.len() as u8,
        }
    }

    /// Builds a k-mer from its lexicographic rank.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or `rank >= 4^k`.
    pub fn from_rank(rank: u64, k: usize) -> Kmer {
        assert!(
            (1..=MAX_K).contains(&k),
            "k must be in 1..={MAX_K}, got {k}"
        );
        assert!(rank < count(k), "rank {rank} out of range for k={k}");
        Kmer { rank, k: k as u8 }
    }

    /// Reads the k-mer starting at `pos` in `seq` (non-cyclic).
    ///
    /// Returns `None` if fewer than `k` bases remain.
    pub fn from_seq(seq: &PackedSeq, pos: usize, k: usize) -> Option<Kmer> {
        if pos + k > seq.len() {
            return None;
        }
        let mut rank = 0u64;
        for i in pos..pos + k {
            rank = (rank << 2) | seq.get(i).code() as u64;
        }
        Some(Kmer { rank, k: k as u8 })
    }

    /// Lexicographic rank in `0..4^k`.
    #[inline]
    pub fn rank(self) -> u64 {
        self.rank
    }

    /// Number of bases.
    #[inline]
    pub fn k(self) -> usize {
        self.k as usize
    }

    /// The base at position `i` (0 = leftmost / most significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    #[inline]
    pub fn base(self, i: usize) -> Base {
        assert!(
            i < self.k as usize,
            "index {i} out of bounds for k={}",
            self.k
        );
        let shift = 2 * (self.k as usize - 1 - i);
        Base::from_code(((self.rank >> shift) & 0b11) as u8)
    }

    /// Unpacks into a base vector.
    pub fn to_bases(self) -> Vec<Base> {
        (0..self.k as usize).map(|i| self.base(i)).collect()
    }

    /// Drops the last base, keeping the leading `k-1` bases.
    ///
    /// Returns `None` when `k == 1`.
    pub fn prefix(self) -> Option<Kmer> {
        (self.k > 1).then(|| Kmer {
            rank: self.rank >> 2,
            k: self.k - 1,
        })
    }

    /// The next k-mer in lexicographic order, or `None` at `T...T`.
    pub fn successor(self) -> Option<Kmer> {
        (self.rank + 1 < count(self.k as usize)).then(|| Kmer {
            rank: self.rank + 1,
            k: self.k,
        })
    }

    /// The lexicographically smallest k-mer (`A...A`).
    pub fn first(k: usize) -> Kmer {
        Kmer::from_rank(0, k)
    }

    /// The lexicographically largest k-mer (`T...T`).
    pub fn last(k: usize) -> Kmer {
        Kmer::from_rank(count(k) - 1, k)
    }
}

/// Number of distinct k-mers: `4^k`.
///
/// # Panics
///
/// Panics if `k > 31`.
pub fn count(k: usize) -> u64 {
    assert!(k <= MAX_K);
    1u64 << (2 * k)
}

impl fmt::Display for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.k as usize {
            write!(f, "{}", self.base(i))?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Kmer {
    type Err = usize;

    /// Parses an ACGT string; the error is the offset of the first bad byte.
    fn from_str(s: &str) -> Result<Kmer, usize> {
        let bases = crate::alphabet::parse_bases(s)?;
        Ok(Kmer::from_bases(&bases))
    }
}

/// Iterator over all k-mer windows of a sequence, produced by [`kmers_of`].
#[derive(Debug, Clone)]
pub struct KmerIter<'a> {
    seq: &'a PackedSeq,
    pos: usize,
    k: usize,
}

impl Iterator for KmerIter<'_> {
    type Item = Kmer;

    fn next(&mut self) -> Option<Kmer> {
        let kmer = Kmer::from_seq(self.seq, self.pos, self.k)?;
        self.pos += 1;
        Some(kmer)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.seq.len() + 1).saturating_sub(self.pos + self.k);
        (n, Some(n))
    }
}

impl ExactSizeIterator for KmerIter<'_> {}

/// All overlapping k-mer windows of `seq`, left to right.
pub fn kmers_of(seq: &PackedSeq, k: usize) -> KmerIter<'_> {
    assert!((1..=MAX_K).contains(&k));
    KmerIter { seq, pos: 0, k }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_is_lexicographic() {
        let mut prev: Option<Kmer> = None;
        for r in 0..count(3) {
            let km = Kmer::from_rank(r, 3);
            if let Some(p) = prev {
                assert!(p.to_bases() < km.to_bases());
            }
            prev = Some(km);
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let km: Kmer = "GATTACAGATTACA".parse().unwrap();
        assert_eq!(km.to_string(), "GATTACAGATTACA");
        assert_eq!(Kmer::from_bases(&km.to_bases()), km);
        assert_eq!(Kmer::from_rank(km.rank(), km.k()), km);
    }

    #[test]
    fn first_and_last() {
        assert_eq!(Kmer::first(4).to_string(), "AAAA");
        assert_eq!(Kmer::last(4).to_string(), "TTTT");
        assert_eq!(Kmer::last(4).successor(), None);
        assert_eq!(Kmer::first(4).successor().unwrap().to_string(), "AAAC");
    }

    #[test]
    fn prefix_drops_trailing_base() {
        let km: Kmer = "ACGT".parse().unwrap();
        assert_eq!(km.prefix().unwrap().to_string(), "ACG");
        assert_eq!("A".parse::<Kmer>().unwrap().prefix(), None);
    }

    #[test]
    fn windows_over_sequence() {
        let seq: PackedSeq = "ACGTA".parse().unwrap();
        let kmers: Vec<String> = kmers_of(&seq, 3).map(|k| k.to_string()).collect();
        assert_eq!(kmers, ["ACG", "CGT", "GTA"]);
        assert_eq!(kmers_of(&seq, 3).len(), 3);
    }

    #[test]
    fn from_seq_out_of_range_is_none() {
        let seq: PackedSeq = "ACGT".parse().unwrap();
        assert!(Kmer::from_seq(&seq, 2, 3).is_none());
        assert!(Kmer::from_seq(&seq, 1, 3).is_some());
    }

    #[test]
    fn max_k_31_works() {
        let bases: Vec<Base> = (0..31).map(|i| Base::from_code((i % 4) as u8)).collect();
        let km = Kmer::from_bases(&bases);
        assert_eq!(km.to_bases(), bases);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn from_rank_rejects_overflow() {
        let _ = Kmer::from_rank(16, 2);
    }
}
