//! Burrows-Wheeler transform and the `Count` table.
//!
//! The BWT is the last column of the sorted rotation matrix (paper Fig. 3a);
//! with a sentinel-terminated text it is derived from the suffix array as
//! `BWT[i] = text[SA[i] - 1]` (cyclically). `Count(s)` — the number of text
//! symbols lexicographically smaller than `s` (Fig. 3c) — seeds every
//! backward-search iteration.

use crate::alphabet::{Symbol, SYMBOL_ALPHABET};

/// Derives the BWT from a text and its suffix array.
///
/// `BWT[i]` is the symbol cyclically preceding suffix `sa[i]`, i.e. the last
/// column of the Burrows-Wheeler matrix.
///
/// # Panics
///
/// Panics if `sa` is not the same length as `text`.
pub fn bwt_from_sa(text: &[Symbol], sa: &[u32]) -> Vec<Symbol> {
    assert_eq!(text.len(), sa.len(), "suffix array length mismatch");
    sa.iter()
        .map(|&p| {
            if p == 0 {
                text[text.len() - 1]
            } else {
                text[(p - 1) as usize]
            }
        })
        .collect()
}

/// The inverse permutation of the suffix array: `isa[sa[i]] = i`.
///
/// Used by the LISA IP-BWT construction, where each entry needs the matrix
/// row of the rotation starting `k` positions later.
///
/// # Panics
///
/// Panics if `sa` is not a permutation of `0..sa.len()`.
pub fn inverse_suffix_array(sa: &[u32]) -> Vec<u32> {
    let mut isa = vec![u32::MAX; sa.len()];
    for (row, &pos) in sa.iter().enumerate() {
        assert!(
            (pos as usize) < sa.len() && isa[pos as usize] == u32::MAX,
            "suffix array is not a permutation"
        );
        isa[pos as usize] = row as u32;
    }
    isa
}

/// The `Count` table over the 5-symbol alphabet `{$, A, C, G, T}`.
///
/// `Count(s)` is the number of symbols in the text strictly smaller than `s`
/// (paper Fig. 3c). Equivalently it is the matrix row where suffixes starting
/// with `s` begin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountTable {
    /// `starts[c]` = number of symbols with code `< c`; `starts[5]` = n.
    starts: [u64; 6],
}

impl CountTable {
    /// Counts symbol occurrences in `text` and accumulates them.
    pub fn from_text(text: &[Symbol]) -> CountTable {
        let mut freq = [0u64; 5];
        for &s in text {
            freq[s.code() as usize] += 1;
        }
        let mut starts = [0u64; 6];
        for c in 0..5 {
            starts[c + 1] = starts[c] + freq[c];
        }
        CountTable { starts }
    }

    /// `Count(s)`: number of text symbols lexicographically smaller than `s`.
    #[inline]
    pub fn count(&self, s: Symbol) -> u64 {
        self.starts[s.code() as usize]
    }

    /// Number of occurrences of `s` in the text.
    #[inline]
    pub fn frequency(&self, s: Symbol) -> u64 {
        self.starts[s.code() as usize + 1] - self.starts[s.code() as usize]
    }

    /// Total text length (including the sentinel).
    #[inline]
    pub fn text_len(&self) -> u64 {
        self.starts[5]
    }

    /// The symbol whose suffix-array bucket contains `row`, i.e. the first
    /// symbol of the `row`-th smallest suffix.
    pub fn symbol_at_row(&self, row: u64) -> Symbol {
        assert!(row < self.text_len(), "row {row} out of range");
        for &s in SYMBOL_ALPHABET.iter().rev() {
            if self.starts[s.code() as usize] <= row {
                return s;
            }
        }
        unreachable!("row 0 is always in the sentinel bucket")
    }
}

/// Convenience wrapper building the `Count` table directly from a text.
pub fn count_table(text: &[Symbol]) -> CountTable {
    CountTable::from_text(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::text_from_str;
    use crate::suffix::suffix_array;

    fn symbols_to_string(bwt: &[Symbol]) -> String {
        bwt.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_example_bwt() {
        // Fig. 3(a): BWT(CATAGA$) = AGTC$AA.
        let text = text_from_str("CATAGA").unwrap();
        let sa = suffix_array(&text);
        assert_eq!(symbols_to_string(&bwt_from_sa(&text, &sa)), "AGTC$AA");
    }

    #[test]
    fn paper_example_count() {
        // Fig. 3(c): Count(A)=1, Count(C)=4, Count(G)=5, Count(T)=6.
        use crate::alphabet::Base;
        let text = text_from_str("CATAGA").unwrap();
        let table = count_table(&text);
        assert_eq!(table.count(Symbol::Sentinel), 0);
        assert_eq!(table.count(Symbol::Base(Base::A)), 1);
        assert_eq!(table.count(Symbol::Base(Base::C)), 4);
        assert_eq!(table.count(Symbol::Base(Base::G)), 5);
        assert_eq!(table.count(Symbol::Base(Base::T)), 6);
    }

    #[test]
    fn frequencies_sum_to_length() {
        let text = text_from_str("GATTACAGGGCAT").unwrap();
        let table = count_table(&text);
        let total: u64 = SYMBOL_ALPHABET.iter().map(|&s| table.frequency(s)).sum();
        assert_eq!(total, text.len() as u64);
        assert_eq!(table.text_len(), text.len() as u64);
    }

    #[test]
    fn inverse_sa_round_trip() {
        let text = text_from_str("ACGTTGCAACG").unwrap();
        let sa = suffix_array(&text);
        let isa = inverse_suffix_array(&sa);
        for (row, &pos) in sa.iter().enumerate() {
            assert_eq!(isa[pos as usize] as usize, row);
        }
    }

    #[test]
    fn symbol_at_row_matches_first_symbol() {
        let text = text_from_str("GATTACA").unwrap();
        let sa = suffix_array(&text);
        let table = count_table(&text);
        for (row, &pos) in sa.iter().enumerate() {
            assert_eq!(table.symbol_at_row(row as u64), text[pos as usize]);
        }
    }

    #[test]
    fn bwt_is_permutation_of_text() {
        let text = text_from_str("ACGTACGTTGCA").unwrap();
        let sa = suffix_array(&text);
        let mut bwt = bwt_from_sa(&text, &sa);
        let mut sorted_text = text.clone();
        bwt.sort();
        sorted_text.sort();
        assert_eq!(bwt, sorted_text);
    }
}
