//! Deterministic, dependency-free pseudo-random number generation.
//!
//! Every stochastic component of the workspace — genome synthesis, read
//! simulation, property tests — must be reproducible from a single `u64`
//! seed so that benchmark inputs are identical across machines and CI runs
//! (the same discipline the SPEChpc harnesses apply to their input decks).
//! The container builds fully offline, so instead of the `rand` crate this
//! module implements xoshiro256** (Blackman & Vigna, 2018) seeded through
//! SplitMix64 — the same combination `rand` uses for `SmallRng` on 64-bit
//! platforms (streams are not bit-compatible with any `rand` generator).

use crate::alphabet::Base;

/// A seeded xoshiro256** generator.
///
/// ```
/// use exma_genome::SeededRng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    state: [u64; 4],
}

/// One step of SplitMix64, used to expand the seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> SeededRng {
        let mut sm = seed;
        // SplitMix64 expansion guarantees a non-zero xoshiro state even for
        // seed 0, as recommended by the xoshiro authors.
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SeededRng { state }
    }

    /// Derives an independent child generator; advances this one.
    ///
    /// Used to give each simulated read / genome segment its own stream so
    /// that inserting one extra draw in a component does not reshuffle every
    /// downstream component.
    pub fn fork(&mut self) -> SeededRng {
        SeededRng::new(self.next_u64())
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniform integer in `0..bound` (Lemire's widening-multiply method,
    /// debiased by rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection threshold: multiples of `bound` representable in u64.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = u128::from(self.next_u64()) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen base.
    #[inline]
    pub fn base(&mut self) -> Base {
        Base::from_code(self.below(4) as u8)
    }

    /// A base drawn with G+C probability `gc` (split evenly within each
    /// pair), the GC-bias primitive of the genome generator.
    pub fn base_gc(&mut self, gc: f64) -> Base {
        if self.chance(gc) {
            if self.chance(0.5) {
                Base::G
            } else {
                Base::C
            }
        } else if self.chance(0.5) {
            Base::A
        } else {
            Base::T
        }
    }

    /// A uniformly chosen base different from `b` (substitution errors).
    pub fn base_other_than(&mut self, b: Base) -> Base {
        let offset = 1 + self.below(3) as u8;
        Base::from_code((b.code() + offset) % 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SeededRng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut rng = SeededRng::new(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SeededRng::new(5);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gc_bias_shifts_composition() {
        let mut rng = SeededRng::new(9);
        let gc_rich = (0..10_000).filter(|_| rng.base_gc(0.8).is_gc()).count();
        let gc_poor = (0..10_000).filter(|_| rng.base_gc(0.2).is_gc()).count();
        assert!(gc_rich > 7_000, "gc-rich draw produced {gc_rich}/10000 GC");
        assert!(gc_poor < 3_000, "gc-poor draw produced {gc_poor}/10000 GC");
    }

    #[test]
    fn substitution_never_returns_same_base() {
        let mut rng = SeededRng::new(13);
        for b in Base::ALL {
            for _ in 0..100 {
                assert_ne!(rng.base_other_than(b), b);
            }
        }
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SeededRng::new(21);
        let mut b = SeededRng::new(21);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
