//! Round-trip and property tests over the genomics substrate: packed
//! sequences, suffix arrays and the BWT must survive randomized
//! encode/decode and invert cleanly, for many seeds.

use exma_genome::genome::{text_from_bases, text_from_str};
use exma_genome::{
    bwt_from_sa, inverse_suffix_array, naive_suffix_array, suffix_array, Base, PackedSeq,
    SeededRng, Symbol,
};

fn random_bases(rng: &mut SeededRng, len: usize) -> Vec<Base> {
    (0..len).map(|_| rng.base()).collect()
}

#[test]
fn packed_seq_encode_decode_round_trip() {
    let mut rng = SeededRng::new(101);
    for _ in 0..200 {
        let len = rng.range(0, 300);
        let bases = random_bases(&mut rng, len);
        let packed = PackedSeq::from_bases(&bases);
        assert_eq!(packed.len(), bases.len());
        assert_eq!(packed.to_vec(), bases);
        for (i, &b) in bases.iter().enumerate() {
            assert_eq!(packed.get(i), b);
        }
    }
}

#[test]
fn packed_seq_string_round_trip() {
    let mut rng = SeededRng::new(103);
    for _ in 0..100 {
        let len = rng.range(1, 200);
        let bases = random_bases(&mut rng, len);
        let s = exma_genome::alphabet::bases_to_string(&bases);
        let packed: PackedSeq = s.parse().unwrap();
        assert_eq!(packed.to_string(), s);
    }
}

#[test]
fn suffix_array_matches_naive_sort() {
    let mut rng = SeededRng::new(107);
    for _ in 0..100 {
        let len = rng.range(1, 400);
        let bases = random_bases(&mut rng, len);
        let text = text_from_bases(&bases);
        assert_eq!(
            suffix_array(&text),
            naive_suffix_array(&text),
            "text {}",
            exma_genome::alphabet::bases_to_string(&bases)
        );
    }
}

#[test]
fn bwt_inversion_recovers_text() {
    // BWT[isa[i]] is the symbol preceding position i (cyclically), so the
    // inverse suffix array inverts the transform in one pass:
    // text[i - 1] = BWT[isa[i]], and text[n - 1] ($) = BWT[isa[0]].
    let mut rng = SeededRng::new(109);
    for _ in 0..100 {
        let len = rng.range(1, 400);
        let bases = random_bases(&mut rng, len);
        let text = text_from_bases(&bases);
        let sa = suffix_array(&text);
        let bwt = bwt_from_sa(&text, &sa);
        let isa = inverse_suffix_array(&sa);

        let n = text.len();
        let mut recovered = vec![Symbol::Sentinel; n];
        for i in 0..n {
            let preceding = bwt[isa[i] as usize];
            recovered[(i + n - 1) % n] = preceding;
        }
        assert_eq!(recovered, text);
    }
}

#[test]
fn bwt_inversion_paper_example() {
    let text = text_from_str("CATAGA").unwrap();
    let sa = suffix_array(&text);
    let bwt = bwt_from_sa(&text, &sa);
    let isa = inverse_suffix_array(&sa);
    let n = text.len();
    let recovered: Vec<Symbol> = (0..n).map(|i| bwt[isa[(i + 1) % n] as usize]).collect();
    assert_eq!(recovered, text);
}
